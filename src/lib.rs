//! Top-level convenience crate for the BlurNet reproduction workspace.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the actual functionality lives
//! in the `blurnet-*` crates re-exported by [`blurnet`].
//!
//! See `README.md` for the repository layout and `DESIGN.md` for the
//! mapping from the paper's systems and experiments to modules.

pub use blurnet;
pub use blurnet_attacks as attacks;
pub use blurnet_data as data;
pub use blurnet_defenses as defenses;
pub use blurnet_nn as nn;
pub use blurnet_signal as signal;
pub use blurnet_tensor as tensor;
