//! Quickstart: train a small road-sign classifier, attack it with RP2, and
//! defend it with the paper's total-variation regularization.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use blurnet::{ModelZoo, Scale};
use blurnet_attacks::{Rp2Attack, Rp2Config};
use blurnet_defenses::DefenseKind;
use blurnet_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A model zoo bundles the synthetic LISA-like dataset with a cache of
    // trained models. Smoke scale keeps this example under a minute.
    let mut zoo = ModelZoo::new(Scale::Smoke, 7)?;
    println!(
        "dataset: {} training images, {} test images, {} stop signs for attack evaluation",
        zoo.dataset().train_len(),
        zoo.dataset().test_len(),
        zoo.dataset().stop_eval_images().len()
    );

    // 1. Train the undefended baseline and the TV-regularized defense.
    let mut baseline = zoo.get_or_train(&DefenseKind::Baseline)?;
    let mut defended = zoo.get_or_train(&DefenseKind::TotalVariation { alpha: 1e-4 })?;
    println!(
        "clean test accuracy — baseline: {:.1}%, TV-regularized: {:.1}%",
        baseline.training_report().test_accuracy * 100.0,
        defended.training_report().test_accuracy * 100.0
    );

    // 2. Run the RP2 sticker attack against both, targeting 'speedLimit25'.
    let attack = Rp2Attack::new(Rp2Config {
        iterations: 40,
        ..Rp2Config::default()
    })?;
    let stop_signs: Vec<Tensor> = zoo.dataset().stop_eval_images().to_vec();
    let target = 12; // speedLimit25
    let baseline_eval = attack.evaluate(baseline.network_mut(), &stop_signs, target)?;
    let defended_eval = attack.evaluate(defended.network_mut(), &stop_signs, target)?;

    println!(
        "RP2 targeted success rate — baseline: {:.1}%, TV-regularized: {:.1}%",
        baseline_eval.success_rate * 100.0,
        defended_eval.success_rate * 100.0
    );
    println!(
        "L2 dissimilarity — baseline: {:.3}, TV-regularized: {:.3}",
        baseline_eval.l2_dissimilarity, defended_eval.l2_dissimilarity
    );
    println!("(the paper's Table II shows the same qualitative gap at full scale)");
    Ok(())
}
