//! Compares the BlurNet defenses head-to-head under the white-box RP2
//! attacker: fixed feature-map blurring, L∞-regularized depthwise
//! filtering, TV and Tikhonov regularization (a miniature Table II).
//!
//! ```sh
//! cargo run --release --example defense_comparison
//! # or, for a longer and more faithful run:
//! BLURNET_SCALE=quick cargo run --release --example defense_comparison
//! ```

use blurnet::experiments::table2;
use blurnet::{ModelZoo, Scale, Table};
use blurnet_defenses::DefenseKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    println!("running at scale: {scale} (set BLURNET_SCALE=quick for a fuller run)");
    let mut zoo = ModelZoo::new(scale, 7)?;

    let defenses = [
        DefenseKind::Baseline,
        DefenseKind::DepthwiseLinf {
            kernel: 5,
            alpha: 0.1,
        },
        DefenseKind::TotalVariation { alpha: 1e-4 },
        DefenseKind::TikhonovHf {
            alpha: 1e-4,
            window: 3,
        },
        DefenseKind::TikhonovPseudo { alpha: 1e-6 },
    ];

    let mut table = Table::new(
        "White-box RP2 against selected defenses",
        &[
            "Defense",
            "Legit acc.",
            "Avg success",
            "Worst success",
            "L2",
        ],
    );
    for defense in &defenses {
        let row = table2::run_defense(&mut zoo, defense)?;
        table.push_row(vec![
            row.defense,
            format!("{:.1}%", row.legitimate_accuracy * 100.0),
            format!("{:.1}%", row.average_success_rate * 100.0),
            format!("{:.1}%", row.worst_success_rate * 100.0),
            format!("{:.3}", row.l2_dissimilarity),
        ]);
    }
    println!("{table}");
    println!("Paper reference (Table II): baseline worst-case 90% vs TV 17.5% and Tik_hf 10%.");
    Ok(())
}
