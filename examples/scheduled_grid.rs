//! Scheduled evaluation: run a grid of experiment cells concurrently
//! through one shared engine substrate and emit `results.json`.
//!
//! ```sh
//! cargo run --release --example scheduled_grid
//! ```
//!
//! The scheduler decomposes the grid into a DAG — one training node per
//! model variant, shared RP2 artifacts generated once, one node per
//! evaluation cell — and streams every ready cell over the persistent
//! rayon worker pool. The report it produces is bit-identical to the
//! sequential `BatchRunner` path at every worker count.

use blurnet::experiments::grid::ExperimentGrid;
use blurnet::{CellStatus, ExperimentScheduler, ModelZoo, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The golden micro-grid: 2 defenses × 2 attacks, seconds at smoke
    // scale. ExperimentGrid::full(scale) runs the whole paper instead.
    let grid = ExperimentGrid::micro();
    let scheduler = ExperimentScheduler::new(Scale::Smoke, 7).threads(2);
    let run = scheduler.run(&grid)?;

    for cell in &run.report.cells {
        let status = match &cell.status {
            CellStatus::Ok => "ok".to_string(),
            CellStatus::Failed { error } => format!("FAILED: {error}"),
            CellStatus::Skipped { reason } => format!("skipped: {reason}"),
        };
        println!("{}/{} — {status}", cell.experiment, cell.label);
    }
    println!(
        "{} cells in {:.1}s — {:.2} cells/s, pool utilization {:.0}% ({} workers)",
        run.profile.cell_count,
        run.profile.wall_ns as f64 / 1e9,
        run.profile.cells_per_sec(),
        run.profile.utilization() * 100.0,
        run.profile.workers
    );

    // The same cells through the sequential reference path agree bitwise.
    let mut zoo = ModelZoo::new(Scale::Smoke, 7)?;
    let sequential = grid.run_sequential(&mut zoo)?;
    assert_eq!(run.report, sequential);
    println!("scheduler report is bit-identical to the sequential path");

    run.report
        .write_json(std::path::Path::new("results.json"))?;
    println!("wrote results.json");
    Ok(())
}
