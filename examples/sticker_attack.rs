//! Anatomy of the RP2 sticker attack: generate a masked, printable,
//! transform-robust perturbation against one stop sign and inspect where
//! its energy lands in the frequency domain (the paper's Figures 1–2).
//!
//! ```sh
//! cargo run --release --example sticker_attack
//! ```

use blurnet::{ModelZoo, Scale};
use blurnet_attacks::{l2_dissimilarity, Rp2Attack, Rp2Config};
use blurnet_data::{mask_coverage, sticker_mask, StickerLayout, STOP_CLASS_ID};
use blurnet_defenses::DefenseKind;
use blurnet_signal::high_frequency_ratio;
use blurnet_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut zoo = ModelZoo::new(Scale::Smoke, 21)?;
    let mut baseline = zoo.get_or_train(&DefenseKind::Baseline)?;
    let stop_sign = zoo.dataset().stop_eval_images()[0].clone();

    // The threat model: the attacker may only touch the sign through a
    // sticker mask.
    let size = zoo.dataset().image_size();
    let mask = sticker_mask(size, size, StickerLayout::TwoBars)?;
    println!(
        "sticker mask covers {:.1}% of the image",
        mask_coverage(&mask) * 100.0
    );

    let attack = Rp2Attack::new(Rp2Config {
        iterations: 60,
        lambda: 0.002,
        ..Rp2Config::default()
    })?;
    let target = 17; // yield
    let result = attack.generate(baseline.network_mut(), &stop_sign, target)?;

    let clean_pred = baseline.classify_one(&stop_sign)?;
    let adv_pred = baseline.classify_one(&result.adversarial)?;
    println!(
        "prediction: clean = class {clean_pred} (stop = {STOP_CLASS_ID}), adversarial = class {adv_pred} (target = {target})"
    );
    println!(
        "attack loss went from {:.3} to {:.3} over {} iterations",
        result.loss_trace.first().copied().unwrap_or(f32::NAN),
        result.loss_trace.last().copied().unwrap_or(f32::NAN),
        result.loss_trace.len()
    );
    println!(
        "L2 dissimilarity: {:.3}",
        l2_dissimilarity(&stop_sign, &result.adversarial)?
    );

    // Where does the perturbation's energy live? Mostly above the Nyquist
    // half-radius — exactly what the feature-map blur removes.
    let gray_pert: Tensor = result
        .perturbation
        .channel(0)?
        .add(&result.perturbation.channel(1)?)?
        .add(&result.perturbation.channel(2)?)?
        .scale(1.0 / 3.0);
    if gray_pert.l2_norm() > 0.0 {
        println!(
            "high-frequency energy fraction of the perturbation: {:.3}",
            high_frequency_ratio(&gray_pert, 0.5)?
        );
    }
    Ok(())
}
