//! Reproduces the paper's motivating frequency analysis (Figures 1, 2 and
//! 4): where does the sticker attack inject energy, and why is the *first*
//! layer the right place to filter?
//!
//! ```sh
//! cargo run --release --example spectrum_analysis
//! ```

use blurnet::experiments::figures;
use blurnet::{ModelZoo, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut zoo = ModelZoo::new(Scale::from_env(), 7)?;

    // Figure 1: the input-space spectra barely move.
    let fig1 = figures::figure1(&mut zoo)?;
    println!("{}", fig1.table());
    println!(
        "input spectra change little ({:.3} -> {:.3}), so filtering the input is a weak defense\n",
        fig1.clean_high_fraction, fig1.adversarial_high_fraction
    );

    // Figure 2: the *feature-map* difference is concentrated in high
    // frequencies, and a 5x5 blur removes it.
    let fig2 = figures::figure2(&mut zoo, 4)?;
    println!("{}", fig2.table());
    println!(
        "feature-map difference high-frequency fraction {:.3} drops to {:.3} after a 5x5 blur\n",
        fig2.mean_difference_fraction(),
        fig2.mean_blurred_difference_fraction()
    );

    // Figure 4: second-layer maps inherently carry high frequencies, which
    // is why BlurNet only filters after the first layer.
    let fig4 = figures::figure4(&mut zoo)?;
    println!("{}", fig4.table());
    println!(
        "second-layer maps carry {:.2}x the high-frequency share of first-layer maps — filtering \
         them would destroy information the classifier needs",
        fig4.second_layer_mean_fraction / fig4.first_layer_mean_fraction.max(1e-6)
    );
    Ok(())
}
