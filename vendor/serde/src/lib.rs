//! Offline stand-in for the `serde` crate.
//!
//! The real serde cannot be downloaded in this build environment, so this
//! crate provides the subset the workspace uses: `Serialize`/`Deserialize`
//! traits (value-tree based rather than visitor based), derive macros for
//! structs and enums (including `#[serde(skip)]`), and implementations for
//! the primitive and container types that appear in the workspace.
//!
//! The JSON wire format produced through the companion `serde_json` stand-in
//! mirrors real serde_json's defaults (externally tagged enums), so files
//! serialized by one build remain readable by later builds.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A serialized value tree — the common currency between `Serialize`,
/// `Deserialize` and the JSON front-end in `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer that does not fit `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Value::Map`.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Float(f) => Ok(*f as $t),
                    _ => Err(Error::msg(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            Value::UInt(u) => Ok(*u),
            Value::Float(f) if *f >= 0.0 => Ok(*f as u64),
            _ => Err(Error::msg("expected non-negative integer for u64")),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::msg(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Value-tree deserialization cannot borrow from the input, so a
            // &'static str target leaks its (small, static-table) string.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => Ok(($($t::from_value(
                        items.get($n).ok_or_else(|| Error::msg("tuple too short"))?,
                    )?,)+)),
                    _ => Err(Error::msg("expected array for tuple")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}
