//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the bench targets use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `criterion_group!`,
//! `criterion_main!`) with a simple adaptive wall-clock measurement:
//! batches are sized to at least ~1 ms, and the median batch is reported in
//! a `name ... time/iter` line. No statistics beyond that — the point is
//! honest relative numbers in an environment where real criterion cannot be
//! downloaded.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by all groups.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Applies command-line configuration (stand-in: accepts and ignores
    /// the arguments cargo-bench forwards).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group `{name}`");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_count: 10,
        }
    }

    /// Prints the final summary (stand-in: no-op; lines print eagerly).
    pub fn final_summary(&mut self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A named collection of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Measures a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Measures a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Runs and times the benchmark body.
pub struct Bencher {
    sample_count: usize,
    median_ns: Option<f64>,
}

/// Measures `f` adaptively: batch sizes grow until one batch takes at
/// least `min_batch`; the per-iteration median over `samples` batches is
/// returned in nanoseconds.
pub fn measure_median_ns<O, F: FnMut() -> O>(mut f: F, samples: usize, min_batch: Duration) -> f64 {
    // Warm-up and batch sizing.
    let mut batch = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= min_batch || batch >= 1 << 24 {
            break;
        }
        // Grow toward the target with a 2x safety factor.
        let grow = (min_batch.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil() as usize;
        batch = (batch * grow.clamp(2, 64)).min(1 << 24);
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(2) {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        per_iter.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    per_iter[per_iter.len() / 2]
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            sample_count,
            median_ns: None,
        }
    }

    /// Times the closure; call once per benchmark body.
    pub fn iter<O, F: FnMut() -> O>(&mut self, f: F) {
        self.median_ns = Some(measure_median_ns(
            f,
            self.sample_count,
            Duration::from_millis(1),
        ));
    }

    fn report(&self, label: &str) {
        match self.median_ns {
            Some(ns) => {
                let (value, unit) = if ns >= 1e9 {
                    (ns / 1e9, "s")
                } else if ns >= 1e6 {
                    (ns / 1e6, "ms")
                } else if ns >= 1e3 {
                    (ns / 1e3, "µs")
                } else {
                    (ns, "ns")
                };
                println!("{label:<48} time: {value:10.3} {unit}/iter");
            }
            None => println!("{label:<48} time: (no measurement)"),
        }
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
