//! JSON front-end for the offline `serde` stand-in: a small recursive-descent
//! parser and printer over `serde::Value` covering the API surface this
//! workspace uses (`to_vec`, `to_string`, `to_string_pretty`, `from_slice`,
//! `from_str`).

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// JSON encode/decode failure.
pub type Error = serde::Error;

/// Result alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in): (&str, String, String) = match indent {
        Some(width) => (
            "\n",
            " ".repeat(width * level),
            " ".repeat(width * (level + 1)),
        ),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 prints the shortest round-trip representation.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        serde::Error(format!("JSON parse error at byte {}: {}", self.pos, msg))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("non-utf8 \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char from the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid utf8"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.parse_literal("null", Value::Null),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }
}

/// Parses a JSON string into a value tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::from_value(&parse_value(s)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| serde::Error(format!("invalid utf8: {e}")))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Map(vec![
            ("title".into(), Value::Str("t \"x\"\n".into())),
            (
                "rows".into(),
                Value::Seq(vec![Value::Int(-3), Value::Float(0.5), Value::Null]),
            ),
            ("ok".into(), Value::Bool(true)),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0);
            s
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1f32, -1.5e-7, 3.25, f32::MAX, f32::MIN_POSITIVE] {
            let json = to_string(&f).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(f, back, "{json}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f32>("not json").is_err());
        assert!(parse_value("[1,").is_err());
        assert!(parse_value("{\"a\" 1}").is_err());
    }
}
