//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator behind the `rand` stand-in's `RngCore`/`SeedableRng` traits.
//!
//! The stream is a faithful ChaCha implementation (8 rounds), so statistical
//! quality matches the real crate; the word-consumption order is not
//! guaranteed to be bit-compatible with upstream `rand_chacha`, which the
//! workspace never relies on (all comparisons are within one build).

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key + constants + counter/nonce state words.
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    word_pos: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12/13.
        let counter = ((self.state[13] as u64) << 32 | self.state[12] as u64).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word_pos = 0;
    }

    /// Current 64-bit block counter (diagnostics only).
    pub fn get_word_pos(&self) -> u64 {
        ((self.state[13] as u64) << 32 | self.state[12] as u64) * 16 + self.word_pos as u64
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Words 12..16: block counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn output_looks_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let mut ones = 0u32;
        const N: u32 = 4096;
        for _ in 0..N {
            ones += rng.next_u32().count_ones();
        }
        let total = N * 32;
        // Within 2% of half the bits set.
        assert!((ones as f64 / total as f64 - 0.5).abs() < 0.02);
    }
}
