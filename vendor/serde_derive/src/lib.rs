//! Derive macros for the offline `serde` stand-in.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` available in
//! this build environment). Supports the item shapes that occur in the
//! workspace: structs with named fields, tuple structs, and enums with unit,
//! tuple and struct variants — plus the `#[serde(skip)]` field attribute.
//! Generic parameters are intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes leading `#[...]` attributes; returns whether any of them was
/// `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(id)) = inner.first() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                for t in args.stream() {
                                    if let TokenTree::Ident(a) = t {
                                        if a.to_string() == "skip" {
                                            skip = true;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    *pos += 1;
                }
            }
            _ => break,
        }
    }
    skip
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Skips a type expression up to (not including) a top-level comma,
/// tracking `<`/`>` nesting depth.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth: i32 = 0;
    while *pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*pos] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected ':' after field name, found {other}"),
        }
        skip_type(&tokens, &mut pos);
        // Consume the separating comma if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0usize;
    let mut pos = 0usize;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        arity += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let keyword = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum keyword, found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in does not support generic types ({name})");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    }
}

/// Derives the `serde::Serialize` stand-in trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let mut entries = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                entries.push_str(&format!(
                    "entries.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {entries}\
                 ::serde::Value::Map(entries)\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n}}\n"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Seq(vec![{}]) }}\n}}\n",
                    items.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut entries = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            entries.push_str(&format!(
                                "(\"{0}\".to_string(), ::serde::Serialize::to_value({0})), ",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{entries}]))]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives the `serde::Deserialize` stand-in trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::Deserialize::from_value(v.get_field(\"{0}\").ok_or_else(|| ::serde::Error::msg(\"missing field `{0}` in {name}\"))?)?,\n",
                        f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 Ok({name} {{\n{inits}}})\n}}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n}}\n}}\n"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::msg(\"tuple struct too short\"))?)?"
                    ))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                     match v {{\n\
                     ::serde::Value::Seq(items) => Ok({name}({})),\n\
                     _ => Err(::serde::Error::msg(\"expected array for {name}\")),\n\
                     }}\n}}\n}}\n",
                    items.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!("Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?))")
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!(
                                    "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::msg(\"variant tuple too short\"))?)?"
                                ))
                                .collect();
                            format!(
                                "match inner {{ ::serde::Value::Seq(items) => Ok({name}::{vn}({})), _ => Err(::serde::Error::msg(\"expected array for variant {vn}\")) }}",
                                items.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!("\"{vn}\" => {{ {body} }}\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::core::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{0}: ::serde::Deserialize::from_value(inner.get_field(\"{0}\").ok_or_else(|| ::serde::Error::msg(\"missing field `{0}` in {name}::{vn}\"))?)?,\n",
                                    f.name
                                ));
                            }
                        }
                        tagged_arms
                            .push_str(&format!("\"{vn}\" => Ok({name}::{vn} {{\n{inits}}}),\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::Error::msg(format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => Err(::serde::Error::msg(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::Error::msg(\"expected string or single-key object for enum {name}\")),\n\
                 }}\n}}\n}}\n"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
