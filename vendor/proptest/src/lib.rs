//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with a `#![proptest_config(...)]` header, range and `Just`
//! strategies, `prop_oneof!`, `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros. Cases are drawn from a
//! deterministic xorshift generator (no shrinking — a failing case prints
//! its case index so it can be replayed by re-running the test).

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Creates a config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert!`-style macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic xorshift64* generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator (the `proptest!` expansion derives the seed from
    /// the test name so each test gets an independent stream).
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash used to derive per-test seeds from test names.
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Strategies produce random values of an output type.
pub mod strategy {
    use super::TestRng;

    /// A generator of random values.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-typed strategies (from `prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S> Union<S> {
        /// Creates a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start as f64
                        + (self.end as f64 - self.start as f64) * rng.unit_f64();
                    let v = v as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for fixed-length vectors of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `proptest::collection::vec(strategy, len)` — fixed length form.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Uniform choice among strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($option),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Commonly imported items.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, TestCaseError,
    };
}
