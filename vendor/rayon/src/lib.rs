//! Offline stand-in for the `rayon` crate.
//!
//! Implements the slice-parallelism subset the workspace uses —
//! `par_chunks_mut` (+ `enumerate`/`zip`) and `join` — on top of a **lazy
//! persistent worker pool**. Work is statically partitioned into contiguous
//! runs of chunks, which is a good fit for the uniform-cost loops (GEMM row
//! blocks, image planes, batch shards) this repo parallelizes; one run
//! executes inline on the calling thread while the rest are dispatched to
//! the pool as boxed closures over a shared injector queue.
//!
//! The pool is spawned once, on the first parallel call that actually fans
//! out, and grows lazily when a caller (e.g. `ThreadPool::install` with a
//! larger count) requests more concurrency than workers exist. Compared to
//! the previous scoped-thread-spawn-per-call design this removes a
//! `thread::spawn`/`join` round trip from **every** parallel region — a
//! measured 5–30% of small-batch forward/backward passes.
//!
//! Blocking on a region's completion *helps*: the waiting thread keeps
//! draining the injector queue, so nested parallel regions can never
//! deadlock the fixed-size pool. Panics inside a dispatched run are caught,
//! carried back through the region latch and re-raised on the caller.
//!
//! Thread count resolution order: `ThreadPool::install` override, then the
//! `RAYON_NUM_THREADS` environment variable, then
//! `std::thread::available_parallelism()`. Work partitioning depends only
//! on the resolved count — never on which worker executes a run — so
//! results are unchanged from the scoped implementation.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel operations will use on this thread.
pub fn current_num_threads() -> usize {
    THREAD_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(configured_threads)
}

/// A dispatched unit of work: one contiguous run of a parallel region,
/// erased to `'static` (see the safety notes on [`WorkerPool::submit`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion latch for one parallel region: counts outstanding dispatched
/// runs and carries the first panic payload back to the region's caller.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Marks one dispatched run finished, recording the first panic.
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.state.lock().expect("latch lock poisoned");
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// The lazy persistent worker pool behind every parallel operation.
///
/// Workers are plain detached threads looping over a shared injector queue
/// of boxed closures; they are spawned on first use and live for the rest
/// of the process.
struct WorkerPool {
    inject: Mutex<PoolState>,
    work: Condvar,
}

struct PoolState {
    queue: VecDeque<Job>,
    workers: usize,
}

/// Upper bound on pool growth; callers requesting more concurrency simply
/// queue behind existing workers.
const MAX_WORKERS: usize = 256;

/// How long a waiter sleeps on its latch before re-checking the injector
/// queue for work it can help with (bounds nested-region latency without
/// busy-spinning).
const HELP_POLL: Duration = Duration::from_micros(200);

fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool {
        inject: Mutex::new(PoolState {
            queue: VecDeque::new(),
            workers: 0,
        }),
        work: Condvar::new(),
    })
}

impl WorkerPool {
    /// Enqueues a batch of jobs, growing the pool so that every job just
    /// queued could run concurrently (up to [`MAX_WORKERS`]).
    ///
    /// # Safety contract (callers)
    ///
    /// Jobs are type-erased to `'static` but may borrow the submitting
    /// frame's stack. The submitter MUST NOT return (or unwind) past that
    /// frame until every submitted job has signalled its region latch —
    /// i.e. it must call [`WorkerPool::wait`] on the latch first, including
    /// on its own panic paths.
    fn submit(&self, jobs: Vec<Job>) {
        let mut st = self.inject.lock().expect("pool lock poisoned");
        st.queue.extend(jobs);
        while st.workers < st.queue.len() && st.workers < MAX_WORKERS {
            let spawned = std::thread::Builder::new()
                .name(format!("rayon-standin-{}", st.workers + 1))
                .spawn(worker_loop);
            match spawned {
                Ok(_) => st.workers += 1,
                // Thread exhaustion must NOT unwind out of submit: queued
                // jobs may already borrow the submitting frame, and the
                // safety contract requires reaching the latch wait. The
                // waiter's help loop drains the queue even with zero
                // workers, so just stop growing.
                Err(_) => break,
            }
        }
        drop(st);
        self.work.notify_all();
    }

    /// Pops one pending job, if any.
    fn try_pop(&self) -> Option<Job> {
        self.inject
            .lock()
            .expect("pool lock poisoned")
            .queue
            .pop_front()
    }

    /// Blocks until `latch` reports every dispatched run complete,
    /// executing pending jobs from the injector queue while waiting (so a
    /// run that itself fans out can never deadlock the fixed pool).
    /// Returns the first captured panic payload, if any.
    fn wait(&self, latch: &Latch) -> Option<Box<dyn std::any::Any + Send>> {
        loop {
            while let Some(job) = self.try_pop() {
                job();
            }
            let mut st = latch.state.lock().expect("latch lock poisoned");
            if st.remaining == 0 {
                return st.panic.take();
            }
            let (mut st, _timeout) = latch
                .done
                .wait_timeout(st, HELP_POLL)
                .expect("latch lock poisoned");
            if st.remaining == 0 {
                return st.panic.take();
            }
        }
    }
}

/// Body of every persistent worker: pop a job or sleep until one arrives.
fn worker_loop() {
    let pool = pool();
    loop {
        let job = {
            let mut st = pool.inject.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                st = pool.work.wait(st).expect("pool lock poisoned");
            }
        };
        job();
    }
}

/// Runs `body`, dispatches it to the pool wrapped with panic capture, and
/// reports to `latch`.
fn dispatch<'scope>(latch: &Arc<Latch>, body: impl FnOnce() + Send + 'scope) {
    let latch = Arc::clone(latch);
    let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
        let result = catch_unwind(AssertUnwindSafe(body));
        latch.complete(result.err());
    });
    // SAFETY: the job may borrow the submitting frame (see
    // `WorkerPool::submit`); every call path below pairs this dispatch with
    // a `pool().wait(&latch)` before the frame can be left, on success and
    // panic paths alike, and `latch.complete` runs strictly after the job
    // body has finished touching those borrows.
    let job: Job = unsafe { std::mem::transmute(job) };
    pool().submit(vec![job]);
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let rb_slot: Mutex<Option<RB>> = Mutex::new(None);
    let latch = Arc::new(Latch::new(1));
    dispatch(&latch, || {
        let rb = b();
        *rb_slot.lock().expect("join slot poisoned") = Some(rb);
    });
    let ra = catch_unwind(AssertUnwindSafe(a));
    let remote_panic = pool().wait(&latch);
    match ra {
        Err(payload) => resume_unwind(payload),
        Ok(ra) => {
            if let Some(payload) = remote_panic {
                resume_unwind(payload);
            }
            let rb = rb_slot
                .lock()
                .expect("join slot poisoned")
                .take()
                .expect("joined task completed without a result");
            (ra, rb)
        }
    }
}

/// Builder for a fixed-size pool (stand-in: only carries the thread count).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(configured_threads).max(1),
        })
    }
}

/// Error building a thread pool (never produced by the stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle that scopes parallel operations to a fixed thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing nested parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(self.num_threads)));
        let result = f();
        THREAD_OVERRIDE.with(|o| o.set(prev));
        result
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Executes `(index, work)` pairs across up to `current_num_threads()`
/// workers with static contiguous partitioning: the first run executes
/// inline on the calling thread, the rest go to the persistent pool. The
/// partition depends only on the item count and resolved thread count, so
/// results never depend on which worker executes a run.
fn run_partitioned<T, F>(mut items: Vec<T>, f: &F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let per = n.div_ceil(threads);
    let mut groups: Vec<(usize, Vec<T>)> = Vec::with_capacity(threads);
    let mut start = 0usize;
    while !items.is_empty() {
        let take = per.min(items.len());
        let rest = items.split_off(take);
        let batch = std::mem::replace(&mut items, rest);
        groups.push((start, batch));
        start += take;
    }
    let mut groups = groups.into_iter();
    let (first_base, first_batch) = groups.next().expect("n > 0 yields at least one group");
    let remote = groups.len();
    let latch = Arc::new(Latch::new(remote));
    for (base, batch) in groups {
        dispatch(&latch, move || {
            for (offset, item) in batch.into_iter().enumerate() {
                f(base + offset, item);
            }
        });
    }
    // The caller is a worker too: run the first group inline, then help
    // drain the queue until every remote group has reported in. Panics are
    // deferred until the region is quiescent so dispatched runs never
    // outlive the stack they borrow.
    let inline = catch_unwind(AssertUnwindSafe(|| {
        for (offset, item) in first_batch.into_iter().enumerate() {
            f(first_base + offset, item);
        }
    }));
    let remote_panic = pool().wait(&latch);
    if let Err(payload) = inline {
        resume_unwind(payload);
    }
    if let Some(payload) = remote_panic {
        resume_unwind(payload);
    }
}

/// Parallel mutable chunk iterator (see [`prelude::ParallelSliceMut`]).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

/// Enumerated wrapper produced by [`ParChunksMut::enumerate`] and
/// [`Zip::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

/// Lock-step pair of two parallel chunk iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Iterates two chunk sequences in lock step.
    pub fn zip<'b, U: Send>(self, other: ParChunksMut<'b, U>) -> Zip<Self, ParChunksMut<'b, U>> {
        Zip { a: self, b: other }
    }

    /// Runs `f` on every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        let chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.chunk_size.max(1)).collect();
        run_partitioned(chunks, &|_, c| f(c));
    }
}

impl<'a, T: Send> Enumerate<ParChunksMut<'a, T>> {
    /// Runs `f` on every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let chunks: Vec<&mut [T]> = self
            .inner
            .slice
            .chunks_mut(self.inner.chunk_size.max(1))
            .collect();
        run_partitioned(chunks, &|i, c| f((i, c)));
    }
}

impl<'a, 'b, T: Send, U: Send> Zip<ParChunksMut<'a, T>, ParChunksMut<'b, U>> {
    /// Pairs each zipped chunk pair with its index.
    pub fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Runs `f` on every chunk pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&'a mut [T], &'b mut [U])) + Sync,
    {
        let pairs: Vec<(&mut [T], &mut [U])> = self
            .a
            .slice
            .chunks_mut(self.a.chunk_size.max(1))
            .zip(self.b.slice.chunks_mut(self.b.chunk_size.max(1)))
            .collect();
        run_partitioned(pairs, &|_, p| f(p));
    }
}

impl<'a, 'b, T: Send, U: Send> Enumerate<Zip<ParChunksMut<'a, T>, ParChunksMut<'b, U>>> {
    /// Runs `f` on every `(index, (chunk_a, chunk_b))`, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, (&'a mut [T], &'b mut [U]))) + Sync,
    {
        let pairs: Vec<(&mut [T], &mut [U])> = self
            .inner
            .a
            .slice
            .chunks_mut(self.inner.a.chunk_size.max(1))
            .zip(
                self.inner
                    .b
                    .slice
                    .chunks_mut(self.inner.b.chunk_size.max(1)),
            )
            .collect();
        run_partitioned(pairs, &|i, p| f((i, p)));
    }
}

/// Traits users import to get parallel slice methods.
pub mod prelude {
    use super::ParChunksMut;

    /// `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits into mutable chunks of `chunk_size` (last may be shorter),
        /// processed in parallel by a terminal `for_each`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_mut_covers_all_elements() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(17).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[17], 2);
        assert_eq!(*data.last().unwrap(), 1003u32.div_ceil(17));
    }

    #[test]
    fn zip_pairs_match() {
        let mut a = vec![1i64; 64];
        let mut b = [2i64; 16];
        a.par_chunks_mut(16)
            .zip(b.par_chunks_mut(4))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                ca[0] = 10 + i as i64;
                cb[0] = 20 + i as i64;
            });
        assert_eq!(a[0], 10);
        assert_eq!(a[48], 13);
        assert_eq!(b[12], 23);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
        });
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn pool_workers_persist_across_regions() {
        let pool4 = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let region = || {
            pool4.install(|| {
                let mut data = vec![0u64; 256];
                data.par_chunks_mut(8).for_each(|c| c[0] = 1);
            });
        };
        // Warm up: the first identical regions grow the pool to steady state.
        for _ in 0..16 {
            region();
        }
        let after_warmup = pool().inject.lock().unwrap().workers;
        assert!(after_warmup >= 1, "fan-out spawns workers");
        for _ in 0..16 {
            region();
        }
        let after_many = pool().inject.lock().unwrap().workers;
        // Repeated identical regions reuse the same workers instead of
        // spawning more. The pool is process-global and other tests in this
        // binary run concurrently, so allow their (bounded) demand — the
        // regression guarded against here, spawn-per-region, would add ~3
        // workers per region (~48 across the loop).
        assert!(
            after_many <= after_warmup + 8,
            "pool kept growing: {after_warmup} -> {after_many}"
        );
    }

    #[test]
    fn nested_regions_do_not_deadlock() {
        let outer = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut data = vec![0u32; 16];
        outer.install(|| {
            data.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
                // Each outer run opens its own nested parallel region while
                // the pool is already saturated with outer runs.
                let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
                inner.install(|| {
                    chunk.par_chunks_mut(1).enumerate().for_each(|(j, c)| {
                        c[0] = (i * 4 + j) as u32 + 1;
                    });
                });
            });
        });
        let expected: Vec<u32> = (1..=16).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn dispatched_panics_propagate_to_the_caller() {
        let pool4 = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool4.install(|| {
                let mut data = [0u8; 64];
                data.par_chunks_mut(8).enumerate().for_each(|(i, _)| {
                    // Panic in a run that lands on a pool worker, not just
                    // the inline group.
                    assert!(i < 3, "boom from group {i}");
                });
            });
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool survives a panicked region and keeps processing work.
        let mut data = vec![0u64; 64];
        pool4.install(|| data.par_chunks_mut(8).for_each(|c| c[0] = 7));
        assert_eq!(data.iter().filter(|&&v| v == 7).count(), 8);
    }
}
