//! Offline stand-in for the `rayon` crate.
//!
//! Implements the slice-parallelism subset the workspace uses —
//! `par_chunks_mut` (+ `enumerate`/`zip`) and `join` — on top of
//! `std::thread::scope`. Work is statically partitioned into contiguous
//! runs of chunks, one per worker thread, which is a good fit for the
//! uniform-cost loops (GEMM row blocks, image planes) this repo
//! parallelizes.
//!
//! Thread count resolution order: `ThreadPool::install` override, then the
//! `RAYON_NUM_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::sync::OnceLock;

fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel operations will use on this thread.
pub fn current_num_threads() -> usize {
    THREAD_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(configured_threads)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = handle.join().expect("rayon stand-in: joined task panicked");
        (ra, rb)
    })
}

/// Builder for a fixed-size pool (stand-in: only carries the thread count).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(configured_threads).max(1),
        })
    }
}

/// Error building a thread pool (never produced by the stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle that scopes parallel operations to a fixed thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing nested parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(self.num_threads)));
        let result = f();
        THREAD_OVERRIDE.with(|o| o.set(prev));
        result
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Executes `tasks` (index, work) pairs across up to `current_num_threads()`
/// scoped threads with static contiguous partitioning.
fn run_partitioned<T, F>(mut items: Vec<T>, f: &F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let per = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut start = 0usize;
        while !items.is_empty() {
            let take = per.min(items.len());
            let rest = items.split_off(take);
            let batch = std::mem::replace(&mut items, rest);
            let base = start;
            start += take;
            scope.spawn(move || {
                for (offset, item) in batch.into_iter().enumerate() {
                    f(base + offset, item);
                }
            });
        }
    });
}

/// Parallel mutable chunk iterator (see [`prelude::ParallelSliceMut`]).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

/// Enumerated wrapper produced by [`ParChunksMut::enumerate`] and
/// [`Zip::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

/// Lock-step pair of two parallel chunk iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Iterates two chunk sequences in lock step.
    pub fn zip<'b, U: Send>(self, other: ParChunksMut<'b, U>) -> Zip<Self, ParChunksMut<'b, U>> {
        Zip { a: self, b: other }
    }

    /// Runs `f` on every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        let chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.chunk_size.max(1)).collect();
        run_partitioned(chunks, &|_, c| f(c));
    }
}

impl<'a, T: Send> Enumerate<ParChunksMut<'a, T>> {
    /// Runs `f` on every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let chunks: Vec<&mut [T]> = self
            .inner
            .slice
            .chunks_mut(self.inner.chunk_size.max(1))
            .collect();
        run_partitioned(chunks, &|i, c| f((i, c)));
    }
}

impl<'a, 'b, T: Send, U: Send> Zip<ParChunksMut<'a, T>, ParChunksMut<'b, U>> {
    /// Pairs each zipped chunk pair with its index.
    pub fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Runs `f` on every chunk pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&'a mut [T], &'b mut [U])) + Sync,
    {
        let pairs: Vec<(&mut [T], &mut [U])> = self
            .a
            .slice
            .chunks_mut(self.a.chunk_size.max(1))
            .zip(self.b.slice.chunks_mut(self.b.chunk_size.max(1)))
            .collect();
        run_partitioned(pairs, &|_, p| f(p));
    }
}

impl<'a, 'b, T: Send, U: Send> Enumerate<Zip<ParChunksMut<'a, T>, ParChunksMut<'b, U>>> {
    /// Runs `f` on every `(index, (chunk_a, chunk_b))`, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, (&'a mut [T], &'b mut [U]))) + Sync,
    {
        let pairs: Vec<(&mut [T], &mut [U])> = self
            .inner
            .a
            .slice
            .chunks_mut(self.inner.a.chunk_size.max(1))
            .zip(
                self.inner
                    .b
                    .slice
                    .chunks_mut(self.inner.b.chunk_size.max(1)),
            )
            .collect();
        run_partitioned(pairs, &|i, p| f((i, p)));
    }
}

/// Traits users import to get parallel slice methods.
pub mod prelude {
    use super::ParChunksMut;

    /// `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits into mutable chunks of `chunk_size` (last may be shorter),
        /// processed in parallel by a terminal `for_each`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_mut_covers_all_elements() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(17).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[17], 2);
        assert_eq!(*data.last().unwrap(), 1003u32.div_ceil(17));
    }

    #[test]
    fn zip_pairs_match() {
        let mut a = vec![1i64; 64];
        let mut b = [2i64; 16];
        a.par_chunks_mut(16)
            .zip(b.par_chunks_mut(4))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                ca[0] = 10 + i as i64;
                cb[0] = 20 + i as i64;
            });
        assert_eq!(a[0], 10);
        assert_eq!(a[48], 13);
        assert_eq!(b[12], 23);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
        });
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
