//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides `RngCore`, the `Rng` extension trait with `gen_range`,
//! `SeedableRng` with the splitmix64-based `seed_from_u64` default, and
//! `seq::SliceRandom::shuffle`. Deterministic given the same generator —
//! which is all the workspace relies on (every experiment is seeded).

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a half-open or inclusive range.
///
/// Implemented as one generic `SampleRange` impl per range kind (mirroring
/// real rand) so that type inference can flow from the expected output type
/// into unsuffixed range literals.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws from `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let v = lo + (hi - lo) * unit_f64(rng) as $t;
                if !inclusive && v >= hi {
                    // Guard against rounding up to the excluded endpoint.
                    hi - (hi - lo) * <$t>::EPSILON
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws a `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (0.8-style API).
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64 (deterministic).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, out) in z.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }
    }

    // Silence unused-import lint when only one of the traits is used.
    const _: fn(&mut dyn RngCore) = |_| {};
}

/// Commonly imported items.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
