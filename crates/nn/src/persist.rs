//! Versioned binary persistence for [`Sequential`] networks.
//!
//! # Layout (`BNSQ`, version 1)
//!
//! ```text
//! magic        4 bytes   b"BNSQ"
//! version      u16 LE
//! layer_count  u64 LE
//! layers       layer_count × (tag u8 + tag-specific body)
//! ```
//!
//! Per-layer bodies (tensors use the `BNTR` record of
//! [`blurnet_tensor::persist`]):
//!
//! | tag | layer | body |
//! |---|---|---|
//! | 1 | [`Conv2d`] | stride u64, padding u64, weight, bias |
//! | 2 | [`DepthwiseConv2d`] | stride u64, padding u64, trainable u8, weight, bias |
//! | 3 | [`Relu`] | — |
//! | 4 | [`MaxPool2d`] | window u64, stride u64 |
//! | 5 | [`Flatten`] | — |
//! | 6 | [`Dense`] | weight, bias |
//!
//! Only trained state is persisted: gradient accumulators and forward
//! caches are rebuilt as zeros/empty on load (the `from_parts`
//! constructors), which is exactly the state a freshly trained network is
//! in after `zero_grads` — so save→load→infer is **bit-identical** to
//! inferring with the original network.

use blurnet_tensor::persist::{put_u64, read_tensor, write_tensor, ByteReader};
use blurnet_tensor::{ConvSpec, TensorError};

use crate::{
    Conv2d, Dense, DepthwiseConv2d, Flatten, LayerKind, MaxPool2d, NnError, Relu, Result,
    Sequential,
};

/// Magic bytes opening a serialized [`Sequential`].
pub const SEQUENTIAL_MAGIC: [u8; 4] = *b"BNSQ";
/// Newest network format version this build reads and writes.
pub const SEQUENTIAL_VERSION: u16 = 1;

const TAG_CONV: u8 = 1;
const TAG_DEPTHWISE: u8 = 2;
const TAG_RELU: u8 = 3;
const TAG_MAX_POOL: u8 = 4;
const TAG_FLATTEN: u8 = 5;
const TAG_DENSE: u8 = 6;

/// Appends the binary form of `net` to `buf` (embeddable inside larger
/// containers — [`sequential_to_bytes`] is the standalone form).
pub fn write_sequential(buf: &mut Vec<u8>, net: &Sequential) {
    buf.extend_from_slice(&SEQUENTIAL_MAGIC);
    buf.extend_from_slice(&SEQUENTIAL_VERSION.to_le_bytes());
    put_u64(buf, net.len() as u64);
    for layer in net.iter() {
        match layer {
            LayerKind::Conv2d(conv) => {
                buf.push(TAG_CONV);
                put_u64(buf, conv.spec().stride as u64);
                put_u64(buf, conv.spec().padding as u64);
                write_tensor(buf, conv.weight());
                write_tensor(buf, conv.bias());
            }
            LayerKind::Depthwise(dw) => {
                buf.push(TAG_DEPTHWISE);
                put_u64(buf, dw.spec().stride as u64);
                put_u64(buf, dw.spec().padding as u64);
                buf.push(dw.is_trainable() as u8);
                write_tensor(buf, dw.weight());
                write_tensor(buf, dw.bias());
            }
            LayerKind::Relu(_) => buf.push(TAG_RELU),
            LayerKind::MaxPool(pool) => {
                buf.push(TAG_MAX_POOL);
                put_u64(buf, pool.spec().window as u64);
                put_u64(buf, pool.spec().stride as u64);
            }
            LayerKind::Flatten(_) => buf.push(TAG_FLATTEN),
            LayerKind::Dense(dense) => {
                buf.push(TAG_DENSE);
                write_tensor(buf, dense.weight());
                write_tensor(buf, dense.bias());
            }
        }
    }
}

/// Reads one serialized [`Sequential`] from `reader` (the inverse of
/// [`write_sequential`]; the reader may hold further embedded records).
///
/// # Errors
///
/// Returns [`NnError::Serialization`] wrapping the typed tensor persist
/// errors, an unknown layer tag, or invalid reassembled layer shapes.
pub fn read_sequential(reader: &mut ByteReader<'_>) -> Result<Sequential> {
    let fail = |e: TensorError| NnError::Serialization(e.to_string());
    reader.expect_magic(SEQUENTIAL_MAGIC).map_err(fail)?;
    reader.expect_version(SEQUENTIAL_VERSION).map_err(fail)?;
    let count = reader.usize_le().map_err(fail)?;
    let mut net = Sequential::new();
    for _ in 0..count {
        let tag = reader.u8().map_err(fail)?;
        match tag {
            TAG_CONV => {
                let spec = read_conv_spec(reader)?;
                let weight = read_tensor(reader).map_err(fail)?;
                let bias = read_tensor(reader).map_err(fail)?;
                net.push(Conv2d::from_parts(weight, bias, spec)?);
            }
            TAG_DEPTHWISE => {
                let spec = read_conv_spec(reader)?;
                let trainable = reader.u8().map_err(fail)? != 0;
                let weight = read_tensor(reader).map_err(fail)?;
                let bias = read_tensor(reader).map_err(fail)?;
                net.push(DepthwiseConv2d::from_parts(weight, bias, spec, trainable)?);
            }
            TAG_RELU => {
                net.push(Relu::new());
            }
            TAG_MAX_POOL => {
                let window = reader.usize_le().map_err(fail)?;
                let stride = reader.usize_le().map_err(fail)?;
                net.push(MaxPool2d::new(window, stride)?);
            }
            TAG_FLATTEN => {
                net.push(Flatten::new());
            }
            TAG_DENSE => {
                let weight = read_tensor(reader).map_err(fail)?;
                let bias = read_tensor(reader).map_err(fail)?;
                net.push(Dense::from_parts(weight, bias)?);
            }
            other => {
                return Err(NnError::Serialization(format!(
                    "unknown layer tag {other} in persisted network"
                )))
            }
        }
    }
    Ok(net)
}

fn read_conv_spec(reader: &mut ByteReader<'_>) -> Result<ConvSpec> {
    let fail = |e: TensorError| NnError::Serialization(e.to_string());
    let stride = reader.usize_le().map_err(fail)?;
    let padding = reader.usize_le().map_err(fail)?;
    ConvSpec::new(stride, padding).map_err(|e| NnError::Serialization(e.to_string()))
}

/// Serializes a network as a standalone binary record.
pub fn sequential_to_bytes(net: &Sequential) -> Vec<u8> {
    let mut buf = Vec::new();
    write_sequential(&mut buf, net);
    buf
}

/// Deserializes a standalone network record, rejecting trailing bytes.
///
/// # Errors
///
/// Returns [`NnError::Serialization`] for every malformed-input case (see
/// [`read_sequential`]).
pub fn sequential_from_bytes(bytes: &[u8]) -> Result<Sequential> {
    let mut reader = ByteReader::new(bytes);
    let net = read_sequential(&mut reader)?;
    reader
        .finish()
        .map_err(|e| NnError::Serialization(e.to_string()))?;
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LisaCnn;
    use blurnet_tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn nets() -> Vec<Sequential> {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        vec![
            LisaCnn::new(18)
                .input_size(16)
                .conv1_filters(4)
                .build(&mut rng)
                .unwrap(),
            LisaCnn::new(18)
                .input_size(16)
                .conv1_filters(4)
                .with_fixed_blur(Tensor::full(&[3, 3], 1.0 / 9.0))
                .build(&mut rng)
                .unwrap(),
            LisaCnn::new(18)
                .input_size(16)
                .conv1_filters(4)
                .with_trainable_depthwise(5)
                .build(&mut rng)
                .unwrap(),
        ]
    }

    #[test]
    fn roundtrip_preserves_inference_bitwise() {
        let batch =
            Tensor::rand_uniform(&[3, 3, 16, 16], 0.0, 1.0, &mut ChaCha8Rng::seed_from_u64(2));
        for net in nets() {
            let restored = sequential_from_bytes(&sequential_to_bytes(&net)).unwrap();
            assert_eq!(restored.len(), net.len());
            let a = net.forward_batch(&batch).unwrap();
            let b = restored.forward_batch(&batch).unwrap();
            assert_eq!(a, b, "save→load→infer diverged");
            // Double roundtrip produces identical bytes (canonical form).
            assert_eq!(sequential_to_bytes(&net), sequential_to_bytes(&restored));
        }
    }

    #[test]
    fn unknown_tags_and_truncation_are_rejected() {
        let bytes = sequential_to_bytes(&nets()[0]);
        let mut bad_tag = bytes.clone();
        // First tag byte sits right after magic(4) + version(2) + count(8).
        bad_tag[14] = 0xEE;
        assert!(matches!(
            sequential_from_bytes(&bad_tag),
            Err(NnError::Serialization(_))
        ));
        assert!(matches!(
            sequential_from_bytes(&bytes[..bytes.len() / 2]),
            Err(NnError::Serialization(_))
        ));
    }
}
