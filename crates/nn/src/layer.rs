//! The [`Layer`] abstraction and the serializable [`LayerKind`] enum used by
//! [`crate::Sequential`].

use blurnet_tensor::{Scratch, Tensor};
use serde::{Deserialize, Serialize};

use crate::{Conv2d, Dense, DepthwiseConv2d, Flatten, MaxPool2d, NnError, Relu, Result};

/// A caller-owned backward record for one layer, written by
/// [`Layer::infer_recording`] and consumed by [`Layer::input_grad`].
///
/// The mutable [`Layer::forward`]/[`Layer::backward`] path stores its cache
/// *inside* the layer, which serializes a network behind `&mut self`. The
/// tape moves that cache out to the caller: the layer stays immutable, so
/// one frozen network can run many recorded forward/backward passes
/// concurrently (one tape vector per batch shard). Slots are deliberately
/// minimal — the input-gradient backward never needs the forward input
/// itself, only the ReLU sign mask, the max-pool argmax table and input
/// shapes.
#[derive(Debug, Default, Clone)]
pub enum TapeSlot {
    /// Nothing recorded (layers whose input gradient needs no forward
    /// state, e.g. dense: `dx = g · W`), and the initial state of a slot.
    #[default]
    Empty,
    /// The forward input's dimensions (convolutions fold `g · W` back into
    /// this shape; flatten reshapes into it).
    InputDims(Vec<usize>),
    /// ReLU sign mask: `1.0` where the forward input was positive.
    ReluMask(Tensor),
    /// Max-pool argmax table plus the input dimensions it indexes into.
    PoolArgmax {
        /// Flat input index of the maximum for every output element.
        argmax: Vec<usize>,
        /// Dimensions of the pooled input.
        input_dims: Vec<usize>,
    },
}

impl TapeSlot {
    /// The error raised when a slot does not hold `layer`'s record — the
    /// immutable analogue of calling `backward` before `forward`.
    pub(crate) fn mismatch(layer: &'static str) -> NnError {
        NnError::MissingForwardCache(layer.to_string())
    }
}

/// A single differentiable network layer.
///
/// `forward` caches whatever it needs so that a subsequent `backward` call
/// can compute the gradient with respect to the layer input and accumulate
/// parameter gradients internally. The [`Layer::infer_recording`] /
/// [`Layer::input_grad`] pair is the immutable counterpart used by the
/// batched gradient engine: the backward record lives in a caller-owned
/// [`TapeSlot`] instead of the layer.
pub trait Layer: std::fmt::Debug {
    /// Human-readable layer name used in error messages and summaries.
    fn name(&self) -> &'static str;

    /// Runs the layer on `input`, caching intermediates for `backward`.
    ///
    /// `train` distinguishes training from inference for layers that behave
    /// differently (none of the current layers do, but defenses wrap this).
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor>;

    /// Runs the layer in pure inference mode: no backward cache is written,
    /// so the receiver stays immutable and the same layer can serve many
    /// batch shards concurrently. Workspace buffers are drawn from the
    /// caller's `scratch` pool.
    ///
    /// Produces bit-identical outputs to [`Layer::forward`] with
    /// `train = false` on the same input.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn infer(&self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor>;

    /// Runs the layer immutably like [`Layer::infer`], additionally
    /// recording into the caller-owned `tape` exactly what a subsequent
    /// [`Layer::input_grad`] call needs. Workspace buffers come from the
    /// caller's `scratch` pool.
    ///
    /// Produces bit-identical outputs to [`Layer::forward`] with
    /// `train = false` on the same input.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn infer_recording(
        &self,
        input: &Tensor,
        tape: &mut TapeSlot,
        scratch: &mut Scratch,
    ) -> Result<Tensor>;

    /// Propagates `grad_output` back through the layer **immutably**,
    /// consuming the record a prior [`Layer::infer_recording`] call wrote
    /// into `tape` and returning the gradient with respect to the layer
    /// input. No parameter gradients are accumulated — this is the
    /// attack-generation backward, where only the input gradient matters.
    ///
    /// Produces the same input gradient as the stateful
    /// [`Layer::backward`] on the same operands.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::MissingForwardCache`] if `tape` does not
    /// hold this layer's record, or a shape error if `grad_output` does
    /// not match the recorded forward output.
    fn input_grad(
        &self,
        tape: &TapeSlot,
        grad_output: &Tensor,
        scratch: &mut Scratch,
    ) -> Result<Tensor>;

    /// Propagates `grad_output` back through the layer, accumulating
    /// parameter gradients and returning the gradient with respect to the
    /// layer input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::MissingForwardCache`] if `forward` has not
    /// been called, or a shape error if `grad_output` does not match the
    /// cached forward output.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Mutable (parameter, accumulated gradient) pairs, in a stable order.
    ///
    /// Non-trainable layers return an empty vector.
    fn param_grad_pairs(&mut self) -> Vec<(&mut Tensor, &Tensor)>;

    /// Immutable access to the trainable parameters, in the same order as
    /// [`Layer::param_grad_pairs`].
    fn params(&self) -> Vec<&Tensor>;

    /// Clears the accumulated parameter gradients.
    fn zero_grads(&mut self);

    /// Number of trainable scalar parameters.
    fn parameter_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

/// A concrete, serializable layer. [`crate::Sequential`] stores this enum so
/// whole networks can be cloned and serialized without trait objects.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum LayerKind {
    /// Standard 2-D convolution.
    Conv2d(Conv2d),
    /// Depthwise (per-channel) 2-D convolution — the BlurNet filter layer.
    Depthwise(DepthwiseConv2d),
    /// Rectified linear activation.
    Relu(Relu),
    /// 2-D max pooling.
    MaxPool(MaxPool2d),
    /// Flattens `[N, C, H, W]` to `[N, C·H·W]`.
    Flatten(Flatten),
    /// Fully-connected layer.
    Dense(Dense),
}

macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            LayerKind::Conv2d($inner) => $body,
            LayerKind::Depthwise($inner) => $body,
            LayerKind::Relu($inner) => $body,
            LayerKind::MaxPool($inner) => $body,
            LayerKind::Flatten($inner) => $body,
            LayerKind::Dense($inner) => $body,
        }
    };
}

impl Layer for LayerKind {
    fn name(&self) -> &'static str {
        dispatch!(self, l => l.name())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        dispatch!(self, l => l.forward(input, train))
    }

    fn infer(&self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        dispatch!(self, l => l.infer(input, scratch))
    }

    fn infer_recording(
        &self,
        input: &Tensor,
        tape: &mut TapeSlot,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        dispatch!(self, l => l.infer_recording(input, tape, scratch))
    }

    fn input_grad(
        &self,
        tape: &TapeSlot,
        grad_output: &Tensor,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        dispatch!(self, l => l.input_grad(tape, grad_output, scratch))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        dispatch!(self, l => l.backward(grad_output))
    }

    fn param_grad_pairs(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        dispatch!(self, l => l.param_grad_pairs())
    }

    fn params(&self) -> Vec<&Tensor> {
        dispatch!(self, l => l.params())
    }

    fn zero_grads(&mut self) {
        dispatch!(self, l => l.zero_grads())
    }
}

impl From<Conv2d> for LayerKind {
    fn from(l: Conv2d) -> Self {
        LayerKind::Conv2d(l)
    }
}

impl From<DepthwiseConv2d> for LayerKind {
    fn from(l: DepthwiseConv2d) -> Self {
        LayerKind::Depthwise(l)
    }
}

impl From<Relu> for LayerKind {
    fn from(l: Relu) -> Self {
        LayerKind::Relu(l)
    }
}

impl From<MaxPool2d> for LayerKind {
    fn from(l: MaxPool2d) -> Self {
        LayerKind::MaxPool(l)
    }
}

impl From<Flatten> for LayerKind {
    fn from(l: Flatten) -> Self {
        LayerKind::Flatten(l)
    }
}

impl From<Dense> for LayerKind {
    fn from(l: Dense) -> Self {
        LayerKind::Dense(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn enum_dispatch_matches_inner_layer() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let conv = Conv2d::new(
            3,
            4,
            3,
            blurnet_tensor::ConvSpec::same(3).unwrap(),
            &mut rng,
        )
        .unwrap();
        let mut kind: LayerKind = conv.clone().into();
        assert_eq!(kind.name(), "conv2d");
        assert_eq!(kind.parameter_count(), conv.parameter_count());
        let input = Tensor::zeros(&[1, 3, 8, 8]);
        let out = kind.forward(&input, false).unwrap();
        assert_eq!(out.dims(), &[1, 4, 8, 8]);
    }

    #[test]
    fn non_trainable_layers_have_no_params() {
        let relu: LayerKind = Relu::new().into();
        assert_eq!(relu.parameter_count(), 0);
        let flat: LayerKind = Flatten::new().into();
        assert_eq!(flat.parameter_count(), 0);
    }
}
