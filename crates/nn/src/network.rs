//! The [`Sequential`] network container.

use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{loss, BatchEngine, Layer, LayerKind, NnError, Result};

/// A feed-forward stack of layers.
///
/// Beyond the usual forward/backward API the container supports the two
/// operations the BlurNet experiments need:
///
/// * [`Sequential::forward_collect`] returns every intermediate activation,
///   so feature-map regularizers and the spectrum analyses of Figures 2 and
///   4 can inspect specific layers;
/// * [`Sequential::backward_with_injection`] adds extra gradient at chosen
///   layer outputs while back-propagating, which is how the TV and Tikhonov
///   penalties on first-layer feature maps reach the first convolution's
///   weights (Eq. 4, 6, 7) — and how adaptive attacks reach the input
///   (Eq. 9–11).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Sequential {
    layers: Vec<LayerKind>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer and returns `self` for chaining.
    pub fn push(&mut self, layer: impl Into<LayerKind>) -> &mut Self {
        self.layers.push(layer.into());
        self
    }

    /// Inserts a layer at `index`, shifting later layers back.
    ///
    /// # Panics
    ///
    /// Panics if `index > self.len()`.
    pub fn insert(&mut self, index: usize, layer: impl Into<LayerKind>) {
        self.layers.insert(index, layer.into());
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to layer `index`.
    pub fn layer(&self, index: usize) -> Option<&LayerKind> {
        self.layers.get(index)
    }

    /// Mutable access to layer `index`.
    pub fn layer_mut(&mut self, index: usize) -> Option<&mut LayerKind> {
        self.layers.get_mut(index)
    }

    /// Iterates over the layers.
    pub fn iter(&self) -> std::slice::Iter<'_, LayerKind> {
        self.layers.iter()
    }

    /// Runs the network on a batch, caching intermediates for `backward`.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (shape mismatch, empty network, …).
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::BadConfig("network has no layers".into()));
        }
        // Feed each layer the previous layer's owned output — no per-layer
        // activation clones on the batched forward path.
        let mut x: Option<Tensor> = None;
        for layer in &mut self.layers {
            let out = match &x {
                None => layer.forward(input, train)?,
                Some(prev) => layer.forward(prev, train)?,
            };
            x = Some(out);
        }
        Ok(x.expect("non-empty network produced an output"))
    }

    /// Runs the network over an `[N, ...]` batch in pure inference mode,
    /// sharding the batch dimension across rayon workers (see
    /// [`BatchEngine`]).
    ///
    /// Unlike [`Sequential::forward`], the receiver stays immutable: no
    /// backward caches are written, so one network can serve concurrent
    /// callers. The output is **bit-identical** to a per-sample `forward`
    /// loop with `train = false`, at every `RAYON_NUM_THREADS` setting.
    ///
    /// This builds a fresh [`BatchEngine`] per call (packing each layer's
    /// weights once); loops that evaluate many batches against a frozen
    /// network should hold a [`Sequential::batch_engine`] instead.
    ///
    /// ```
    /// use blurnet_nn::LisaCnn;
    /// use blurnet_tensor::Tensor;
    /// use rand::SeedableRng;
    /// use rand_chacha::ChaCha8Rng;
    ///
    /// let mut rng = ChaCha8Rng::seed_from_u64(0);
    /// let mut net = LisaCnn::new(18).build(&mut rng)?;
    /// let batch = Tensor::zeros(&[4, 3, 32, 32]);
    /// let logits = net.forward_batch(&batch)?;
    /// assert_eq!(logits.dims(), &[4, 18]);
    /// // Identical to the stateful forward pass, bit for bit.
    /// assert_eq!(logits, net.forward(&batch, false)?);
    /// # Ok::<(), blurnet_nn::NnError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns an error for an empty network or batch, or a shape the
    /// first layer rejects.
    pub fn forward_batch(&self, input: &Tensor) -> Result<Tensor> {
        BatchEngine::new(self)?.forward(input)
    }

    /// Class predictions (argmax of the logits) for a batch through the
    /// batch-parallel inference path, without mutating the network.
    ///
    /// # Errors
    ///
    /// Propagates [`Sequential::forward_batch`] errors.
    pub fn predict_batch(&self, input: &Tensor) -> Result<Vec<usize>> {
        loss::predictions(&self.forward_batch(input)?)
    }

    /// Gradient of `grad_output` with respect to the network input over an
    /// `[N, ...]` batch, computed **immutably** through the batched
    /// gradient engine: a recorded forward pass (per-layer tapes owned by
    /// the workers, not the network) followed by a tape-driven backward,
    /// sharded across rayon workers like [`Sequential::forward_batch`].
    ///
    /// No layer caches are written and no parameter gradients are
    /// accumulated — this is the attack-generation backward. The result is
    /// bit-identical at every `RAYON_NUM_THREADS` setting and matches a
    /// per-image [`Sequential::forward`] + [`Sequential::backward`] loop
    /// over the same rows (pinned by `tests/input_grad_batch.rs`).
    ///
    /// This builds a fresh [`BatchEngine`] per call; gradient loops (PGD
    /// steps, RP2 iterations) should hold a [`Sequential::batch_engine`]
    /// and call [`BatchEngine::input_grad`] /
    /// [`BatchEngine::forward_backward_batch`] instead.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty network or batch, or mismatched
    /// shapes.
    pub fn input_grad_batch(&self, input: &Tensor, grad_output: &Tensor) -> Result<Tensor> {
        BatchEngine::new(self)?.input_grad(input, grad_output)
    }

    /// Builds a reusable [`BatchEngine`] over this network: every
    /// convolution and dense layer's weights are packed into their
    /// GEMM-ready layouts exactly once and shared across all subsequent
    /// [`BatchEngine::forward`] calls and batch shards.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for an empty network.
    pub fn batch_engine(&self) -> Result<BatchEngine<'_>> {
        BatchEngine::new(self)
    }

    /// Runs the network and returns the final output together with the
    /// activation after every layer (`activations[i]` is layer `i`'s
    /// output).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward_collect(
        &mut self,
        input: &Tensor,
        train: bool,
    ) -> Result<(Tensor, Vec<Tensor>)> {
        if self.layers.is_empty() {
            return Err(NnError::BadConfig("network has no layers".into()));
        }
        let mut activations: Vec<Tensor> = Vec::with_capacity(self.layers.len());
        for layer in &mut self.layers {
            let out = match activations.last() {
                None => layer.forward(input, train)?,
                Some(prev) => layer.forward(prev, train)?,
            };
            activations.push(out);
        }
        let output = activations
            .last()
            .expect("non-empty network produced an output")
            .clone();
        Ok((output, activations))
    }

    /// Back-propagates `grad_output` through the whole network, accumulating
    /// parameter gradients and returning the gradient with respect to the
    /// network input.
    ///
    /// # Errors
    ///
    /// Returns an error if `forward` has not been called or shapes mismatch.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.backward_with_injection(grad_output, &[])
    }

    /// Like [`Sequential::backward`], but adds `injection` gradients at the
    /// *output* of the named layers while the gradient flows backwards.
    ///
    /// `injections` maps a layer index `i` to an extra gradient with the
    /// same shape as layer `i`'s output. This realizes loss terms of the
    /// form `R(F_i)` where `F_i` is an intermediate activation: pass
    /// `dR/dF_i` here and the chain rule does the rest.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range indices, shape mismatches, or a
    /// missing forward pass.
    pub fn backward_with_injection(
        &mut self,
        grad_output: &Tensor,
        injections: &[(usize, Tensor)],
    ) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::BadConfig("network has no layers".into()));
        }
        for (idx, _) in injections {
            if *idx >= self.layers.len() {
                return Err(NnError::BadConfig(format!(
                    "injection index {idx} out of range for {} layers",
                    self.layers.len()
                )));
            }
        }
        let mut grad = grad_output.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            // Extra gradient arriving directly at this layer's output.
            for (idx, extra) in injections {
                if *idx == i {
                    grad.add_scaled(extra, 1.0)?;
                }
            }
            grad = layer.backward(&grad)?;
        }
        Ok(grad)
    }

    /// Flattened `(parameter, gradient)` pairs across every layer, in a
    /// stable order suitable for [`crate::Optimizer::step`].
    pub fn param_grad_pairs(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.param_grad_pairs())
            .collect()
    }

    /// Clears the accumulated gradients of every layer.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Total number of trainable scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Class predictions (argmax of the logits) for a batch.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn predict(&mut self, input: &Tensor) -> Result<Vec<usize>> {
        let logits = self.forward(input, false)?;
        loss::predictions(&logits)
    }

    /// Serializes the network (architecture and weights) to JSON bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] if encoding fails.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self).map_err(|e| NnError::Serialization(e.to_string()))
    }

    /// Restores a network serialized with [`Sequential::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] if decoding fails.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        serde_json::from_slice(bytes).map_err(|e| NnError::Serialization(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use blurnet_tensor::ConvSpec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_net(rng: &mut ChaCha8Rng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Conv2d::new(1, 2, 3, ConvSpec::same(3).unwrap(), rng).unwrap())
            .push(Relu::new())
            .push(MaxPool2d::new(2, 2).unwrap())
            .push(Flatten::new())
            .push(Dense::new(2 * 4 * 4, 3, rng).unwrap());
        net
    }

    #[test]
    fn forward_and_predict_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::zeros(&[4, 1, 8, 8]);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[4, 3]);
        assert_eq!(net.predict(&x).unwrap().len(), 4);
        assert!(net.parameter_count() > 0);
    }

    #[test]
    fn forward_collect_returns_every_activation() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        let (out, acts) = net.forward_collect(&x, false).unwrap();
        assert_eq!(acts.len(), net.len());
        assert_eq!(acts[0].dims(), &[1, 2, 8, 8]);
        assert_eq!(acts.last().unwrap().dims(), out.dims());
    }

    #[test]
    fn backward_returns_input_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::rand_uniform(&[2, 1, 8, 8], -1.0, 1.0, &mut rng);
        let y = net.forward(&x, true).unwrap();
        let d_input = net.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(d_input.dims(), x.dims());
        assert!(d_input.l1_norm() > 0.0);
    }

    #[test]
    fn whole_network_input_gradient_matches_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, &mut rng);
        let y = net.forward(&x, true).unwrap();
        let d_input = net.backward(&Tensor::ones(y.dims())).unwrap();
        // eps must stay small: at 1e-2 the central difference for this seed
        // steps across a max-pool argmax flip at index 0 and reads exactly
        // twice the true slope (at 1e-3 it matches the analytic gradient to
        // six decimals).
        let eps = 1e-3f32;
        for &idx in &[0usize, 17, 33, 63] {
            let mut plus = x.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = x.clone();
            minus.data_mut()[idx] -= eps;
            let f_plus = net.forward(&plus, false).unwrap().sum();
            let f_minus = net.forward(&minus, false).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            // Max-pool argmax ties make this an approximate check.
            assert!(
                (numeric - d_input.data()[idx]).abs() < 5e-2,
                "at {idx}: {numeric} vs {}",
                d_input.data()[idx]
            );
        }
    }

    #[test]
    fn injection_changes_first_layer_gradients() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, &mut rng);

        let y = net.forward(&x, true).unwrap();
        net.zero_grads();
        net.backward(&Tensor::zeros(y.dims())).unwrap();
        let baseline: f32 = net.param_grad_pairs()[0].1.l1_norm();
        assert_eq!(baseline, 0.0);

        // Injecting gradient at the conv output (layer 0) with a zero loss
        // gradient must still produce conv weight gradients.
        net.forward(&x, true).unwrap();
        net.zero_grads();
        let injection = Tensor::ones(&[1, 2, 8, 8]);
        net.backward_with_injection(&Tensor::zeros(y.dims()), &[(0, injection)])
            .unwrap();
        let with_injection: f32 = net.param_grad_pairs()[0].1.l1_norm();
        assert!(with_injection > 0.0);
    }

    #[test]
    fn injection_index_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        let y = net.forward(&x, true).unwrap();
        let err =
            net.backward_with_injection(&Tensor::zeros(y.dims()), &[(99, Tensor::zeros(&[1]))]);
        assert!(err.is_err());
    }

    #[test]
    fn serialization_roundtrip_preserves_outputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, &mut rng);
        let y1 = net.forward(&x, false).unwrap();
        let bytes = net.to_bytes().unwrap();
        let mut restored = Sequential::from_bytes(&bytes).unwrap();
        let y2 = restored.forward(&x, false).unwrap();
        for (a, b) in y1.data().iter().zip(y2.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!(Sequential::from_bytes(b"not json").is_err());
    }

    #[test]
    fn empty_network_is_an_error() {
        let mut net = Sequential::new();
        assert!(net.forward(&Tensor::zeros(&[1, 1, 4, 4]), false).is_err());
        assert!(net.backward(&Tensor::zeros(&[1, 3])).is_err());
        assert!(net.is_empty());
    }

    #[test]
    fn training_reduces_loss_on_a_toy_problem() {
        use crate::{softmax_cross_entropy, Adam, Optimizer};
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut net = tiny_net(&mut rng);
        // Two distinguishable patterns.
        let mut x = Tensor::zeros(&[2, 1, 8, 8]);
        for i in 0..8 {
            x.set(&[0, 0, i, i], 1.0).unwrap();
            x.set(&[1, 0, i, 7 - i], -1.0).unwrap();
        }
        let labels = [0usize, 1usize];
        let mut adam = Adam::new(0.01).unwrap();
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..60 {
            let logits = net.forward(&x, true).unwrap();
            let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
            net.zero_grads();
            net.backward(&grad).unwrap();
            let mut pairs = net.param_grad_pairs();
            adam.step(&mut pairs).unwrap();
            if first_loss.is_none() {
                first_loss = Some(loss);
            }
            last_loss = loss;
        }
        assert!(last_loss < 0.5 * first_loss.unwrap());
        let logits = net.forward(&x, false).unwrap();
        assert_eq!(crate::loss::predictions(&logits).unwrap(), vec![0, 1]);
    }
}
