//! Flattening layer between convolutional and dense parts of the network.

use blurnet_tensor::{Scratch, Tensor};
use serde::{Deserialize, Serialize};

use crate::{Layer, NnError, Result, TapeSlot};

/// Flattens an `[N, ...]` tensor to `[N, features]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Flatten {
    #[serde(skip)]
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        if input.shape().rank() < 2 {
            return Err(NnError::BadConfig(format!(
                "flatten expects at least rank 2, got {}",
                input.shape()
            )));
        }
        let n = input.dims()[0];
        let features = input.len() / n;
        self.cached_dims = Some(input.dims().to_vec());
        Ok(input.reshape(&[n, features])?)
    }

    fn infer(&self, input: &Tensor, _scratch: &mut Scratch) -> Result<Tensor> {
        if input.shape().rank() < 2 {
            return Err(NnError::BadConfig(format!(
                "flatten expects at least rank 2, got {}",
                input.shape()
            )));
        }
        let n = input.dims()[0];
        Ok(input.reshape(&[n, input.len() / n])?)
    }

    fn infer_recording(
        &self,
        input: &Tensor,
        tape: &mut TapeSlot,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let out = self.infer(input, scratch)?;
        *tape = TapeSlot::InputDims(input.dims().to_vec());
        Ok(out)
    }

    fn input_grad(
        &self,
        tape: &TapeSlot,
        grad_output: &Tensor,
        _scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let TapeSlot::InputDims(dims) = tape else {
            return Err(TapeSlot::mismatch(self.name()));
        };
        Ok(grad_output.reshape(dims)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_dims
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache(self.name().to_string()))?;
        Ok(grad_output.reshape(dims)?)
    }

    fn param_grad_pairs(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_unflatten() {
        let mut flat = Flatten::new();
        let input = Tensor::zeros(&[2, 3, 4, 4]);
        let out = flat.forward(&input, false).unwrap();
        assert_eq!(out.dims(), &[2, 48]);
        let back = flat.backward(&out).unwrap();
        assert_eq!(back.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn rejects_rank1_input() {
        let mut flat = Flatten::new();
        assert!(flat.forward(&Tensor::zeros(&[4]), false).is_err());
        assert!(flat.backward(&Tensor::zeros(&[2, 2])).is_err());
    }
}
