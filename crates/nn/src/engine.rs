//! The batch-parallel inference engine behind
//! [`Sequential::forward_batch`].
//!
//! Training needs the stateful [`crate::Layer::forward`] path (every layer
//! caches intermediates for backward), which serializes a network behind
//! `&mut self`. Inference does not: a [`BatchEngine`] takes an immutable
//! borrow of a [`Sequential`], pre-packs each convolution's weights into the
//! GEMM-ready transposed layout (and each dense layer's weights into
//! `[in, out]`) exactly once, and then evaluates **batch shards in
//! parallel** — the batch dimension is split into fixed-size shards that
//! rayon workers process independently, each worker owning a private
//! [`Scratch`] pool that is reused across every layer of every shard it
//! processes.
//!
//! # Determinism
//!
//! Outputs are **bit-identical** to running [`crate::Layer::forward`] with
//! `train = false` over the same input, for every batch size, shard size
//! and thread count:
//!
//! * shard boundaries depend only on the batch size, never on the thread
//!   count;
//! * every per-element accumulation (GEMM register tiles, im2col rows,
//!   depthwise taps) runs in a fixed order that does not depend on how the
//!   work is partitioned;
//! * workers write disjoint output ranges, so there are no accumulation
//!   races.
//!
//! `RAYON_NUM_THREADS=1` (or a 1-thread `rayon` pool) therefore reproduces
//! the parallel results exactly; the property tests in
//! `tests/forward_batch.rs` pin this.

use blurnet_tensor::{conv2d_prepacked, matmul, PackedConvWeights, Scratch, Tensor};
use rayon::prelude::*;

use crate::{loss, Conv2d, Dense, Layer, LayerKind, NnError, Result, Sequential};

/// One layer of a prepared inference plan: convolutions and dense layers
/// carry their pre-packed weights, everything else runs its plain
/// [`Layer::infer`] path.
enum EngineLayer<'n> {
    /// Convolution with the `[C·KH·KW, F]` weight pack.
    Conv {
        /// The borrowed layer (bias + spec).
        layer: &'n Conv2d,
        /// Weights packed once, shared read-only across shards and calls.
        packed: PackedConvWeights,
    },
    /// Dense layer with the `[in, out]` transposed weights.
    Dense {
        /// The borrowed layer (bias + shape checks).
        layer: &'n Dense,
        /// Transposed weights, shared read-only across shards and calls.
        weight_t: Tensor,
    },
    /// Any other layer, evaluated through [`Layer::infer`].
    Plain(&'n LayerKind),
}

/// A reusable, shareable inference plan over a borrowed [`Sequential`].
///
/// Build it once with [`Sequential::batch_engine`] and call
/// [`BatchEngine::forward`] as many times as needed — attack evaluation
/// loops classify thousands of images against one frozen network, and the
/// per-layer weight packing is paid exactly once for all of them.
///
/// ```
/// use blurnet_nn::{LisaCnn, Sequential};
/// use blurnet_tensor::Tensor;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let net = LisaCnn::new(18).build(&mut rng)?;
/// let engine = net.batch_engine()?;
/// let batch = Tensor::zeros(&[8, 3, 32, 32]);
/// // Two calls share the packed weights; results are deterministic.
/// assert_eq!(engine.forward(&batch)?, engine.forward(&batch)?);
/// # Ok::<(), blurnet_nn::NnError>(())
/// ```
pub struct BatchEngine<'n> {
    layers: Vec<EngineLayer<'n>>,
    shard_size: usize,
}

/// Default images per shard: one. The finest sharding maximizes batch-level
/// parallelism, and per-image GEMMs on this workload are already large
/// enough to run the blocked core at full speed.
const DEFAULT_SHARD_IMAGES: usize = 1;

impl<'n> BatchEngine<'n> {
    /// Prepares an inference plan: packs every convolution's weights into
    /// the GEMM layout and transposes every dense layer's weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for an empty network.
    pub fn new(net: &'n Sequential) -> Result<Self> {
        if net.is_empty() {
            return Err(NnError::BadConfig("network has no layers".into()));
        }
        let mut layers = Vec::with_capacity(net.len());
        for kind in net.iter() {
            layers.push(match kind {
                LayerKind::Conv2d(layer) => EngineLayer::Conv {
                    layer,
                    packed: layer.packed_weights()?,
                },
                LayerKind::Dense(layer) => EngineLayer::Dense {
                    layer,
                    weight_t: layer.weight_transposed(),
                },
                other => EngineLayer::Plain(other),
            });
        }
        Ok(BatchEngine {
            layers,
            shard_size: DEFAULT_SHARD_IMAGES,
        })
    }

    /// Overrides the number of images per shard (clamped to at least 1).
    ///
    /// Sharding only affects how work is distributed, never the results;
    /// the default of one image per shard is right for almost every
    /// workload.
    pub fn with_shard_size(mut self, images: usize) -> Self {
        self.shard_size = images.max(1);
        self
    }

    /// Images per shard.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Runs every layer over one shard, drawing workspace from `scratch`.
    fn infer_shard(&self, shard: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        let mut x: Option<Tensor> = None;
        for engine_layer in &self.layers {
            let input = x.as_ref().unwrap_or(shard);
            let out = match engine_layer {
                EngineLayer::Conv { layer, packed } => {
                    conv2d_prepacked(input, packed, Some(layer.bias()), layer.spec(), scratch)?
                }
                EngineLayer::Dense { layer, weight_t } => {
                    layer.check_input(input)?;
                    let mut out = matmul(input, weight_t)?;
                    layer.add_bias(&mut out);
                    out
                }
                EngineLayer::Plain(kind) => kind.infer(input, scratch)?,
            };
            x = Some(out);
        }
        Ok(x.expect("non-empty network produced an output"))
    }

    /// Runs the network over an `[N, ...]` batch, sharding the batch
    /// dimension across rayon workers.
    ///
    /// Bit-identical to a per-sample [`Sequential::forward`] loop with
    /// `train = false`, at every thread count (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns an error for an empty batch or a shape the first layer
    /// rejects.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if input.shape().rank() < 2 || input.dims()[0] == 0 {
            return Err(NnError::BadConfig(format!(
                "forward_batch expects a non-empty [N, ...] batch, got {}",
                input.shape()
            )));
        }
        let n = input.dims()[0];
        let num_shards = n.div_ceil(self.shard_size);
        let threads = rayon::current_num_threads();
        if threads <= 1 || num_shards == 1 {
            // Sequential path: one scratch pool serves every shard.
            let mut scratch = Scratch::new();
            if num_shards == 1 {
                return self.infer_shard(input, &mut scratch);
            }
            let mut parts = Vec::with_capacity(num_shards);
            for s in 0..num_shards {
                let start = s * self.shard_size;
                let count = self.shard_size.min(n - start);
                let shard = input.batch_slice(start, count)?;
                parts.push(self.infer_shard(&shard, &mut scratch)?);
            }
            return Ok(Tensor::concat_batch(&parts)?);
        }

        // Parallel path: contiguous groups of shards go to rayon workers.
        // Each worker owns one Scratch for its whole group and pins nested
        // (intra-op) parallelism to one thread — batch-level parallelism
        // replaces spatial fan-out, so the thread budget is spent once.
        let group = num_shards.div_ceil(threads);
        let mut slots: Vec<Option<Result<Tensor>>> = (0..num_shards).map(|_| None).collect();
        slots
            .par_chunks_mut(group)
            .enumerate()
            .for_each(|(g, slots_group)| {
                let inner = rayon::ThreadPoolBuilder::new().num_threads(1).build();
                let mut scratch = Scratch::new();
                for (j, slot) in slots_group.iter_mut().enumerate() {
                    let s = g * group + j;
                    let start = s * self.shard_size;
                    let count = self.shard_size.min(n - start);
                    let result = input
                        .batch_slice(start, count)
                        .map_err(NnError::from)
                        .and_then(|shard| match &inner {
                            Ok(pool) => pool.install(|| self.infer_shard(&shard, &mut scratch)),
                            Err(_) => self.infer_shard(&shard, &mut scratch),
                        });
                    *slot = Some(result);
                }
            });
        let parts = slots
            .into_iter()
            .map(|slot| slot.expect("every shard slot is filled"))
            .collect::<Result<Vec<Tensor>>>()?;
        Ok(Tensor::concat_batch(&parts)?)
    }

    /// Class predictions (argmax of the logits) for a batch, through the
    /// batch-parallel path.
    ///
    /// # Errors
    ///
    /// Propagates [`BatchEngine::forward`] errors.
    pub fn predict(&self, input: &Tensor) -> Result<Vec<usize>> {
        loss::predictions(&self.forward(input)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LisaCnn;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn lisa_net(seed: u64) -> Sequential {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        LisaCnn::new(18)
            .input_size(16)
            .conv1_filters(4)
            .build(&mut rng)
            .unwrap()
    }

    #[test]
    fn engine_matches_stateful_forward_bitwise() {
        let mut net = lisa_net(1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let batch = Tensor::rand_uniform(&[5, 3, 16, 16], 0.0, 1.0, &mut rng);
        let reference = net.forward(&batch, false).unwrap();
        let engine = BatchEngine::new(&net).unwrap();
        assert_eq!(engine.forward(&batch).unwrap(), reference);
        // A second call through the same engine (reused packs) agrees too.
        assert_eq!(engine.forward(&batch).unwrap(), reference);
    }

    #[test]
    fn shard_size_does_not_change_results() {
        let net = lisa_net(3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let batch = Tensor::rand_uniform(&[7, 3, 16, 16], 0.0, 1.0, &mut rng);
        let base = BatchEngine::new(&net).unwrap().forward(&batch).unwrap();
        for shard in [2usize, 3, 7, 16] {
            let engine = BatchEngine::new(&net).unwrap().with_shard_size(shard);
            assert_eq!(engine.shard_size(), shard);
            assert_eq!(engine.forward(&batch).unwrap(), base, "shard {shard}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let net = lisa_net(5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let batch = Tensor::rand_uniform(&[6, 3, 16, 16], 0.0, 1.0, &mut rng);
        let engine = BatchEngine::new(&net).unwrap();
        let mut outputs = Vec::new();
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            outputs.push(pool.install(|| engine.forward(&batch).unwrap()));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn predict_matches_stateful_predict() {
        let mut net = lisa_net(7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let batch = Tensor::rand_uniform(&[4, 3, 16, 16], 0.0, 1.0, &mut rng);
        let expected = net.predict(&batch).unwrap();
        let engine = BatchEngine::new(&net).unwrap();
        assert_eq!(engine.predict(&batch).unwrap(), expected);
    }

    #[test]
    fn rejects_empty_networks_and_batches() {
        let empty = Sequential::new();
        assert!(BatchEngine::new(&empty).is_err());
        let net = lisa_net(9);
        let engine = BatchEngine::new(&net).unwrap();
        assert!(engine.forward(&Tensor::zeros(&[0, 3, 16, 16])).is_err());
        assert!(engine.forward(&Tensor::zeros(&[4])).is_err());
    }
}
