//! The batch-parallel inference **and gradient** engine behind
//! [`Sequential::forward_batch`] and [`Sequential::input_grad_batch`].
//!
//! Training needs the stateful [`crate::Layer::forward`] path (every layer
//! caches intermediates for backward), which serializes a network behind
//! `&mut self`. Inference does not: a [`BatchEngine`] takes an immutable
//! borrow of a [`Sequential`], pre-packs each convolution's weights into the
//! GEMM-ready transposed layout (and each dense layer's weights into
//! `[in, out]`) exactly once, and then evaluates **batch shards in
//! parallel** — the batch dimension is split into fixed-size shards that
//! rayon workers process independently, each worker owning a private
//! [`Scratch`] pool that is reused across every layer of every shard it
//! processes.
//!
//! The gradient path works the same way: a recorded forward pass writes
//! what backward needs into a caller-owned tape (one [`TapeSlot`] per
//! layer, owned by the worker, never by the network), then
//! [`BatchEngine::forward_backward_batch`] / [`BatchEngine::input_grad`]
//! walk the tape backwards through each layer's immutable
//! [`crate::Layer::input_grad`]. Only **input** gradients are produced —
//! exactly what PGD/RP2/adaptive attack generation needs — so the
//! weight-gradient GEMMs of the training backward are skipped entirely,
//! and all `steps × images` gradient iterations of an attack run as
//! `steps` batched passes.
//!
//! # Determinism
//!
//! Forward outputs are **bit-identical** to running
//! [`crate::Layer::forward`] with `train = false` over the same input, and
//! input gradients are bit-identical to the per-image stateful
//! [`Sequential::backward`] loop, for every batch size, shard size and
//! thread count:
//!
//! * shard boundaries depend only on the batch size, never on the thread
//!   count;
//! * every per-element accumulation (GEMM register tiles, im2col rows,
//!   depthwise taps, col2im folds) runs in a fixed order that does not
//!   depend on how the work is partitioned;
//! * workers write disjoint output ranges, so there are no accumulation
//!   races.
//!
//! `RAYON_NUM_THREADS=1` (or a 1-thread `rayon` pool) therefore reproduces
//! the parallel results exactly; the property tests in
//! `tests/forward_batch.rs` and `tests/input_grad_batch.rs` pin this.
//!
//! # Sharing an engine across workers
//!
//! A [`BatchEngine`] is `Send + Sync` (asserted at compile time below):
//! it holds only immutable borrows of the network plus read-only weight
//! packs, and every call drives per-worker scratch state, so **one engine
//! may be used from many threads at once**. This is the borrow model the
//! experiment scheduler builds on — trained networks are shared read-only
//! (e.g. behind an `Arc`) across concurrently executing evaluation cells,
//! and each cell freely constructs or reuses engines over those weights
//! from whatever worker it lands on. Anything mutable (smoothing RNGs,
//! training caches) lives outside the engine in per-cell clones.

use std::sync::Arc;

use blurnet_tensor::{default_backend, Backend, PackedConvWeights, Scratch, Tensor};
use rayon::prelude::*;

use crate::{loss, Conv2d, Dense, Layer, LayerKind, NnError, Result, Sequential, TapeSlot};

/// One layer of a prepared inference plan: convolutions and dense layers
/// carry their pre-packed weights, everything else runs its plain
/// [`Layer::infer`] path.
enum EngineLayer<'n> {
    /// Convolution with the `[C·KH·KW, F]` weight pack.
    Conv {
        /// The borrowed layer (bias + spec).
        layer: &'n Conv2d,
        /// Weights packed once, shared read-only across shards and calls.
        packed: PackedConvWeights,
    },
    /// Dense layer with the `[in, out]` transposed weights.
    Dense {
        /// The borrowed layer (bias + shape checks).
        layer: &'n Dense,
        /// Transposed weights, shared read-only across shards and calls.
        weight_t: Tensor,
    },
    /// Any other layer, evaluated through [`Layer::infer`].
    Plain(&'n LayerKind),
}

/// Backward directive for one shard, produced by the loss closure passed
/// to [`BatchEngine::forward_backward_with`].
#[derive(Debug)]
pub struct ShardGrad {
    /// Gradient of the shard loss with respect to the shard logits.
    pub d_logits: Tensor,
    /// Extra gradient injected at the collected feature layer's output
    /// while back-propagating (adaptive feature penalties, Eq. 9–11).
    /// Ignored when no feature layer was requested.
    pub injection: Option<Tensor>,
    /// Scalar loss of this shard (diagnostics; the engine only forwards
    /// it into [`GradBatch::shard_losses`]).
    pub loss: f32,
}

/// Result of a batched forward + backward pass through a [`BatchEngine`].
#[derive(Debug)]
pub struct GradBatch {
    /// Logits for the whole batch, `[N, classes]`.
    pub logits: Tensor,
    /// Gradient of the loss with respect to the batch input, same shape as
    /// the input.
    pub input_grad: Tensor,
    /// Per-shard loss values, in shard order. With the default shard size
    /// of one image this is one loss per image.
    pub shard_losses: Vec<f32>,
}

/// A reusable, shareable inference plan over a borrowed [`Sequential`].
///
/// Build it once with [`Sequential::batch_engine`] and call
/// [`BatchEngine::forward`] as many times as needed — attack evaluation
/// loops classify thousands of images against one frozen network, and the
/// per-layer weight packing is paid exactly once for all of them.
///
/// ```
/// use blurnet_nn::{LisaCnn, Sequential};
/// use blurnet_tensor::Tensor;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let net = LisaCnn::new(18).build(&mut rng)?;
/// let engine = net.batch_engine()?;
/// let batch = Tensor::zeros(&[8, 3, 32, 32]);
/// // Two calls share the packed weights; results are deterministic.
/// assert_eq!(engine.forward(&batch)?, engine.forward(&batch)?);
/// # Ok::<(), blurnet_nn::NnError>(())
/// ```
pub struct BatchEngine<'n> {
    layers: Vec<EngineLayer<'n>>,
    shard_size: usize,
    /// Compute backend every kernel call routes through; per-worker
    /// [`Scratch`] pools are bound to it, so one engine dispatches at one
    /// tier for its whole lifetime.
    backend: Arc<dyn Backend>,
}

/// Default images per shard: one. The finest sharding maximizes batch-level
/// parallelism, and per-image GEMMs on this workload are already large
/// enough to run the blocked core at full speed.
const DEFAULT_SHARD_IMAGES: usize = 1;

// Compile-time pin of the sharing contract: an engine (and the plan it
// borrows) must remain usable from many threads at once. Removing `Sync`
// from any constituent (a layer, a weight pack, a tensor) breaks the
// experiment scheduler's shared-engine model and must fail loudly here.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<BatchEngine<'static>>();
    assert_shareable::<Sequential>();
};

impl<'n> BatchEngine<'n> {
    /// Prepares an inference plan: packs every convolution's weights into
    /// the GEMM layout and transposes every dense layer's weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for an empty network.
    pub fn new(net: &'n Sequential) -> Result<Self> {
        if net.is_empty() {
            return Err(NnError::BadConfig("network has no layers".into()));
        }
        let mut layers = Vec::with_capacity(net.len());
        for kind in net.iter() {
            layers.push(match kind {
                LayerKind::Conv2d(layer) => EngineLayer::Conv {
                    layer,
                    packed: layer.packed_weights()?,
                },
                LayerKind::Dense(layer) => EngineLayer::Dense {
                    layer,
                    weight_t: layer.weight_transposed(),
                },
                other => EngineLayer::Plain(other),
            });
        }
        Ok(BatchEngine {
            layers,
            shard_size: DEFAULT_SHARD_IMAGES,
            backend: default_backend(),
        })
    }

    /// Overrides the compute backend (default: the process-wide
    /// [`default_backend`]). Cross-dispatch tests pin engines to explicit
    /// tiers with this; results must be identical across supported tiers.
    pub fn with_backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backend = backend;
        self
    }

    /// The compute backend this engine dispatches through.
    pub fn backend(&self) -> Arc<dyn Backend> {
        Arc::clone(&self.backend)
    }

    /// Overrides the number of images per shard (clamped to at least 1).
    ///
    /// For **forward** evaluation, sharding only affects how work is
    /// distributed, never the results. The **gradient** path is different:
    /// [`BatchEngine::forward_backward_batch`] normalizes its per-shard
    /// cross-entropy over the shard, so a larger shard scales the logit
    /// (and therefore input) gradients by `1/shard_count` and makes
    /// [`GradBatch::shard_losses`] shard means instead of per-image
    /// losses. Sign-based consumers (PGD) are unaffected; magnitude-based
    /// consumers should keep the default of one image per shard.
    pub fn with_shard_size(mut self, images: usize) -> Self {
        self.shard_size = images.max(1);
        self
    }

    /// Images per shard.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Runs every layer over one shard, drawing workspace from `scratch`.
    fn infer_shard(&self, shard: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        let mut x: Option<Tensor> = None;
        for engine_layer in &self.layers {
            let input = x.as_ref().unwrap_or(shard);
            let out = match engine_layer {
                EngineLayer::Conv { layer, packed } => self.backend.conv2d_prepacked(
                    input,
                    packed,
                    Some(layer.bias()),
                    layer.spec(),
                    scratch,
                )?,
                EngineLayer::Dense { layer, weight_t } => {
                    layer.check_input(input)?;
                    let mut out = self.backend.matmul(input, weight_t)?;
                    layer.add_bias(&mut out);
                    out
                }
                EngineLayer::Plain(kind) => kind.infer(input, scratch)?,
            };
            x = Some(out);
        }
        Ok(x.expect("non-empty network produced an output"))
    }

    /// Runs every layer over one shard while recording each layer's
    /// backward needs into `tapes` (resized to the network depth), and
    /// optionally cloning out the activation after layer `feature_layer`.
    fn infer_shard_recorded(
        &self,
        shard: &Tensor,
        feature_layer: Option<usize>,
        tapes: &mut Vec<TapeSlot>,
        scratch: &mut Scratch,
    ) -> Result<(Tensor, Option<Tensor>)> {
        tapes.clear();
        tapes.resize_with(self.layers.len(), TapeSlot::default);
        let mut feature = None;
        let mut x: Option<Tensor> = None;
        for (i, engine_layer) in self.layers.iter().enumerate() {
            let input = x.as_ref().unwrap_or(shard);
            let out = match engine_layer {
                EngineLayer::Conv { layer, packed } => {
                    let out = self.backend.conv2d_prepacked(
                        input,
                        packed,
                        Some(layer.bias()),
                        layer.spec(),
                        scratch,
                    )?;
                    // Conv input gradients only need the recorded shape.
                    tapes[i] = TapeSlot::InputDims(input.dims().to_vec());
                    out
                }
                EngineLayer::Dense { layer, weight_t } => {
                    layer.check_input(input)?;
                    let mut out = self.backend.matmul(input, weight_t)?;
                    layer.add_bias(&mut out);
                    out
                }
                EngineLayer::Plain(kind) => kind.infer_recording(input, &mut tapes[i], scratch)?,
            };
            if feature_layer == Some(i) {
                feature = Some(out.clone());
            }
            x = Some(out);
        }
        let logits = x.expect("non-empty network produced an output");
        Ok((logits, feature))
    }

    /// Walks one shard's tape backwards through every layer's immutable
    /// input-gradient path, adding `injection` at `feature_layer`'s output
    /// on the way (mirroring [`Sequential::backward_with_injection`]).
    fn input_grad_shard(
        &self,
        tapes: &[TapeSlot],
        d_logits: Tensor,
        injection: Option<(usize, &Tensor)>,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let mut grad = d_logits;
        for (i, engine_layer) in self.layers.iter().enumerate().rev() {
            if let Some((idx, extra)) = injection {
                if idx == i {
                    grad.add_scaled(extra, 1.0)?;
                }
            }
            grad = match engine_layer {
                EngineLayer::Conv { layer, packed } => {
                    // The pack carries the pre-flipped taps for the direct
                    // transposed kernel — built once per engine, shared
                    // read-only across shards (bit-identical to the
                    // per-call layer path).
                    let TapeSlot::InputDims(dims) = &tapes[i] else {
                        return Err(NnError::MissingForwardCache("conv2d".to_string()));
                    };
                    self.backend.conv2d_input_grad_prepacked(
                        packed,
                        &grad,
                        dims,
                        layer.spec(),
                        scratch,
                    )?
                }
                EngineLayer::Dense { layer, .. } => layer.input_grad(&tapes[i], &grad, scratch)?,
                EngineLayer::Plain(kind) => kind.input_grad(&tapes[i], &grad, scratch)?,
            };
        }
        Ok(grad)
    }

    /// Forward + backward for one shard: recorded forward, caller's loss
    /// closure, then the tape-driven input gradient.
    fn run_shard_backward<F>(
        &self,
        shard: &Tensor,
        start: usize,
        feature_layer: Option<usize>,
        grad_fn: &F,
        tapes: &mut Vec<TapeSlot>,
        scratch: &mut Scratch,
    ) -> Result<(Tensor, Tensor, f32)>
    where
        F: Fn(usize, &Tensor, Option<&Tensor>) -> Result<ShardGrad> + Sync,
    {
        let (logits, feature) = self.infer_shard_recorded(shard, feature_layer, tapes, scratch)?;
        let shard_grad = grad_fn(start, &logits, feature.as_ref())?;
        if shard_grad.d_logits.dims() != logits.dims() {
            return Err(NnError::BadConfig(format!(
                "shard gradient shape {:?} does not match logits {:?}",
                shard_grad.d_logits.dims(),
                logits.dims()
            )));
        }
        let injection = match (feature_layer, shard_grad.injection.as_ref()) {
            (Some(idx), Some(extra)) => Some((idx, extra)),
            _ => None,
        };
        let d_input = self.input_grad_shard(tapes, shard_grad.d_logits, injection, scratch)?;
        Ok((logits, d_input, shard_grad.loss))
    }

    /// Runs a recorded forward pass and a tape-driven backward pass over an
    /// `[N, ...]` batch, sharding the batch dimension across rayon workers
    /// exactly like [`BatchEngine::forward`] (same shard boundaries, same
    /// per-worker [`Scratch`] pools and tape vectors, bit-identical results
    /// at every thread count).
    ///
    /// For every shard, `grad_fn(start, logits, feature)` receives the
    /// index of the shard's first image, the shard logits, and (when
    /// `feature_layer` is `Some(i)`) the activation after layer `i`; it
    /// returns the shard's loss gradient, an optional gradient to inject at
    /// that activation, and a diagnostic loss value. With the default shard
    /// size of one image the closure sees exactly what a per-image attack
    /// loop would — per-image logits and per-image losses.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty batch, an out-of-range
    /// `feature_layer`, a shape the first layer rejects, or any `grad_fn`
    /// failure.
    pub fn forward_backward_with<F>(
        &self,
        input: &Tensor,
        feature_layer: Option<usize>,
        grad_fn: F,
    ) -> Result<GradBatch>
    where
        F: Fn(usize, &Tensor, Option<&Tensor>) -> Result<ShardGrad> + Sync,
    {
        if input.shape().rank() < 2 || input.dims()[0] == 0 {
            return Err(NnError::BadConfig(format!(
                "forward_backward expects a non-empty [N, ...] batch, got {}",
                input.shape()
            )));
        }
        if let Some(idx) = feature_layer {
            if idx >= self.layers.len() {
                return Err(NnError::BadConfig(format!(
                    "feature layer index {idx} out of range for {} layers",
                    self.layers.len()
                )));
            }
        }
        let results = self.run_sharded(
            input,
            || (Scratch::with_backend(self.backend()), Vec::new()),
            |state, start, shard| {
                let (scratch, tapes) = state;
                self.run_shard_backward(shard, start, feature_layer, &grad_fn, tapes, scratch)
            },
        )?;
        let mut logits = Vec::with_capacity(results.len());
        let mut grads = Vec::with_capacity(results.len());
        let mut losses = Vec::with_capacity(results.len());
        for (l, g, loss) in results {
            logits.push(l);
            grads.push(g);
            losses.push(loss);
        }
        Ok(GradBatch {
            logits: Tensor::concat_batch(&logits)?,
            input_grad: Tensor::concat_batch(&grads)?,
            shard_losses: losses,
        })
    }

    /// The one shard scheduler behind [`BatchEngine::forward`] and
    /// [`BatchEngine::forward_backward_with`]: runs `run_shard` over every
    /// shard of `input`, sequentially on a single worker state when the
    /// thread budget is one (or there is only one shard), otherwise in
    /// contiguous shard groups across rayon workers — each worker owns one
    /// `make_state()` for its whole group and pins nested (intra-op)
    /// parallelism to one thread, so the thread budget is spent on the
    /// batch dimension exactly once.
    ///
    /// Shard boundaries depend only on the batch size and shard size —
    /// never on the thread count — which is what makes every engine result
    /// bit-identical at any `RAYON_NUM_THREADS`. Both entry points share
    /// this scheduler, so their partitioning can never drift apart.
    fn run_sharded<T, S, MkS, F>(
        &self,
        input: &Tensor,
        make_state: MkS,
        run_shard: F,
    ) -> Result<Vec<T>>
    where
        T: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &Tensor) -> Result<T> + Sync,
    {
        let n = input.dims()[0];
        let num_shards = n.div_ceil(self.shard_size);
        let threads = rayon::current_num_threads();
        if threads <= 1 || num_shards == 1 {
            let mut state = make_state();
            let mut out = Vec::with_capacity(num_shards);
            for s in 0..num_shards {
                let start = s * self.shard_size;
                let count = self.shard_size.min(n - start);
                let shard = input.batch_slice(start, count)?;
                out.push(run_shard(&mut state, start, &shard)?);
            }
            return Ok(out);
        }
        let group = num_shards.div_ceil(threads);
        let mut slots: Vec<Option<Result<T>>> = (0..num_shards).map(|_| None).collect();
        slots
            .par_chunks_mut(group)
            .enumerate()
            .for_each(|(g, slots_group)| {
                let inner = rayon::ThreadPoolBuilder::new().num_threads(1).build();
                let mut state = make_state();
                for (j, slot) in slots_group.iter_mut().enumerate() {
                    let s = g * group + j;
                    let start = s * self.shard_size;
                    let count = self.shard_size.min(n - start);
                    let result = input
                        .batch_slice(start, count)
                        .map_err(NnError::from)
                        .and_then(|shard| match &inner {
                            Ok(pool) => pool.install(|| run_shard(&mut state, start, &shard)),
                            Err(_) => run_shard(&mut state, start, &shard),
                        });
                    *slot = Some(result);
                }
            });
        slots
            .into_iter()
            .map(|slot| slot.expect("every shard slot is filled"))
            .collect()
    }

    /// Gradient of a caller-supplied output gradient with respect to the
    /// batch input: one recorded forward plus one tape-driven backward,
    /// sharded like [`BatchEngine::forward`].
    ///
    /// `grad_output` must be `[N, classes]` aligned with `input`'s batch
    /// dimension. Bit-identical at every thread count, and identical to a
    /// per-image stateful `forward`/`backward` loop over the same rows.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty batch or mismatched shapes.
    pub fn input_grad(&self, input: &Tensor, grad_output: &Tensor) -> Result<Tensor> {
        if grad_output.shape().rank() < 2 || grad_output.dims()[0] != input.dims()[0] {
            return Err(NnError::BadConfig(format!(
                "grad_output {} does not align with input batch {}",
                grad_output.shape(),
                input.shape()
            )));
        }
        let out = self.forward_backward_with(input, None, |start, logits, _| {
            Ok(ShardGrad {
                d_logits: grad_output.batch_slice(start, logits.dims()[0])?,
                injection: None,
                loss: 0.0,
            })
        })?;
        Ok(out.input_grad)
    }

    /// Batched softmax cross-entropy forward + backward: the gradient-loop
    /// workhorse of PGD-style attacks. Losses and logit gradients are
    /// computed **per shard** (default: per image), so with the default
    /// shard size the result matches a per-image attack loop exactly —
    /// `shard_losses[i]` is image `i`'s loss and the input gradient rows
    /// are per-image cross-entropy gradients.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty batch or a label count that does not
    /// match the batch size.
    pub fn forward_backward_batch(&self, input: &Tensor, labels: &[usize]) -> Result<GradBatch> {
        if labels.len() != input.dims().first().copied().unwrap_or(0) {
            return Err(NnError::BadLabels(format!(
                "{} labels for a batch of {}",
                labels.len(),
                input.dims().first().copied().unwrap_or(0)
            )));
        }
        self.forward_backward_with(input, None, |start, logits, _| {
            let count = logits.dims()[0];
            let (loss, d_logits) =
                loss::softmax_cross_entropy(logits, &labels[start..start + count])?;
            Ok(ShardGrad {
                d_logits,
                injection: None,
                loss,
            })
        })
    }

    /// Runs the network over an `[N, ...]` batch, sharding the batch
    /// dimension across rayon workers.
    ///
    /// Bit-identical to a per-sample [`Sequential::forward`] loop with
    /// `train = false`, at every thread count (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns an error for an empty batch or a shape the first layer
    /// rejects.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if input.shape().rank() < 2 || input.dims()[0] == 0 {
            return Err(NnError::BadConfig(format!(
                "forward_batch expects a non-empty [N, ...] batch, got {}",
                input.shape()
            )));
        }
        // Single-shard fast path: no slicing or concatenation to pay.
        if input.dims()[0].div_ceil(self.shard_size) == 1 {
            return self.infer_shard(input, &mut Scratch::with_backend(self.backend()));
        }
        let parts = self.run_sharded(
            input,
            || Scratch::with_backend(self.backend()),
            |scratch, _start, shard| self.infer_shard(shard, scratch),
        )?;
        Ok(Tensor::concat_batch(&parts)?)
    }

    /// Class predictions (argmax of the logits) for a batch, through the
    /// batch-parallel path.
    ///
    /// # Errors
    ///
    /// Propagates [`BatchEngine::forward`] errors.
    pub fn predict(&self, input: &Tensor) -> Result<Vec<usize>> {
        loss::predictions(&self.forward(input)?)
    }

    /// Class prediction plus its softmax probability for every image of a
    /// batch, through the batch-parallel path.
    ///
    /// This is the serving subsystem's response surface: because both the
    /// sharded forward pass and [`loss::confidences`] treat every image
    /// independently, each `(label, confidence)` pair is **bit-identical**
    /// no matter which other requests were coalesced into the same batch —
    /// at every batch size, shard size and thread count.
    ///
    /// # Errors
    ///
    /// Propagates [`BatchEngine::forward`] errors.
    pub fn classify_with_confidence(&self, input: &Tensor) -> Result<Vec<(usize, f32)>> {
        loss::confidences(&self.forward(input)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LisaCnn;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn lisa_net(seed: u64) -> Sequential {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        LisaCnn::new(18)
            .input_size(16)
            .conv1_filters(4)
            .build(&mut rng)
            .unwrap()
    }

    #[test]
    fn engine_matches_stateful_forward_bitwise() {
        let mut net = lisa_net(1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let batch = Tensor::rand_uniform(&[5, 3, 16, 16], 0.0, 1.0, &mut rng);
        let reference = net.forward(&batch, false).unwrap();
        let engine = BatchEngine::new(&net).unwrap();
        assert_eq!(engine.forward(&batch).unwrap(), reference);
        // A second call through the same engine (reused packs) agrees too.
        assert_eq!(engine.forward(&batch).unwrap(), reference);
    }

    #[test]
    fn shard_size_does_not_change_results() {
        let net = lisa_net(3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let batch = Tensor::rand_uniform(&[7, 3, 16, 16], 0.0, 1.0, &mut rng);
        let base = BatchEngine::new(&net).unwrap().forward(&batch).unwrap();
        for shard in [2usize, 3, 7, 16] {
            let engine = BatchEngine::new(&net).unwrap().with_shard_size(shard);
            assert_eq!(engine.shard_size(), shard);
            assert_eq!(engine.forward(&batch).unwrap(), base, "shard {shard}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let net = lisa_net(5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let batch = Tensor::rand_uniform(&[6, 3, 16, 16], 0.0, 1.0, &mut rng);
        let engine = BatchEngine::new(&net).unwrap();
        let mut outputs = Vec::new();
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            outputs.push(pool.install(|| engine.forward(&batch).unwrap()));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn predict_matches_stateful_predict() {
        let mut net = lisa_net(7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let batch = Tensor::rand_uniform(&[4, 3, 16, 16], 0.0, 1.0, &mut rng);
        let expected = net.predict(&batch).unwrap();
        let engine = BatchEngine::new(&net).unwrap();
        assert_eq!(engine.predict(&batch).unwrap(), expected);
    }

    #[test]
    fn classify_with_confidence_is_batch_invariant() {
        let net = lisa_net(21);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let batch = Tensor::rand_uniform(&[6, 3, 16, 16], 0.0, 1.0, &mut rng);
        let engine = BatchEngine::new(&net).unwrap();
        let batched = engine.classify_with_confidence(&batch).unwrap();
        assert_eq!(batched.len(), 6);
        // Each image classified alone must reproduce its batched result
        // bit-for-bit — the serving determinism contract.
        for (i, expected) in batched.iter().enumerate() {
            let solo = engine
                .classify_with_confidence(&batch.batch_slice(i, 1).unwrap())
                .unwrap()[0];
            assert_eq!(solo.0, expected.0, "label diverged for image {i}");
            assert_eq!(
                solo.1.to_bits(),
                expected.1.to_bits(),
                "confidence bits diverged for image {i}"
            );
        }
        // Labels agree with the plain predict path.
        assert_eq!(
            batched.iter().map(|&(l, _)| l).collect::<Vec<_>>(),
            engine.predict(&batch).unwrap()
        );
    }

    #[test]
    fn rejects_empty_networks_and_batches() {
        let empty = Sequential::new();
        assert!(BatchEngine::new(&empty).is_err());
        let net = lisa_net(9);
        let engine = BatchEngine::new(&net).unwrap();
        assert!(engine.forward(&Tensor::zeros(&[0, 3, 16, 16])).is_err());
        assert!(engine.forward(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn input_grad_matches_stateful_backward_per_image() {
        let mut net = lisa_net(11);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let batch = Tensor::rand_uniform(&[5, 3, 16, 16], 0.0, 1.0, &mut rng);
        let logits = net.forward(&batch, false).unwrap();
        let grad_out = Tensor::rand_uniform(logits.dims(), -1.0, 1.0, &mut rng);
        // Per-image mutable reference.
        let mut parts = Vec::new();
        for i in 0..5 {
            let image = batch.batch_slice(i, 1).unwrap();
            net.forward(&image, true).unwrap();
            parts.push(net.backward(&grad_out.batch_slice(i, 1).unwrap()).unwrap());
        }
        let reference = Tensor::concat_batch(&parts).unwrap();
        let engine = BatchEngine::new(&net).unwrap();
        let got = engine.input_grad(&batch, &grad_out).unwrap();
        assert_eq!(got, reference, "tape backward diverged from stateful");
        // Misaligned grad_output is rejected.
        assert!(engine.input_grad(&batch, &Tensor::zeros(&[4, 18])).is_err());
    }

    #[test]
    fn forward_backward_batch_is_thread_invariant() {
        let net = lisa_net(13);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let batch = Tensor::rand_uniform(&[6, 3, 16, 16], 0.0, 1.0, &mut rng);
        let labels = [0usize, 3, 7, 11, 14, 17];
        let engine = BatchEngine::new(&net).unwrap();
        let mut outputs = Vec::new();
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            outputs.push(pool.install(|| engine.forward_backward_batch(&batch, &labels).unwrap()));
        }
        for other in &outputs[1..] {
            assert_eq!(outputs[0].logits, other.logits);
            assert_eq!(outputs[0].input_grad, other.input_grad);
            assert_eq!(outputs[0].shard_losses, other.shard_losses);
        }
        // Logits agree with the plain forward path.
        assert_eq!(outputs[0].logits, engine.forward(&batch).unwrap());
        // Per-image losses (default shard size 1).
        assert_eq!(outputs[0].shard_losses.len(), 6);
        // Label count validation.
        assert!(engine.forward_backward_batch(&batch, &labels[..3]).is_err());
    }

    #[test]
    fn feature_collection_and_injection_match_stateful_path() {
        let mut net = lisa_net(15);
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let image = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
        let feature_layer = 0usize;

        // Stateful reference: collect activations, inject ones at conv1's
        // output with a zero loss gradient.
        let (logits, activations) = net.forward_collect(&image, true).unwrap();
        let injection = Tensor::ones(activations[feature_layer].dims());
        let reference = net
            .backward_with_injection(&Tensor::zeros(logits.dims()), &[(0, injection.clone())])
            .unwrap();

        let engine = BatchEngine::new(&net).unwrap();
        let out = engine
            .forward_backward_with(&image, Some(feature_layer), |_, shard_logits, feature| {
                let feature = feature.expect("feature activation collected");
                assert_eq!(feature.dims(), activations[feature_layer].dims());
                assert_eq!(feature, &activations[feature_layer]);
                Ok(ShardGrad {
                    d_logits: Tensor::zeros(shard_logits.dims()),
                    injection: Some(Tensor::ones(feature.dims())),
                    loss: 0.5,
                })
            })
            .unwrap();
        assert_eq!(out.input_grad, reference);
        assert_eq!(out.shard_losses, vec![0.5]);

        // Out-of-range feature layer is rejected up front.
        assert!(engine
            .forward_backward_with(&image, Some(99), |_, l, _| Ok(ShardGrad {
                d_logits: Tensor::zeros(l.dims()),
                injection: None,
                loss: 0.0,
            }))
            .is_err());
        // A wrong-shaped shard gradient is rejected.
        assert!(engine
            .forward_backward_with(&image, None, |_, _, _| Ok(ShardGrad {
                d_logits: Tensor::zeros(&[1, 3]),
                injection: None,
                loss: 0.0,
            }))
            .is_err());
    }
}
