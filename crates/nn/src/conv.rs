//! Standard 2-D convolution layer.

use blurnet_tensor::{ConvSpec, Initializer, PackedConvWeights, Scratch, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Layer, NnError, Result, TapeSlot};

/// A trainable 2-D convolution layer with bias.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    d_weight: Tensor,
    d_bias: Tensor,
    spec: ConvSpec,
    #[serde(skip)]
    cached_input: Option<Tensor>,
    /// Per-layer workspace pool: im2col/GEMM buffers are reused across
    /// forward/backward calls instead of being reallocated.
    #[serde(skip)]
    scratch: Scratch,
}

impl Conv2d {
    /// Creates a convolution layer with `out_channels` filters of size
    /// `kernel × kernel` over `in_channels` input channels, using Kaiming
    /// initialization for the weights and zero bias.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if any size is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        spec: ConvSpec,
        rng: &mut R,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 {
            return Err(NnError::BadConfig(
                "conv2d sizes must be non-zero".to_string(),
            ));
        }
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let weight = Initializer::KaimingUniform.init(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            fan_out,
            rng,
        );
        Ok(Conv2d {
            d_weight: Tensor::zeros(weight.dims()),
            d_bias: Tensor::zeros(&[out_channels]),
            bias: Tensor::zeros(&[out_channels]),
            weight,
            spec,
            cached_input: None,
            scratch: Scratch::new(),
        })
    }

    /// Reassembles a layer from persisted parameters: `weight` must be
    /// `[F, C, KH, KW]` and `bias` `[F]`. Gradient accumulators start at
    /// zero and caches empty — exactly the state of a freshly trained
    /// layer whose gradients were zeroed, so save→load→infer is
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when the shapes disagree.
    pub fn from_parts(weight: Tensor, bias: Tensor, spec: ConvSpec) -> Result<Self> {
        if weight.shape().rank() != 4 {
            return Err(NnError::BadConfig(format!(
                "conv2d weight must be rank 4, got {}",
                weight.shape()
            )));
        }
        if bias.shape().rank() != 1 || bias.dims()[0] != weight.dims()[0] {
            return Err(NnError::BadConfig(format!(
                "conv2d bias must be [{}], got {}",
                weight.dims()[0],
                bias.shape()
            )));
        }
        Ok(Conv2d {
            d_weight: Tensor::zeros(weight.dims()),
            d_bias: Tensor::zeros(bias.dims()),
            weight,
            bias,
            spec,
            cached_input: None,
            scratch: Scratch::new(),
        })
    }

    /// The convolution stride/padding spec.
    pub fn spec(&self) -> ConvSpec {
        self.spec
    }

    /// The filter weights `[F, C, KH, KW]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable access to the filter weights (used by tests and by defenses
    /// that overwrite filters with fixed kernels).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// The bias vector `[F]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Packs the filter weights into the GEMM-ready transposed layout used
    /// by [`blurnet_tensor::conv2d_prepacked`]. The batch engine calls this
    /// once per forward pass and shares the pack across batch shards.
    ///
    /// # Errors
    ///
    /// Never fails for a constructed layer (the weights are always rank 4).
    pub fn packed_weights(&self) -> Result<PackedConvWeights> {
        PackedConvWeights::pack(&self.weight).map_err(NnError::from)
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let backend = self.scratch.backend();
        let out = backend.conv2d(
            input,
            &self.weight,
            Some(&self.bias),
            self.spec,
            &mut self.scratch,
        )?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn infer(&self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        Ok(scratch
            .backend()
            .conv2d(input, &self.weight, Some(&self.bias), self.spec, scratch)?)
    }

    fn infer_recording(
        &self,
        input: &Tensor,
        tape: &mut TapeSlot,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let out = self.infer(input, scratch)?;
        // The input gradient `col2im(g · W)` never reads the input itself —
        // only its shape.
        *tape = TapeSlot::InputDims(input.dims().to_vec());
        Ok(out)
    }

    fn input_grad(
        &self,
        tape: &TapeSlot,
        grad_output: &Tensor,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let TapeSlot::InputDims(dims) = tape else {
            return Err(TapeSlot::mismatch(self.name()));
        };
        Ok(scratch.backend().conv2d_input_grad(
            &self.weight,
            grad_output,
            dims,
            self.spec,
            scratch,
        )?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache(self.name().to_string()))?;
        let backend = self.scratch.backend();
        let grads = backend.conv2d_backward(
            input,
            &self.weight,
            grad_output,
            self.spec,
            &mut self.scratch,
        )?;
        self.d_weight.add_scaled(&grads.d_weight, 1.0)?;
        self.d_bias.add_scaled(&grads.d_bias, 1.0)?;
        Ok(grads.d_input)
    }

    fn param_grad_pairs(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        vec![
            (&mut self.weight, &self.d_weight),
            (&mut self.bias, &self.d_bias),
        ]
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn zero_grads(&mut self) {
        self.d_weight.map_inplace(|_| 0.0);
        self.d_bias.map_inplace(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_shape_and_backward_cache() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut conv = Conv2d::new(3, 8, 5, ConvSpec::new(2, 2).unwrap(), &mut rng).unwrap();
        let input = Tensor::zeros(&[2, 3, 32, 32]);
        let out = conv.forward(&input, true).unwrap();
        assert_eq!(out.dims(), &[2, 8, 16, 16]);
        let d_input = conv.backward(&Tensor::ones(out.dims())).unwrap();
        assert_eq!(d_input.dims(), input.dims());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, ConvSpec::same(3).unwrap(), &mut rng).unwrap();
        assert!(matches!(
            conv.backward(&Tensor::zeros(&[1, 1, 4, 4])),
            Err(NnError::MissingForwardCache(_))
        ));
    }

    #[test]
    fn gradients_accumulate_and_reset() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 2, 3, ConvSpec::same(3).unwrap(), &mut rng).unwrap();
        let input = Tensor::ones(&[1, 1, 4, 4]);
        let out = conv.forward(&input, true).unwrap();
        conv.backward(&Tensor::ones(out.dims())).unwrap();
        let first: f32 = conv.param_grad_pairs()[0].1.l1_norm();
        assert!(first > 0.0);
        conv.forward(&input, true).unwrap();
        conv.backward(&Tensor::ones(out.dims())).unwrap();
        let doubled: f32 = conv.param_grad_pairs()[0].1.l1_norm();
        assert!((doubled - 2.0 * first).abs() < 1e-3);
        conv.zero_grads();
        assert_eq!(conv.param_grad_pairs()[0].1.l1_norm(), 0.0);
    }

    #[test]
    fn rejects_zero_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(Conv2d::new(0, 1, 3, ConvSpec::same(3).unwrap(), &mut rng).is_err());
        assert!(Conv2d::new(1, 0, 3, ConvSpec::same(3).unwrap(), &mut rng).is_err());
        assert!(Conv2d::new(1, 1, 0, ConvSpec::same(3).unwrap(), &mut rng).is_err());
    }

    #[test]
    fn parameter_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let conv = Conv2d::new(3, 8, 5, ConvSpec::same(5).unwrap(), &mut rng).unwrap();
        assert_eq!(conv.parameter_count(), 8 * 3 * 5 * 5 + 8);
    }
}
