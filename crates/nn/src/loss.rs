//! Softmax, cross-entropy loss and classification accuracy.

use blurnet_tensor::Tensor;

use crate::{NnError, Result};

/// Row-wise softmax of a `[N, classes]` logits tensor.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] if the input is not rank 2.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    if logits.shape().rank() != 2 {
        return Err(NnError::BadConfig(format!(
            "softmax expects [N, classes], got {}",
            logits.shape()
        )));
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = vec![0.0f32; n * c];
    let d = logits.data();
    for i in 0..n {
        let row = &d[i * c..(i + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut denom = 0.0f32;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            out[i * c + j] = e;
            denom += e;
        }
        for j in 0..c {
            out[i * c + j] /= denom;
        }
    }
    Ok(Tensor::from_vec(out, &[n, c])?)
}

fn check_labels(logits: &Tensor, labels: &[usize]) -> Result<(usize, usize)> {
    if logits.shape().rank() != 2 {
        return Err(NnError::BadConfig(format!(
            "expected [N, classes] logits, got {}",
            logits.shape()
        )));
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(NnError::BadLabels(format!(
            "{} labels for a batch of {n}",
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
        return Err(NnError::BadLabels(format!(
            "label {bad} out of range for {c} classes"
        )));
    }
    Ok((n, c))
}

/// Mean softmax cross-entropy loss and its gradient with respect to the
/// logits.
///
/// # Errors
///
/// Returns an error if the logits are not rank 2 or the labels are
/// inconsistent with the batch.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let (n, c) = check_labels(logits, labels)?;
    let probs = softmax(logits)?;
    let p = probs.data();
    let mut loss = 0.0f32;
    let mut grad = p.to_vec();
    for (i, &label) in labels.iter().enumerate() {
        let prob = p[i * c + label].max(1e-12);
        loss -= prob.ln();
        grad[i * c + label] -= 1.0;
    }
    let scale = 1.0 / n as f32;
    for g in &mut grad {
        *g *= scale;
    }
    Ok((loss * scale, Tensor::from_vec(grad, &[n, c])?))
}

/// Fraction of rows whose argmax equals the label.
///
/// # Errors
///
/// Returns an error if the logits are not rank 2 or the labels are
/// inconsistent with the batch.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let (n, c) = check_labels(logits, labels)?;
    let d = logits.data();
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &d[i * c..(i + 1) * c];
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    Ok(correct as f32 / n as f32)
}

/// Predicted class index **and** its softmax probability for every row of
/// a `[N, classes]` logits tensor.
///
/// Each row is processed independently with the numerically stable
/// formulation `p = 1 / Σ_j exp(v_j − v_best)`, so a row's result depends
/// only on that row — batching rows together can never change a row's
/// confidence, which is what lets the serving path guarantee micro-batched
/// responses bit-identical to single-request execution.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] if the input is not rank 2.
pub fn confidences(logits: &Tensor) -> Result<Vec<(usize, f32)>> {
    if logits.shape().rank() != 2 {
        return Err(NnError::BadConfig(format!(
            "expected [N, classes] logits, got {}",
            logits.shape()
        )));
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let d = logits.data();
    Ok((0..n)
        .map(|i| {
            let row = &d[i * c..(i + 1) * c];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            // v_best is the row max, so every exponent is ≤ 0: stable.
            let denom: f32 = row.iter().map(|&v| (v - row[best]).exp()).sum();
            (best, 1.0 / denom)
        })
        .collect())
}

/// Predicted class index for every row of a `[N, classes]` logits tensor.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] if the input is not rank 2.
pub fn predictions(logits: &Tensor) -> Result<Vec<usize>> {
    if logits.shape().rank() != 2 {
        return Err(NnError::BadConfig(format!(
            "expected [N, classes] logits, got {}",
            logits.shape()
        )));
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let d = logits.data();
    Ok((0..n)
        .map(|i| {
            let row = &d[i * c..(i + 1) * c];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax(&logits).unwrap();
        for i in 0..2 {
            let s: f32 = (0..3).map(|j| p.get(&[i, j]).unwrap()).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Larger logits get larger probability.
        assert!(p.get(&[0, 2]).unwrap() > p.get(&[0, 0]).unwrap());
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let logits = Tensor::from_vec(vec![1000.0, 1001.0, 999.0], &[1, 3]).unwrap();
        let p = softmax(&logits).unwrap();
        assert!(p.data().iter().all(|v| v.is_finite()));
        let shifted = softmax(&logits.map(|v| v - 1000.0)).unwrap();
        for (a, b) in p.data().iter().zip(shifted.data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], &[1, 3]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss < 1e-3);
        let (bad_loss, _) = softmax_cross_entropy(&logits, &[1]).unwrap();
        assert!(bad_loss > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_numerical() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.8, 0.1, 0.0, -0.5], &[2, 3]).unwrap();
        let labels = [2usize, 0usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut plus = logits.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[idx] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &labels).unwrap();
            let (lm, _) = softmax_cross_entropy(&minus, &labels).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad.data()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn accuracy_and_predictions() {
        let logits =
            Tensor::from_vec(vec![2.0, 1.0, 0.0, 0.0, 0.5, 3.0, 1.0, 0.0, -1.0], &[3, 3]).unwrap();
        assert_eq!(predictions(&logits).unwrap(), vec![0, 2, 0]);
        assert!((accuracy(&logits, &[0, 2, 1]).unwrap() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn confidences_match_softmax_argmax_and_are_row_local() {
        let logits =
            Tensor::from_vec(vec![2.0, 1.0, 0.0, 0.0, 0.5, 3.0, 1.0, 0.0, -1.0], &[3, 3]).unwrap();
        let conf = confidences(&logits).unwrap();
        let probs = softmax(&logits).unwrap();
        assert_eq!(
            conf.iter().map(|&(l, _)| l).collect::<Vec<_>>(),
            predictions(&logits).unwrap()
        );
        for (i, &(label, p)) in conf.iter().enumerate() {
            assert!((p - probs.get(&[i, label]).unwrap()).abs() < 1e-6);
            assert!(p > 0.0 && p <= 1.0);
        }
        // Row-local: a row's confidence is bit-identical whether computed
        // in a batch or alone (the serving determinism contract).
        for (i, expected) in conf.iter().enumerate() {
            let row = logits.batch_slice(i, 1).unwrap();
            let solo = confidences(&row).unwrap()[0];
            assert_eq!(solo.0, expected.0);
            assert_eq!(solo.1.to_bits(), expected.1.to_bits());
        }
        // Stable on extreme logits.
        let extreme = Tensor::from_vec(vec![1000.0, -1000.0], &[1, 2]).unwrap();
        let (label, p) = confidences(&extreme).unwrap()[0];
        assert_eq!(label, 0);
        assert!(p.is_finite() && (p - 1.0).abs() < 1e-6);
    }

    #[test]
    fn label_validation() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
        assert!(accuracy(&logits, &[0, 5]).is_err());
        assert!(softmax(&Tensor::zeros(&[3])).is_err());
        assert!(confidences(&Tensor::zeros(&[3])).is_err());
    }
}
