//! 2-D max-pooling layer.

use blurnet_tensor::{default_backend, PoolSpec, Scratch, Tensor};
use serde::{Deserialize, Serialize};

use crate::{Layer, NnError, Result, TapeSlot};

/// 2-D max pooling over square windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    spec: PoolSpec,
    #[serde(skip)]
    cache: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a pooling layer with the given window and stride.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if window or stride is zero.
    pub fn new(window: usize, stride: usize) -> Result<Self> {
        let spec = PoolSpec::new(window, stride)
            .map_err(|e| NnError::BadConfig(format!("invalid pool spec: {e}")))?;
        Ok(MaxPool2d { spec, cache: None })
    }

    /// The pooling spec.
    pub fn spec(&self) -> PoolSpec {
        self.spec
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let pooled = default_backend().max_pool2d(input, self.spec)?;
        // Move the argmax table into the cache instead of cloning it.
        self.cache = Some((pooled.argmax, input.dims().to_vec()));
        Ok(pooled.output)
    }

    fn infer(&self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        // The argmax table exists only for backward; inference drops it.
        Ok(scratch.backend().max_pool2d(input, self.spec)?.output)
    }

    fn infer_recording(
        &self,
        input: &Tensor,
        tape: &mut TapeSlot,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let pooled = scratch.backend().max_pool2d(input, self.spec)?;
        *tape = TapeSlot::PoolArgmax {
            argmax: pooled.argmax,
            input_dims: input.dims().to_vec(),
        };
        Ok(pooled.output)
    }

    fn input_grad(
        &self,
        tape: &TapeSlot,
        grad_output: &Tensor,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let TapeSlot::PoolArgmax { argmax, input_dims } = tape else {
            return Err(TapeSlot::mismatch(self.name()));
        };
        Ok(scratch
            .backend()
            .max_pool2d_backward(grad_output, argmax, input_dims)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (argmax, dims) = self
            .cache
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache(self.name().to_string()))?;
        Ok(default_backend().max_pool2d_backward(grad_output, argmax, dims)?)
    }

    fn param_grad_pairs(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_roundtrip() {
        let mut pool = MaxPool2d::new(2, 2).unwrap();
        let input = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let out = pool.forward(&input, true).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        let d_input = pool.backward(&Tensor::ones(out.dims())).unwrap();
        assert_eq!(d_input.dims(), input.dims());
        assert_eq!(d_input.sum(), 4.0);
    }

    #[test]
    fn invalid_spec_rejected() {
        assert!(MaxPool2d::new(0, 2).is_err());
        let mut pool = MaxPool2d::new(2, 2).unwrap();
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }
}
