//! Gradient-descent optimizers.
//!
//! The paper trains every classifier with Adam (β₁ = 0.9, β₂ = 0.999,
//! ε = 1e-8); SGD is provided for tests and ablations.

use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{NnError, Result};

/// An optimizer that updates parameters from accumulated gradients.
///
/// The `pairs` passed to [`Optimizer::step`] must come from the same network
/// in the same order on every call; stateful optimizers key their moment
/// estimates by position.
pub trait Optimizer {
    /// Applies one update step to every `(parameter, gradient)` pair.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameter set changes shape between calls.
    fn step(&mut self, pairs: &mut [(&mut Tensor, &Tensor)]) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for simple schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for a non-positive learning rate or a
    /// momentum outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Result<Self> {
        if lr <= 0.0 || !(0.0..1.0).contains(&momentum) {
            return Err(NnError::BadConfig(format!(
                "invalid SGD hyper-parameters lr={lr}, momentum={momentum}"
            )));
        }
        Ok(Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        })
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, pairs: &mut [(&mut Tensor, &Tensor)]) -> Result<()> {
        if self.velocity.is_empty() {
            self.velocity = pairs.iter().map(|(p, _)| Tensor::zeros(p.dims())).collect();
        }
        if self.velocity.len() != pairs.len() {
            return Err(NnError::BadConfig(
                "parameter count changed between optimizer steps".into(),
            ));
        }
        for (i, (param, grad)) in pairs.iter_mut().enumerate() {
            let v = &mut self.velocity[i];
            v.map_inplace(|x| x * self.momentum);
            v.add_scaled(grad, 1.0)?;
            param.add_scaled(v, -self.lr)?;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The Adam optimizer (Kingma & Ba) with the paper's default moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the paper's β₁ = 0.9, β₂ = 0.999 and
    /// ε = 1e-8.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for a non-positive learning rate.
    pub fn new(lr: f32) -> Result<Self> {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an Adam optimizer with explicit moment coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the learning rate is non-positive
    /// or either beta lies outside `[0, 1)`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Result<Self> {
        if lr <= 0.0 || !(0.0..1.0).contains(&beta1) || !(0.0..1.0).contains(&beta2) || eps <= 0.0 {
            return Err(NnError::BadConfig(format!(
                "invalid Adam hyper-parameters lr={lr}, beta1={beta1}, beta2={beta2}, eps={eps}"
            )));
        }
        Ok(Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, pairs: &mut [(&mut Tensor, &Tensor)]) -> Result<()> {
        if self.m.is_empty() {
            self.m = pairs.iter().map(|(p, _)| Tensor::zeros(p.dims())).collect();
            self.v = pairs.iter().map(|(p, _)| Tensor::zeros(p.dims())).collect();
        }
        if self.m.len() != pairs.len() {
            return Err(NnError::BadConfig(
                "parameter count changed between optimizer steps".into(),
            ));
        }
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (param, grad)) in pairs.iter_mut().enumerate() {
            if param.dims() != self.m[i].dims() {
                return Err(NnError::BadConfig(
                    "parameter shape changed between optimizer steps".into(),
                ));
            }
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let g = grad.data();
            let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
            let md = m.data_mut();
            let vd = v.data_mut();
            let pd = param.data_mut();
            for j in 0..g.len() {
                md[j] = b1 * md[j] + (1.0 - b1) * g[j];
                vd[j] = b2 * vd[j] + (1.0 - b2) * g[j] * g[j];
                let m_hat = md[j] / bias1;
                let v_hat = vd[j] / bias2;
                pd[j] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = ||x - target||² with the given optimizer and returns
    /// the final distance to the target.
    fn optimize<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        let target = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        let mut x = Tensor::zeros(&[3]);
        for _ in 0..steps {
            let grad = x.sub(&target).unwrap().scale(2.0);
            let mut pairs_holder = vec![(&mut x, &grad)];
            opt.step(&mut pairs_holder).unwrap();
        }
        x.sub(&target).unwrap().l2_norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1, 0.0).unwrap();
        assert!(optimize(&mut sgd, 200) < 1e-3);
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut sgd = Sgd::new(0.05, 0.9).unwrap();
        assert!(optimize(&mut sgd, 300) < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.1).unwrap();
        assert!(optimize(&mut adam, 300) < 1e-2);
    }

    #[test]
    fn adam_first_step_size_is_learning_rate() {
        // With bias correction, the very first Adam step has magnitude ~lr.
        let mut adam = Adam::new(0.01).unwrap();
        let mut x = Tensor::zeros(&[1]);
        let grad = Tensor::from_vec(vec![5.0], &[1]).unwrap();
        let mut pairs = vec![(&mut x, &grad)];
        adam.step(&mut pairs).unwrap();
        assert!((x.data()[0].abs() - 0.01).abs() < 1e-4);
    }

    #[test]
    fn hyper_parameter_validation() {
        assert!(Adam::new(0.0).is_err());
        assert!(Adam::with_betas(0.1, 1.0, 0.999, 1e-8).is_err());
        assert!(Sgd::new(-0.1, 0.0).is_err());
        assert!(Sgd::new(0.1, 1.0).is_err());
    }

    #[test]
    fn learning_rate_override() {
        let mut adam = Adam::new(0.1).unwrap();
        adam.set_learning_rate(0.5);
        assert_eq!(adam.learning_rate(), 0.5);
    }
}
