//! The LISA-CNN road-sign classifier used throughout the paper.
//!
//! The original Cleverhans LISA-CNN has three convolution layers followed by
//! a fully-connected layer. We keep that topology (including a stride-2
//! first convolution) at a CPU-friendly channel count; DESIGN.md documents
//! the scaling substitution.

use blurnet_tensor::{ConvSpec, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{
    Conv2d, Dense, DepthwiseConv2d, Flatten, MaxPool2d, NnError, Relu, Result, Sequential,
};

/// Where (if anywhere) a depthwise filter layer is inserted after the first
/// convolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FilterLayer {
    /// No extra layer (baseline and regularization-only defenses).
    None,
    /// A fixed blur kernel applied to every first-layer feature map
    /// (Section III / Table I).
    FixedBlur {
        /// The `[K, K]` blur kernel.
        kernel: Tensor,
    },
    /// A trainable depthwise layer (learned under the L∞ penalty of Eq. 2).
    TrainableDepthwise {
        /// Kernel extent (3, 5 or 7 in the paper).
        kernel: usize,
    },
}

/// Architecture description of the scaled LISA-CNN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LisaCnnConfig {
    /// Number of sign classes (the paper uses the top 18 LISA classes).
    pub num_classes: usize,
    /// Input channels (RGB = 3).
    pub in_channels: usize,
    /// Square input extent in pixels.
    pub input_size: usize,
    /// First-convolution filter count.
    pub conv1_filters: usize,
    /// First-convolution kernel extent.
    pub conv1_kernel: usize,
    /// First-convolution stride.
    pub conv1_stride: usize,
    /// Second-convolution filter count.
    pub conv2_filters: usize,
    /// Third-convolution filter count.
    pub conv3_filters: usize,
    /// Optional depthwise filter layer after the first convolution.
    pub filter_layer: FilterLayer,
}

impl Default for LisaCnnConfig {
    fn default() -> Self {
        LisaCnnConfig {
            num_classes: 18,
            in_channels: 3,
            input_size: 32,
            conv1_filters: 8,
            conv1_kernel: 5,
            conv1_stride: 2,
            conv2_filters: 16,
            conv3_filters: 32,
            filter_layer: FilterLayer::None,
        }
    }
}

impl LisaCnnConfig {
    /// Spatial extent of the first-layer feature maps.
    pub fn feature_map_extent(&self) -> usize {
        self.input_size / self.conv1_stride
    }

    /// Index (within the built [`Sequential`]) of the layer whose output is
    /// the "first layer feature map" the paper filters and regularizes.
    ///
    /// This is the first convolution (index 0); when a filter layer is
    /// present its output is at [`LisaCnnConfig::filter_layer_index`].
    pub fn feature_layer_index(&self) -> usize {
        0
    }

    /// Index of the inserted depthwise filter layer, if any.
    pub fn filter_layer_index(&self) -> Option<usize> {
        match self.filter_layer {
            FilterLayer::None => None,
            _ => Some(1),
        }
    }

    /// Index of the second convolution's output activation (used by the
    /// Figure 4 analysis of higher-layer spectra).
    pub fn second_conv_layer_index(&self) -> usize {
        // conv1 [+ filter] + relu + conv2
        match self.filter_layer {
            FilterLayer::None => 2,
            _ => 3,
        }
    }
}

/// Builder for the scaled LISA-CNN classifier.
#[derive(Debug, Clone)]
pub struct LisaCnn {
    config: LisaCnnConfig,
}

impl LisaCnn {
    /// Starts a builder for a classifier with `num_classes` outputs and the
    /// default architecture.
    pub fn new(num_classes: usize) -> Self {
        LisaCnn {
            config: LisaCnnConfig {
                num_classes,
                ..LisaCnnConfig::default()
            },
        }
    }

    /// Starts a builder from an explicit configuration.
    pub fn from_config(config: LisaCnnConfig) -> Self {
        LisaCnn { config }
    }

    /// Overrides the input extent (must be divisible by `4 · conv1_stride`).
    pub fn input_size(mut self, size: usize) -> Self {
        self.config.input_size = size;
        self
    }

    /// Overrides the first-convolution filter count.
    pub fn conv1_filters(mut self, filters: usize) -> Self {
        self.config.conv1_filters = filters;
        self
    }

    /// Inserts a fixed blur layer after the first convolution.
    pub fn with_fixed_blur(mut self, kernel: Tensor) -> Self {
        self.config.filter_layer = FilterLayer::FixedBlur { kernel };
        self
    }

    /// Inserts a trainable depthwise layer after the first convolution.
    pub fn with_trainable_depthwise(mut self, kernel: usize) -> Self {
        self.config.filter_layer = FilterLayer::TrainableDepthwise { kernel };
        self
    }

    /// The architecture this builder will produce.
    pub fn config(&self) -> &LisaCnnConfig {
        &self.config
    }

    /// Builds the network with freshly initialized weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the configuration produces
    /// non-positive layer sizes (e.g. an input size that is not divisible
    /// far enough for the pooling stages).
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Sequential> {
        let c = &self.config;
        if c.num_classes == 0 {
            return Err(NnError::BadConfig("num_classes must be non-zero".into()));
        }
        if !c.input_size.is_multiple_of(c.conv1_stride * 4) {
            return Err(NnError::BadConfig(format!(
                "input size {} must be divisible by conv1_stride * 4 = {}",
                c.input_size,
                c.conv1_stride * 4
            )));
        }
        let fm = c.feature_map_extent();
        let after_pool1 = fm / 2;
        let after_pool2 = after_pool1 / 2;
        if after_pool2 == 0 {
            return Err(NnError::BadConfig(format!(
                "input size {} too small for the pooling pyramid",
                c.input_size
            )));
        }
        let mut net = Sequential::new();
        // conv1: stride-2 "same"-ish convolution producing the feature maps
        // the defense acts on.
        let conv1_spec = ConvSpec::new(c.conv1_stride, c.conv1_kernel / 2)
            .map_err(|e| NnError::BadConfig(e.to_string()))?;
        net.push(Conv2d::new(
            c.in_channels,
            c.conv1_filters,
            c.conv1_kernel,
            conv1_spec,
            rng,
        )?);
        match &c.filter_layer {
            FilterLayer::None => {}
            FilterLayer::FixedBlur { kernel } => {
                net.push(DepthwiseConv2d::fixed_kernel(c.conv1_filters, kernel)?);
            }
            FilterLayer::TrainableDepthwise { kernel } => {
                net.push(DepthwiseConv2d::identity(c.conv1_filters, *kernel)?);
            }
        }
        net.push(Relu::new());
        net.push(Conv2d::new(
            c.conv1_filters,
            c.conv2_filters,
            3,
            ConvSpec::same(3).map_err(|e| NnError::BadConfig(e.to_string()))?,
            rng,
        )?);
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2)?);
        net.push(Conv2d::new(
            c.conv2_filters,
            c.conv3_filters,
            3,
            ConvSpec::same(3).map_err(|e| NnError::BadConfig(e.to_string()))?,
            rng,
        )?);
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2)?);
        net.push(Flatten::new());
        net.push(Dense::new(
            c.conv3_filters * after_pool2 * after_pool2,
            c.num_classes,
            rng,
        )?);
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_architecture_forward_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let builder = LisaCnn::new(18);
        let mut net = builder.build(&mut rng).unwrap();
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 18]);
        assert_eq!(builder.config().feature_map_extent(), 16);
        assert_eq!(builder.config().feature_layer_index(), 0);
        assert!(builder.config().filter_layer_index().is_none());
    }

    #[test]
    fn fixed_blur_variant_has_extra_layer_and_same_output_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let plain = LisaCnn::new(18).build(&mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let kernel = Tensor::full(&[5, 5], 1.0 / 25.0);
        let builder = LisaCnn::new(18).with_fixed_blur(kernel);
        let mut blurred = builder.build(&mut rng).unwrap();
        assert_eq!(blurred.len(), plain.len() + 1);
        assert_eq!(builder.config().filter_layer_index(), Some(1));
        let x = Tensor::zeros(&[1, 3, 32, 32]);
        assert_eq!(blurred.forward(&x, false).unwrap().dims(), &[1, 18]);
        // The fixed blur layer adds no parameters.
        assert_eq!(blurred.parameter_count(), plain.parameter_count());
    }

    #[test]
    fn trainable_depthwise_variant_adds_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let plain = LisaCnn::new(18).build(&mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let dw = LisaCnn::new(18)
            .with_trainable_depthwise(5)
            .build(&mut rng)
            .unwrap();
        assert!(dw.parameter_count() > plain.parameter_count());
    }

    #[test]
    fn feature_map_activation_has_documented_extent() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let builder = LisaCnn::new(18);
        let mut net = builder.build(&mut rng).unwrap();
        let x = Tensor::zeros(&[1, 3, 32, 32]);
        let (_, acts) = net.forward_collect(&x, false).unwrap();
        let fm = &acts[builder.config().feature_layer_index()];
        let extent = builder.config().feature_map_extent();
        assert_eq!(fm.dims(), &[1, 8, extent, extent]);
        // Second-conv activations for Figure 4.
        let second = &acts[builder.config().second_conv_layer_index()];
        assert_eq!(second.dims()[1], builder.config().conv2_filters);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(LisaCnn::new(0).build(&mut rng).is_err());
        assert!(LisaCnn::new(18).input_size(30).build(&mut rng).is_err());
    }

    #[test]
    fn smaller_input_sizes_build() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let builder = LisaCnn::new(4).input_size(16).conv1_filters(4);
        let mut net = builder.build(&mut rng).unwrap();
        let y = net.forward(&Tensor::zeros(&[1, 3, 16, 16]), false).unwrap();
        assert_eq!(y.dims(), &[1, 4]);
    }
}
