//! Depthwise (per-channel) convolution layer — the BlurNet filter layer.
//!
//! Inserted after the first convolution, this layer applies one kernel per
//! channel. It can be *fixed* (a standard blur kernel, Section III of the
//! paper) or *trainable* (learned under an L∞ penalty, Eq. 2).

use blurnet_tensor::{default_backend, ConvSpec, Scratch, Tensor};
use serde::{Deserialize, Serialize};

use crate::{Layer, NnError, Result, TapeSlot};

/// A depthwise convolution layer with per-channel `[C, K, K]` kernels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DepthwiseConv2d {
    weight: Tensor,
    bias: Tensor,
    d_weight: Tensor,
    d_bias: Tensor,
    spec: ConvSpec,
    trainable: bool,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a trainable depthwise layer initialized as an identity
    /// filter plus small noise-free spread (the centre tap is 1, the rest
    /// 0), so an untrained layer does not perturb the network it is added
    /// to.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `channels` or `kernel` is zero or
    /// `kernel` is even (the identity centre tap must exist).
    pub fn identity(channels: usize, kernel: usize) -> Result<Self> {
        if channels == 0 || kernel == 0 || kernel.is_multiple_of(2) {
            return Err(NnError::BadConfig(
                "depthwise layer needs non-zero channels and an odd kernel".to_string(),
            ));
        }
        let mut weight = Tensor::zeros(&[channels, kernel, kernel]);
        let c = kernel / 2;
        for ch in 0..channels {
            weight.set(&[ch, c, c], 1.0)?;
        }
        Ok(DepthwiseConv2d {
            d_weight: Tensor::zeros(weight.dims()),
            d_bias: Tensor::zeros(&[channels]),
            bias: Tensor::zeros(&[channels]),
            weight,
            spec: ConvSpec::same(kernel).map_err(|e| NnError::BadConfig(e.to_string()))?,
            trainable: true,
            cached_input: None,
        })
    }

    /// Creates a **fixed** (non-trainable) depthwise layer that applies the
    /// given `[K, K]` kernel to every channel — the blur layer of Table I.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the kernel is not square rank 2 or
    /// `channels` is zero.
    pub fn fixed_kernel(channels: usize, kernel: &Tensor) -> Result<Self> {
        if channels == 0 || kernel.shape().rank() != 2 || kernel.dims()[0] != kernel.dims()[1] {
            return Err(NnError::BadConfig(format!(
                "fixed depthwise kernel must be square rank-2 with channels > 0, got {}",
                kernel.shape()
            )));
        }
        let k = kernel.dims()[0];
        let mut data = Vec::with_capacity(channels * k * k);
        for _ in 0..channels {
            data.extend_from_slice(kernel.data());
        }
        let weight = Tensor::from_vec(data, &[channels, k, k])?;
        Ok(DepthwiseConv2d {
            d_weight: Tensor::zeros(weight.dims()),
            d_bias: Tensor::zeros(&[channels]),
            bias: Tensor::zeros(&[channels]),
            weight,
            spec: ConvSpec::same(k).map_err(|e| NnError::BadConfig(e.to_string()))?,
            trainable: false,
            cached_input: None,
        })
    }

    /// Reassembles a layer from persisted parameters: `weight` must be
    /// `[C, K, K]` with square kernels and `bias` `[C]`. Gradient
    /// accumulators start at zero and the forward cache empty.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when the shapes disagree.
    pub fn from_parts(
        weight: Tensor,
        bias: Tensor,
        spec: ConvSpec,
        trainable: bool,
    ) -> Result<Self> {
        if weight.shape().rank() != 3 || weight.dims()[1] != weight.dims()[2] {
            return Err(NnError::BadConfig(format!(
                "depthwise weight must be [C, K, K], got {}",
                weight.shape()
            )));
        }
        if bias.shape().rank() != 1 || bias.dims()[0] != weight.dims()[0] {
            return Err(NnError::BadConfig(format!(
                "depthwise bias must be [{}], got {}",
                weight.dims()[0],
                bias.shape()
            )));
        }
        Ok(DepthwiseConv2d {
            d_weight: Tensor::zeros(weight.dims()),
            d_bias: Tensor::zeros(bias.dims()),
            weight,
            bias,
            spec,
            trainable,
            cached_input: None,
        })
    }

    /// The per-channel kernels `[C, K, K]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The per-channel bias vector `[C]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// The convolution stride/padding spec.
    pub fn spec(&self) -> ConvSpec {
        self.spec
    }

    /// Whether the layer's kernels are updated during training.
    pub fn is_trainable(&self) -> bool {
        self.trainable
    }

    /// Kernel extent `K`.
    pub fn kernel_size(&self) -> usize {
        self.weight.dims()[1]
    }

    /// L∞ norm of each channel kernel summed over channels — the
    /// regularization term of Eq. 2.
    pub fn linf_penalty(&self) -> f32 {
        let (c, kh, kw) = (
            self.weight.dims()[0],
            self.weight.dims()[1],
            self.weight.dims()[2],
        );
        let d = self.weight.data();
        (0..c)
            .map(|ch| {
                d[ch * kh * kw..(ch + 1) * kh * kw]
                    .iter()
                    .fold(0.0f32, |m, v| m.max(v.abs()))
            })
            .sum()
    }

    /// Sub-gradient of [`Self::linf_penalty`] with respect to the kernels:
    /// `sign(w)` at each channel's maximal-magnitude tap, zero elsewhere.
    pub fn linf_penalty_grad(&self) -> Tensor {
        let (c, kh, kw) = (
            self.weight.dims()[0],
            self.weight.dims()[1],
            self.weight.dims()[2],
        );
        let d = self.weight.data();
        let mut grad = vec![0.0f32; d.len()];
        for ch in 0..c {
            let slice = &d[ch * kh * kw..(ch + 1) * kh * kw];
            let mut best = 0usize;
            for (i, v) in slice.iter().enumerate() {
                if v.abs() > slice[best].abs() {
                    best = i;
                }
            }
            let idx = ch * kh * kw + best;
            grad[idx] = d[idx].signum();
        }
        Tensor::from_vec(grad, self.weight.dims()).expect("same shape as weights")
    }

    /// Adds an external gradient contribution to the kernel gradient (used
    /// by the L∞ regularizer during training).
    ///
    /// # Errors
    ///
    /// Returns an error if `grad` does not match the kernel shape.
    pub fn accumulate_weight_grad(&mut self, grad: &Tensor, scale: f32) -> Result<()> {
        self.d_weight.add_scaled(grad, scale)?;
        Ok(())
    }
}

impl Layer for DepthwiseConv2d {
    fn name(&self) -> &'static str {
        "depthwise_conv2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let out =
            default_backend().depthwise_conv2d(input, &self.weight, Some(&self.bias), self.spec)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn infer(&self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        Ok(scratch
            .backend()
            .depthwise_conv2d(input, &self.weight, Some(&self.bias), self.spec)?)
    }

    fn infer_recording(
        &self,
        input: &Tensor,
        tape: &mut TapeSlot,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let out = self.infer(input, scratch)?;
        *tape = TapeSlot::InputDims(input.dims().to_vec());
        Ok(out)
    }

    fn input_grad(
        &self,
        tape: &TapeSlot,
        grad_output: &Tensor,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let TapeSlot::InputDims(dims) = tape else {
            return Err(TapeSlot::mismatch(self.name()));
        };
        Ok(scratch
            .backend()
            .depthwise_input_grad(&self.weight, grad_output, dims, self.spec)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache(self.name().to_string()))?;
        let grads = default_backend().depthwise_conv2d_backward(
            input,
            &self.weight,
            grad_output,
            self.spec,
        )?;
        if self.trainable {
            self.d_weight.add_scaled(&grads.d_weight, 1.0)?;
            self.d_bias.add_scaled(&grads.d_bias, 1.0)?;
        }
        Ok(grads.d_input)
    }

    fn param_grad_pairs(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        if self.trainable {
            vec![
                (&mut self.weight, &self.d_weight),
                (&mut self.bias, &self.d_bias),
            ]
        } else {
            Vec::new()
        }
    }

    fn params(&self) -> Vec<&Tensor> {
        if self.trainable {
            vec![&self.weight, &self.bias]
        } else {
            Vec::new()
        }
    }

    fn zero_grads(&mut self) {
        self.d_weight.map_inplace(|_| 0.0);
        self.d_bias.map_inplace(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_layer_is_a_no_op() {
        let mut layer = DepthwiseConv2d::identity(3, 3).unwrap();
        let input = Tensor::from_vec((0..48).map(|v| v as f32).collect(), &[1, 3, 4, 4]).unwrap();
        let out = layer.forward(&input, false).unwrap();
        for (a, b) in out.data().iter().zip(input.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fixed_blur_layer_is_not_trainable() {
        let kernel = Tensor::full(&[5, 5], 1.0 / 25.0);
        let mut layer = DepthwiseConv2d::fixed_kernel(4, &kernel).unwrap();
        assert!(!layer.is_trainable());
        assert_eq!(layer.kernel_size(), 5);
        assert!(layer.param_grad_pairs().is_empty());
        assert_eq!(layer.parameter_count(), 0);
        // Backward still propagates input gradients.
        let input = Tensor::ones(&[1, 4, 8, 8]);
        let out = layer.forward(&input, true).unwrap();
        let d_input = layer.backward(&Tensor::ones(out.dims())).unwrap();
        assert_eq!(d_input.dims(), input.dims());
        assert!(d_input.l1_norm() > 0.0);
    }

    #[test]
    fn linf_penalty_and_subgradient() {
        let mut layer = DepthwiseConv2d::identity(2, 3).unwrap();
        // Identity kernels: each channel max |w| is 1 -> penalty = 2.
        assert!((layer.linf_penalty() - 2.0).abs() < 1e-6);
        let g = layer.linf_penalty_grad();
        // Exactly one non-zero entry per channel, equal to sign of the max tap.
        assert_eq!(g.data().iter().filter(|v| **v != 0.0).count(), 2);
        assert_eq!(g.l1_norm(), 2.0);
        layer.accumulate_weight_grad(&g, 0.5).unwrap();
        assert!(layer.param_grad_pairs()[0].1.l1_norm() > 0.0);
    }

    #[test]
    fn config_validation() {
        assert!(DepthwiseConv2d::identity(0, 3).is_err());
        assert!(DepthwiseConv2d::identity(3, 4).is_err());
        assert!(DepthwiseConv2d::fixed_kernel(0, &Tensor::zeros(&[3, 3])).is_err());
        assert!(DepthwiseConv2d::fixed_kernel(2, &Tensor::zeros(&[3, 4])).is_err());
    }
}
