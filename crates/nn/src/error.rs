use std::fmt;

use blurnet_tensor::TensorError;

/// Errors produced by the neural-network framework.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// `backward` was called without a preceding `forward`.
    MissingForwardCache(String),
    /// A configuration value was invalid (layer sizes, hyper-parameters, …).
    BadConfig(String),
    /// Labels and logits disagree in batch size, or a label is out of range.
    BadLabels(String),
    /// (De)serialization of a network failed.
    Serialization(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::MissingForwardCache(layer) => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            NnError::BadLabels(msg) => write!(f, "bad labels: {msg}"),
            NnError::Serialization(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}
