//! Fully-connected (dense) layer.

use blurnet_tensor::{Initializer, Scratch, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Layer, NnError, Result, TapeSlot};

/// A fully-connected layer computing `x · Wᵀ + b` for `x: [N, in]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    d_weight: Tensor,
    d_bias: Tensor,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer mapping `in_features` to `out_features`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if either size is zero.
    pub fn new<R: Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::BadConfig("dense sizes must be non-zero".into()));
        }
        let weight = Initializer::XavierUniform.init(
            &[out_features, in_features],
            in_features,
            out_features,
            rng,
        );
        Ok(Dense {
            d_weight: Tensor::zeros(weight.dims()),
            d_bias: Tensor::zeros(&[out_features]),
            bias: Tensor::zeros(&[out_features]),
            weight,
            cached_input: None,
        })
    }

    /// Reassembles a layer from persisted parameters: `weight` must be
    /// `[out, in]` and `bias` `[out]`. Gradient accumulators start at zero
    /// and the forward cache empty.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when the shapes disagree.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Result<Self> {
        if weight.shape().rank() != 2 {
            return Err(NnError::BadConfig(format!(
                "dense weight must be rank 2, got {}",
                weight.shape()
            )));
        }
        if bias.shape().rank() != 1 || bias.dims()[0] != weight.dims()[0] {
            return Err(NnError::BadConfig(format!(
                "dense bias must be [{}], got {}",
                weight.dims()[0],
                bias.shape()
            )));
        }
        Ok(Dense {
            d_weight: Tensor::zeros(weight.dims()),
            d_bias: Tensor::zeros(bias.dims()),
            weight,
            bias,
            cached_input: None,
        })
    }

    /// The weight matrix `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias vector `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// The weight matrix pre-transposed to `[in, out]`, so inference is a
    /// plain stride-1 matmul. The batch engine transposes once per
    /// forward pass and shares the result across batch shards.
    pub fn weight_transposed(&self) -> Tensor {
        let (out_f, in_f) = (self.weight.dims()[0], self.weight.dims()[1]);
        let mut data = vec![0.0f32; in_f * out_f];
        let w = self.weight.data();
        for o in 0..out_f {
            for i in 0..in_f {
                data[i * out_f + o] = w[o * in_f + i];
            }
        }
        Tensor::from_vec(data, &[in_f, out_f]).expect("transpose preserves volume")
    }

    pub(crate) fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.shape().rank() != 2 || input.dims()[1] != self.weight.dims()[1] {
            return Err(NnError::BadConfig(format!(
                "dense expects [N, {}], got {}",
                self.weight.dims()[1],
                input.shape()
            )));
        }
        Ok(())
    }

    pub(crate) fn add_bias(&self, out: &mut Tensor) {
        let (n, o) = (out.dims()[0], out.dims()[1]);
        let bias = self.bias.data().to_vec();
        let data = out.data_mut();
        for i in 0..n {
            for j in 0..o {
                data[i * o + j] += bias[j];
            }
        }
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        self.check_input(input)?;
        // [N, in] · [out, in]ᵀ = [N, out], through this thread's shared
        // scratch (and therefore the process-wide default backend).
        let mut out =
            Scratch::with_thread_local(|s| s.backend().matmul_transpose_b(input, &self.weight, s))?;
        self.add_bias(&mut out);
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn infer(&self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        self.check_input(input)?;
        let mut out = scratch
            .backend()
            .matmul_transpose_b(input, &self.weight, scratch)?;
        self.add_bias(&mut out);
        Ok(out)
    }

    fn infer_recording(
        &self,
        input: &Tensor,
        tape: &mut TapeSlot,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        // `dx = g · W` needs no forward state at all.
        *tape = TapeSlot::Empty;
        self.infer(input, scratch)
    }

    fn input_grad(
        &self,
        _tape: &TapeSlot,
        grad_output: &Tensor,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        // dx = g · W : [N, in]
        Ok(scratch.backend().matmul(grad_output, &self.weight)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache(self.name().to_string()))?;
        let backend = blurnet_tensor::default_backend();
        // dW = gᵀ · x : [out, in]
        let d_w = backend.matmul_transpose_a(grad_output, input)?;
        self.d_weight.add_scaled(&d_w, 1.0)?;
        // db = column sums of g.
        let (n, o) = (grad_output.dims()[0], grad_output.dims()[1]);
        let g = grad_output.data();
        let db = self.d_bias.data_mut();
        for i in 0..n {
            for j in 0..o {
                db[j] += g[i * o + j];
            }
        }
        // dx = g · W : [N, in]
        Ok(backend.matmul(grad_output, &self.weight)?)
    }

    fn param_grad_pairs(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        vec![
            (&mut self.weight, &self.d_weight),
            (&mut self.bias, &self.d_bias),
        ]
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn zero_grads(&mut self) {
        self.d_weight.map_inplace(|_| 0.0);
        self.d_bias.map_inplace(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut dense = Dense::new(8, 4, &mut rng).unwrap();
        let x = Tensor::ones(&[3, 8]);
        let y = dense.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[3, 4]);
        assert!(dense.forward(&Tensor::ones(&[3, 5]), false).is_err());
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut dense = Dense::new(5, 3, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[2, 5], -1.0, 1.0, &mut rng);
        let y = dense.forward(&x, true).unwrap();
        let grad = Tensor::ones(y.dims());
        let dx = dense.backward(&grad).unwrap();
        let eps = 1e-2f32;
        // Input gradient check.
        for &idx in &[0usize, 4, 9] {
            let mut plus = x.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = x.clone();
            minus.data_mut()[idx] -= eps;
            let mut d2 = dense.clone();
            let f_plus = d2.forward(&plus, true).unwrap().sum();
            let f_minus = d2.forward(&minus, true).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!((numeric - dx.data()[idx]).abs() < 1e-2);
        }
        // Bias gradient of a sum loss is the batch size.
        let pairs = dense.param_grad_pairs();
        for &b in pairs[1].1.data() {
            assert!((b - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_sizes_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(Dense::new(0, 3, &mut rng).is_err());
        assert!(Dense::new(3, 0, &mut rng).is_err());
    }
}
