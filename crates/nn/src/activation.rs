//! Rectified linear activation.

use blurnet_tensor::{Scratch, Tensor};
use serde::{Deserialize, Serialize};

use crate::{Layer, NnError, Result, TapeSlot};

/// Elementwise `max(0, x)` activation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { cached_input: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        self.cached_input = Some(input.clone());
        Ok(input.map(|v| v.max(0.0)))
    }

    fn infer(&self, input: &Tensor, _scratch: &mut Scratch) -> Result<Tensor> {
        Ok(input.map(|v| v.max(0.0)))
    }

    fn infer_recording(
        &self,
        input: &Tensor,
        tape: &mut TapeSlot,
        _scratch: &mut Scratch,
    ) -> Result<Tensor> {
        // One pass produces both the activation and the sign mask the
        // backward needs; the input itself is never kept.
        let data = input.data();
        let mut out = vec![0.0f32; data.len()];
        let mut mask = vec![0.0f32; data.len()];
        for (i, &v) in data.iter().enumerate() {
            if v > 0.0 {
                out[i] = v;
                mask[i] = 1.0;
            }
        }
        *tape = TapeSlot::ReluMask(Tensor::from_vec(mask, input.dims())?);
        Ok(Tensor::from_vec(out, input.dims())?)
    }

    fn input_grad(
        &self,
        tape: &TapeSlot,
        grad_output: &Tensor,
        _scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let TapeSlot::ReluMask(mask) = tape else {
            return Err(TapeSlot::mismatch(self.name()));
        };
        // `m > 0.0` reproduces the stateful `x > 0.0` gate bit for bit.
        Ok(mask.zip_map(grad_output, |m, g| if m > 0.0 { g } else { 0.0 })?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache(self.name().to_string()))?;
        Ok(input.zip_map(grad_output, |x, g| if x > 0.0 { g } else { 0.0 })?)
    }

    fn param_grad_pairs(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -0.5], &[4]).unwrap();
        let y = relu.forward(&x, false).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0, -0.5], &[4]).unwrap();
        relu.forward(&x, true).unwrap();
        let g = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[4]).unwrap();
        let dx = relu.backward(&g).unwrap();
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(&[2])).is_err());
    }
}
