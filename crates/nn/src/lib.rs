//! A small layer-wise neural-network framework with explicit backward
//! passes, built for the BlurNet reproduction.
//!
//! The framework deliberately avoids a general autodiff tape: every layer
//! implements its own forward and backward pass over
//! [`blurnet_tensor::Tensor`] values, which keeps the computation easy to
//! audit and gives the two things the paper's experiments need beyond plain
//! training:
//!
//! * gradients **with respect to the input image** (for the RP2, PGD and
//!   adaptive attacks), via [`Sequential::backward`] returning the input
//!   gradient, and
//! * gradient **injection at intermediate activations** (for the
//!   total-variation and Tikhonov feature-map regularizers of Eq. 4, 6 and
//!   7), via [`Sequential::backward_with_injection`].
//!
//! The [`model::LisaCnn`] builder replicates the paper's road-sign
//! classifier topology (three convolution layers plus a fully-connected
//! head) at a CPU-friendly scale, with an optional fixed blur layer after
//! the first convolution.
//!
//! Inference-heavy workloads (the attack×defense evaluation grids behind
//! every table of the paper) go through the **batch-parallel engine**:
//! [`Sequential::forward_batch`] / [`BatchEngine`] shard the batch
//! dimension across rayon workers with per-worker scratch pools and
//! once-per-pass weight packing, producing outputs bit-identical to the
//! per-sample path at every thread count.
//!
//! # Example
//!
//! ```
//! use blurnet_nn::{model::LisaCnn, loss::softmax_cross_entropy};
//! use blurnet_tensor::Tensor;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let mut net = LisaCnn::new(18).build(&mut rng)?;
//! let batch = Tensor::zeros(&[2, 3, 32, 32]);
//! let logits = net.forward(&batch, false)?;
//! assert_eq!(logits.dims(), &[2, 18]);
//! let (loss, _grad) = softmax_cross_entropy(&logits, &[0, 1])?;
//! assert!(loss > 0.0);
//! # Ok::<(), blurnet_nn::NnError>(())
//! ```

#![deny(missing_docs)]

pub mod activation;
pub mod conv;
pub mod dense;
pub mod depthwise;
pub mod engine;
mod error;
pub mod flatten;
pub mod layer;
pub mod loss;
pub mod model;
pub mod network;
pub mod optim;
pub mod persist;
pub mod pool;

pub use conv::Conv2d;
pub use dense::Dense;
pub use depthwise::DepthwiseConv2d;
pub use engine::{BatchEngine, GradBatch, ShardGrad};
pub use error::NnError;
pub use flatten::Flatten;
pub use layer::{Layer, LayerKind, TapeSlot};
pub use loss::{accuracy, softmax, softmax_cross_entropy};
pub use model::{LisaCnn, LisaCnnConfig};
pub use network::Sequential;
pub use optim::{Adam, Optimizer, Sgd};
pub use pool::MaxPool2d;

pub use activation::Relu;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, NnError>;
