//! Property tests pinning the batch-parallel inference engine to the
//! per-sample forward path.
//!
//! The contract under test (see `engine.rs`): `forward_batch` is
//! **bit-identical** — not merely close — to stacking the results of
//! per-sample `forward` calls, across batch sizes {1, 3, 8} and rayon
//! thread counts {1, 4}. Equality is checked with `==` on the raw `f32`
//! buffers; any reordering of a floating-point accumulation would fail.

use blurnet_nn::Sequential;
use blurnet_tensor::Tensor;
use blurnet_test_support::{tiny_lisa_net, uniform_batch};
use proptest::prelude::*;

/// Batch sizes the acceptance criteria name explicitly.
const BATCH_SIZES: [usize; 3] = [1, 3, 8];
/// Thread counts the acceptance criteria name explicitly.
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Per-sample reference: forward each image alone and stack the logits.
fn per_sample_forward(net: &mut Sequential, batch: &Tensor) -> Tensor {
    let n = batch.dims()[0];
    let mut parts = Vec::with_capacity(n);
    for i in 0..n {
        let image = batch.batch_slice(i, 1).expect("index in range");
        parts.push(net.forward(&image, false).expect("forward succeeds"));
    }
    Tensor::concat_batch(&parts).expect("uniform logit shapes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// forward_batch == per-sample forward loop, bitwise, for every batch
    /// size and thread count combination.
    #[test]
    fn forward_batch_is_bit_identical_to_per_sample_loops(
        net_seed in 0u64..1000,
        data_seed in 0u64..1000,
    ) {
        let mut net = tiny_lisa_net(net_seed);
        for (offset, &batch_size) in BATCH_SIZES.iter().enumerate() {
            let batch = uniform_batch(
                &[batch_size, 3, 16, 16],
                0.0,
                1.0,
                data_seed ^ (offset as u64) << 32,
            );
            let reference = per_sample_forward(&mut net, &batch);
            for &threads in &THREAD_COUNTS {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("pool builds");
                let batched = pool.install(|| net.forward_batch(&batch).expect("forward_batch"));
                // Bitwise equality on the raw buffers, not a tolerance.
                prop_assert_eq!(
                    batched.data(),
                    reference.data(),
                    "batch {} threads {}",
                    batch_size,
                    threads
                );
                prop_assert_eq!(batched.dims(), reference.dims());
            }
        }
    }

    /// predict_batch agrees with the stateful predict path under both
    /// thread counts (argmax on bit-identical logits can never diverge).
    #[test]
    fn predict_batch_matches_stateful_predict(seed in 0u64..1000) {
        let mut net = tiny_lisa_net(seed);
        let batch = uniform_batch(&[8, 3, 16, 16], 0.0, 1.0, seed ^ 0xBADC0DE);
        let expected = net.predict(&batch).expect("predict succeeds");
        for &threads in &THREAD_COUNTS {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool builds");
            let got = pool.install(|| net.predict_batch(&batch).expect("predict_batch"));
            prop_assert_eq!(&got, &expected, "threads {}", threads);
        }
    }
}
