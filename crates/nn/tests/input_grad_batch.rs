//! Property tests pinning the batched gradient engine to the per-image
//! mutable backward path.
//!
//! The contract under test (see `engine.rs`): `input_grad_batch` is
//! **bit-identical across thread counts** — the shard partition depends
//! only on the batch size — and agrees with the per-image stateful
//! `forward(train)` + `backward` reference to ≤ 1e-6 per element (in
//! practice the two paths share every kernel and accumulation order, so
//! they are bitwise equal; the tolerance is the acceptance criterion).

use blurnet_nn::Sequential;
use blurnet_tensor::Tensor;
use blurnet_test_support::{tiny_lisa_net, uniform_batch};
use proptest::prelude::*;

/// Batch sizes the acceptance criteria name explicitly.
const BATCH_SIZES: [usize; 3] = [1, 3, 8];
/// Thread counts the acceptance criteria name explicitly.
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Per-image mutable reference: forward each image alone with the caching
/// path, back-propagate its grad_output row, stack the input gradients.
fn per_image_backward(net: &mut Sequential, batch: &Tensor, grad_output: &Tensor) -> Tensor {
    let n = batch.dims()[0];
    let mut parts = Vec::with_capacity(n);
    for i in 0..n {
        let image = batch.batch_slice(i, 1).expect("index in range");
        net.forward(&image, true).expect("forward succeeds");
        let row = grad_output.batch_slice(i, 1).expect("index in range");
        parts.push(net.backward(&row).expect("backward succeeds"));
    }
    Tensor::concat_batch(&parts).expect("uniform gradient shapes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// input_grad_batch: bitwise equal across thread counts, ≤ 1e-6 vs the
    /// per-image mutable backward, for every batch size.
    #[test]
    fn input_grad_batch_matches_mutable_backward(
        net_seed in 0u64..1000,
        data_seed in 0u64..1000,
    ) {
        let mut net = tiny_lisa_net(net_seed);
        for (offset, &batch_size) in BATCH_SIZES.iter().enumerate() {
            let case_seed = data_seed ^ (offset as u64) << 32;
            let batch = uniform_batch(&[batch_size, 3, 16, 16], 0.0, 1.0, case_seed);
            let grad_output = uniform_batch(&[batch_size, 18], -1.0, 1.0, !case_seed);
            let reference = per_image_backward(&mut net, &batch, &grad_output);

            let mut per_thread = Vec::new();
            for &threads in &THREAD_COUNTS {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("pool builds");
                per_thread.push(pool.install(|| {
                    net.input_grad_batch(&batch, &grad_output)
                        .expect("input_grad_batch")
                }));
            }
            // Bitwise equality across thread counts, not a tolerance.
            prop_assert_eq!(
                per_thread[0].data(),
                per_thread[1].data(),
                "batch {} threads {:?}",
                batch_size,
                THREAD_COUNTS
            );
            prop_assert_eq!(per_thread[0].dims(), reference.dims());
            // ≤ 1e-6 vs the per-image mutable backward.
            for (i, (a, b)) in per_thread[0]
                .data()
                .iter()
                .zip(reference.data().iter())
                .enumerate()
            {
                prop_assert!(
                    (a - b).abs() <= 1e-6,
                    "batch {} element {}: batched {} vs mutable {}",
                    batch_size,
                    i,
                    a,
                    b
                );
            }
        }
    }

    /// The cross-entropy convenience wrapper agrees with composing the
    /// stateful forward with softmax_cross_entropy per image.
    #[test]
    fn forward_backward_batch_matches_per_image_cross_entropy(seed in 0u64..1000) {
        let mut net = tiny_lisa_net(seed);
        let batch = uniform_batch(&[4, 3, 16, 16], 0.0, 1.0, seed ^ 0x5EED);
        let labels = [1usize, 5, 9, 17];
        let engine = net.batch_engine().expect("engine builds");
        let got = engine
            .forward_backward_batch(&batch, &labels)
            .expect("forward_backward_batch");
        for i in 0..4 {
            let image = batch.batch_slice(i, 1).expect("index in range");
            let logits = net.forward(&image, true).expect("forward succeeds");
            let (loss, d_logits) =
                blurnet_nn::softmax_cross_entropy(&logits, &labels[i..i + 1])
                    .expect("cross entropy");
            let reference = net.backward(&d_logits).expect("backward succeeds");
            prop_assert!((got.shard_losses[i] - loss).abs() <= 1e-6);
            let row = got
                .input_grad
                .batch_slice(i, 1)
                .expect("index in range");
            for (a, b) in row.data().iter().zip(reference.data().iter()) {
                prop_assert!((a - b).abs() <= 1e-6, "{} vs {}", a, b);
            }
        }
    }
}
