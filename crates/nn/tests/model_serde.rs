//! Property tests pinning the network persistence layer: for every
//! ChaCha8-seeded network, save → load → infer is **bit-identical** to
//! inferring with the original — on the per-sample path and on the
//! batch-parallel path at rayon thread counts {1, 4} — and the
//! round-trip through the checksummed file container preserves the exact
//! bytes. Corrupted inputs (flipped tag, truncation, wrong magic, future
//! version) are typed errors, never panics.

use blurnet_nn::persist::{sequential_from_bytes, sequential_to_bytes};
use blurnet_nn::NnError;
use blurnet_tensor::persist::{frame, unframe};
use blurnet_test_support::{tiny_lisa_net, uniform_batch};
use proptest::prelude::*;

/// Thread counts the bit-identity contract names explicitly.
const THREAD_COUNTS: [usize; 2] = [1, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The restored network's logits equal the original's bit-for-bit,
    /// per-sample and batched, under both thread counts.
    #[test]
    fn restored_networks_infer_bit_identically(
        net_seed in 0u64..1000,
        data_seed in 0u64..1000,
    ) {
        let mut net = tiny_lisa_net(net_seed);
        let mut restored =
            sequential_from_bytes(&sequential_to_bytes(&net)).expect("roundtrip decodes");
        prop_assert_eq!(restored.len(), net.len());

        let image = uniform_batch(&[1, 3, 16, 16], 0.0, 1.0, data_seed);
        let a = net.forward(&image, false).expect("original forward");
        let b = restored.forward(&image, false).expect("restored forward");
        prop_assert_eq!(a.data(), b.data(), "per-sample logits diverged");

        let batch = uniform_batch(&[5, 3, 16, 16], 0.0, 1.0, data_seed ^ 0xF00D);
        let expected = net.forward_batch(&batch).expect("original batch");
        for &threads in &THREAD_COUNTS {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool builds");
            let got = pool.install(|| restored.forward_batch(&batch).expect("restored batch"));
            prop_assert_eq!(
                got.data(),
                expected.data(),
                "batched logits diverged at {} threads",
                threads
            );
        }
    }

    /// Serialization is canonical: encode(decode(encode(net))) ==
    /// encode(net), and the file container hands the identical payload
    /// back.
    #[test]
    fn serialization_is_canonical_and_framable(net_seed in 0u64..1000) {
        let net = tiny_lisa_net(net_seed);
        let bytes = sequential_to_bytes(&net);
        let restored = sequential_from_bytes(&bytes).expect("decodes");
        prop_assert_eq!(&sequential_to_bytes(&restored), &bytes);
        let framed = frame(&bytes);
        prop_assert_eq!(unframe(&framed).expect("container verifies"), bytes.as_slice());
    }

    /// Truncating the record at any prefix is a typed error.
    #[test]
    fn truncation_anywhere_is_typed(net_seed in 0u64..100, cut in 0usize..100_000) {
        let bytes = sequential_to_bytes(&tiny_lisa_net(net_seed));
        let at = cut % bytes.len();
        prop_assert!(matches!(
            sequential_from_bytes(&bytes[..at]),
            Err(NnError::Serialization(_))
        ));
    }
}

#[test]
fn wrong_magic_and_future_versions_are_typed() {
    let bytes = sequential_to_bytes(&tiny_lisa_net(0));

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'Z';
    assert!(matches!(
        sequential_from_bytes(&wrong_magic),
        Err(NnError::Serialization(_))
    ));

    // A version stamp from the future must be refused, not misparsed.
    let mut future = bytes.clone();
    future[4] = 0xFF;
    future[5] = 0x7F;
    assert!(matches!(
        sequential_from_bytes(&future),
        Err(NnError::Serialization(_))
    ));

    // An unknown layer tag (first tag byte follows magic+version+count).
    let mut bad_tag = bytes;
    bad_tag[14] = 0xEE;
    assert!(matches!(
        sequential_from_bytes(&bad_tag),
        Err(NnError::Serialization(_))
    ));
}
