//! The Robust Physical Perturbations (RP2) attack.
//!
//! RP2 (Eykholt et al.) finds a sticker-like perturbation `δ` constrained to
//! the sign by a binary mask `M_x`, optimized so that the perturbed sign is
//! classified as an attacker-chosen target `y*` across a transform ensemble
//! `T_i` (Eq. 1 of the BlurNet paper):
//!
//! ```text
//! argmin_δ  λ‖M_x · δ‖₂ + NPS + J(f_θ(x + T_i(M_x · δ)), y*)
//! ```
//!
//! The same optimizer loop also powers the adaptive variants of
//! [`crate::adaptive`] through [`AdaptiveObjective`].
//!
//! Generation is **batched**: [`Rp2Attack::generate_batch`] optimizes the
//! stickers for a whole image set at once — one `[N, C, H, W]` perturbation
//! tensor, one Adam state (Adam is elementwise, so the batched update is
//! identical to per-image updates), and per iteration one recorded forward
//! plus one tape-driven backward through the immutable
//! [`blurnet_nn::BatchEngine`], with the adaptive feature penalties riding
//! the engine's per-shard gradient-injection hook. The objective is
//! equivalent to the historical per-image optimizer loop — every image sees
//! the same transform schedule its own seeded run would have sampled, and
//! Adam updates are elementwise — up to float regrouping in the NPS term
//! (the batched form scales each palette contribution as it accumulates),
//! and results are bit-identical at every rayon thread count.

use blurnet_data::{sample_transforms, StickerLayout, Transform};
use blurnet_nn::{softmax_cross_entropy, Adam, NnError, Optimizer, Sequential, ShardGrad};
use blurnet_signal::low_frequency_project;
use blurnet_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::adaptive::{AdaptiveObjective, FeaturePenaltyKind};
use crate::metrics::{batch_l2_dissimilarity, targeted_success_from_logits, AttackEvaluation};
use crate::{AttackError, Result};

/// A small palette of printable colours used by the non-printability score
/// (NPS) term; stickers whose colours drift far from every printable colour
/// are penalized.
const PRINTABLE_PALETTE: [[f32; 3]; 6] = [
    [0.05, 0.05, 0.05], // black
    [0.95, 0.95, 0.95], // white
    [0.50, 0.50, 0.50], // grey
    [0.80, 0.10, 0.10], // red
    [0.95, 0.80, 0.15], // yellow
    [0.10, 0.10, 0.70], // blue
];

/// Configuration of an RP2 attack run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rp2Config {
    /// Weight λ of the mask-norm term (the paper sweeps this; 0.002 is the
    /// value used for the black-box evaluation).
    pub lambda: f32,
    /// Weight of the non-printability score term.
    pub nps_weight: f32,
    /// Number of optimization iterations ("epochs" in the paper; 300 there).
    pub iterations: usize,
    /// Adam learning rate on the perturbation.
    pub learning_rate: f32,
    /// Number of alignment transforms sampled for the ensemble.
    pub num_transforms: usize,
    /// Maximum absolute shift (pixels) of the transform ensemble.
    pub max_shift: i32,
    /// Brightness jitter of the transform ensemble.
    pub brightness_jitter: f32,
    /// Sticker mask layout.
    pub layout: StickerLayout,
    /// RNG seed for transform sampling.
    pub seed: u64,
    /// Objective modification for adaptive attacks.
    pub objective: AdaptiveObjective,
}

impl Default for Rp2Config {
    fn default() -> Self {
        Rp2Config {
            lambda: 0.002,
            nps_weight: 0.05,
            iterations: 150,
            learning_rate: 0.05,
            num_transforms: 4,
            max_shift: 2,
            brightness_jitter: 0.15,
            layout: StickerLayout::TwoBars,
            seed: 0,
            objective: AdaptiveObjective::Standard,
        }
    }
}

/// Output of a single-image RP2 run.
#[derive(Debug, Clone)]
pub struct Rp2Result {
    /// The adversarial image, clamped to `[0, 1]`.
    pub adversarial: Tensor,
    /// The effective masked perturbation added to the clean image.
    pub perturbation: Tensor,
    /// Classifier loss after every iteration (for convergence diagnostics).
    pub loss_trace: Vec<f32>,
}

/// The RP2 attack engine.
#[derive(Debug, Clone)]
pub struct Rp2Attack {
    config: Rp2Config,
}

impl Rp2Attack {
    /// Creates an attack from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] for non-positive iteration counts,
    /// learning rates or transform counts.
    pub fn new(config: Rp2Config) -> Result<Self> {
        if config.iterations == 0 {
            return Err(AttackError::BadConfig("iterations must be non-zero".into()));
        }
        if config.learning_rate <= 0.0 {
            return Err(AttackError::BadConfig(
                "learning rate must be positive".into(),
            ));
        }
        if config.num_transforms == 0 {
            return Err(AttackError::BadConfig(
                "transform ensemble must be non-empty".into(),
            ));
        }
        if config.lambda < 0.0 || config.nps_weight < 0.0 {
            return Err(AttackError::BadConfig(
                "regularization weights must be non-negative".into(),
            ));
        }
        Ok(Rp2Attack { config })
    }

    /// The attack configuration.
    pub fn config(&self) -> &Rp2Config {
        &self.config
    }

    /// Generates adversarial examples for a whole image set targeting class
    /// `target`, optimizing every sticker simultaneously: the perturbation
    /// is one `[N, C, H, W]` tensor updated by a single (elementwise, hence
    /// per-image-identical) Adam state, and each iteration runs one batched
    /// recorded forward + tape-driven backward through the immutable
    /// engine. Adaptive feature penalties (Eq. 9–11) are computed per
    /// shard and injected at the feature layer's output inside the engine's
    /// backward; the low-frequency DCT projection (Eq. 8) is applied to
    /// every image's channels.
    ///
    /// Each returned [`Rp2Result`] matches what a single-image
    /// [`Rp2Attack::generate`] call produces for that image: the transform
    /// schedule is sampled once from the configured seed, exactly as every
    /// per-image run would sample it.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty set, malformed images, or if the
    /// victim network rejects the image shape.
    pub fn generate_batch(
        &self,
        net: &Sequential,
        images: &[Tensor],
        target: usize,
    ) -> Result<Vec<Rp2Result>> {
        let (adversarial, perturbation, loss_traces) =
            self.generate_batch_tensors(net, images, target)?;
        loss_traces
            .into_iter()
            .enumerate()
            .map(|(i, loss_trace)| {
                Ok(Rp2Result {
                    adversarial: adversarial.batch_item(i)?,
                    perturbation: perturbation.batch_item(i)?,
                    loss_trace,
                })
            })
            .collect()
    }

    /// The batched optimizer core behind [`Rp2Attack::generate_batch`]:
    /// returns the whole adversarial batch, the perturbation batch and the
    /// per-image loss traces without splitting into per-image tensors, so
    /// [`Rp2Attack::evaluate`] can judge the batch without re-stacking it.
    fn generate_batch_tensors(
        &self,
        net: &Sequential,
        images: &[Tensor],
        target: usize,
    ) -> Result<(Tensor, Tensor, Vec<Vec<f32>>)> {
        if images.is_empty() {
            return Err(AttackError::BadInput("no images to attack".into()));
        }
        let (c, h, w) = image_dims(&images[0])?;
        let clean = Tensor::stack(images)?;
        let n = images.len();
        let mask = blurnet_data::sticker_mask(h, w, self.config.layout)?;
        let mask_batch = broadcast_mask(&mask, n * c)?.reshape(&[n, c, h, w])?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let transforms = sample_transforms(
            self.config.num_transforms,
            self.config.max_shift,
            self.config.brightness_jitter,
            &mut rng,
        );

        // One image per shard, pinned explicitly: the per-shard loss
        // closure below relies on per-image cross-entropy normalization,
        // per-image feature penalties, and per-image shard losses.
        let engine = net.batch_engine()?.with_shard_size(1);
        let (feature_layer, penalty) = match &self.config.objective {
            AdaptiveObjective::FeaturePenalty {
                layer_index,
                kind,
                weight,
            } => {
                if *layer_index >= net.len() {
                    return Err(AttackError::BadConfig(format!(
                        "feature layer index {layer_index} out of range"
                    )));
                }
                (Some(*layer_index), Some((kind, *weight)))
            }
            _ => (None, None),
        };

        let mut delta = Tensor::zeros(clean.dims());
        let mut adam = Adam::new(self.config.learning_rate)?;
        let mut loss_traces: Vec<Vec<f32>> = vec![Vec::with_capacity(self.config.iterations); n];
        let plane = c * h * w;

        for iter in 0..self.config.iterations {
            let transform = transforms[iter % transforms.len()];
            let masked = delta.mul(&mask_batch)?;
            let effective = self.project_perturbation(&masked)?;
            let transformed = transform_perturbation(&effective, transform)?;
            let raw = clean.add(&transformed)?;
            let x_adv = raw.clamp(0.0, 1.0);

            // One batched forward + backward; the loss closure sees one
            // shard (default: one image) at a time and mirrors the
            // per-image objective exactly.
            let step =
                engine.forward_backward_with(&x_adv, feature_layer, |_, logits, feature| {
                    let count = logits.dims()[0];
                    let (ce_loss, d_logits) = softmax_cross_entropy(logits, &vec![target; count])?;
                    let (injection, penalty_value) = match (&penalty, feature) {
                        (Some((kind, weight)), Some(feature)) => {
                            let (value, grad) = feature_penalty(kind, feature)
                                .map_err(|e| NnError::BadConfig(e.to_string()))?;
                            (Some(grad.scale(*weight)), value * weight)
                        }
                        _ => (None, 0.0),
                    };
                    Ok(ShardGrad {
                        d_logits,
                        injection,
                        loss: ce_loss + penalty_value,
                    })
                })?;
            if step.shard_losses.len() != n {
                return Err(AttackError::BadConfig(format!(
                    "expected {n} per-image shard losses, got {}",
                    step.shard_losses.len()
                )));
            }
            for (trace, &loss) in loss_traces.iter_mut().zip(step.shard_losses.iter()) {
                trace.push(loss);
            }

            let mut grad = step.input_grad;
            // Gradient does not flow through the [0, 1] clamp — mask it in
            // place on the batch buffer.
            for (g, &v) in grad.data_mut().iter_mut().zip(raw.data()) {
                if !(0.0..=1.0).contains(&v) {
                    *g = 0.0;
                }
            }
            // Adjoint of the alignment transform.
            grad = transform_perturbation_adjoint(&grad, transform)?;
            // Adjoint of the DCT projection (it is an orthogonal projector,
            // hence self-adjoint).
            grad = self.project_perturbation(&grad)?;
            // Restrict to the mask.
            let mut total_grad = grad.mul(&mask_batch)?;

            // λ‖M·δ‖₂ term, normalized per image.
            if self.config.lambda > 0.0 {
                let m = masked.data();
                let tg = total_grad.data_mut();
                for i in 0..n {
                    let rows = &m[i * plane..(i + 1) * plane];
                    let norm = rows.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
                    let scale = self.config.lambda / norm;
                    for (g, &v) in tg[i * plane..(i + 1) * plane].iter_mut().zip(rows) {
                        *g += scale * v;
                    }
                }
            }
            // Non-printability score on the sticker colours, per image.
            if self.config.nps_weight > 0.0 {
                let x = x_adv.data();
                let tg = total_grad.data_mut();
                for i in 0..n {
                    nps_gradient_into(
                        &mut tg[i * plane..(i + 1) * plane],
                        &x[i * plane..(i + 1) * plane],
                        &mask,
                        c,
                        h,
                        w,
                        self.config.nps_weight,
                    )?;
                }
            }

            let mut pairs = vec![(&mut delta, &total_grad)];
            adam.step(&mut pairs)?;
        }

        let masked = delta.mul(&mask_batch)?;
        let effective = self.project_perturbation(&masked)?;
        let adversarial = clean.add(&effective)?.clamp(0.0, 1.0);
        let perturbation = adversarial.sub(&clean)?;
        Ok((adversarial, perturbation, loss_traces))
    }

    /// Generates an adversarial example for one `[3, H, W]` image targeting
    /// class `target` (a batch-of-one [`Rp2Attack::generate_batch`]; the
    /// network stays immutable).
    ///
    /// # Errors
    ///
    /// Returns an error for malformed inputs or if the victim network
    /// rejects the image shape.
    pub fn generate(&self, net: &Sequential, image: &Tensor, target: usize) -> Result<Rp2Result> {
        let mut results = self.generate_batch(net, std::slice::from_ref(image), target)?;
        Ok(results.remove(0))
    }

    /// Generates adversarial examples for a set of images against one target
    /// class and summarizes the targeted success rate and dissimilarity on
    /// the victim network itself (white-box evaluation).
    ///
    /// Generation optimizes the whole set at once
    /// ([`Rp2Attack::generate_batch`]) and the set is judged with one
    /// batch-parallel pass, with metrics computed straight from the batched
    /// logits and image buffers.
    ///
    /// # Errors
    ///
    /// Returns an error if `images` is empty or generation fails.
    pub fn evaluate(
        &self,
        net: &Sequential,
        images: &[Tensor],
        target: usize,
    ) -> Result<AttackEvaluation> {
        let (adv, _, _) = self.generate_batch_tensors(net, images, target)?;
        let clean = Tensor::stack(images)?;
        let adv_logits = net.batch_engine()?.forward(&adv)?;
        let dissims = batch_l2_dissimilarity(&clean, &adv)?;
        Ok(AttackEvaluation {
            success_rate: targeted_success_from_logits(&adv_logits, target)?,
            l2_dissimilarity: dissims.iter().sum::<f32>() / dissims.len() as f32,
            count: images.len(),
        })
    }

    /// Generates adversarial examples without evaluating them (used by the
    /// black-box transfer harness), batched like
    /// [`Rp2Attack::generate_batch`].
    ///
    /// # Errors
    ///
    /// Returns an error if `images` is empty or generation fails.
    pub fn generate_set(
        &self,
        net: &Sequential,
        images: &[Tensor],
        target: usize,
    ) -> Result<Vec<Tensor>> {
        Ok(self
            .generate_batch(net, images, target)?
            .into_iter()
            .map(|r| r.adversarial)
            .collect())
    }

    /// Runs [`Rp2Attack::evaluate`] for every target class in `targets` and
    /// returns the per-target evaluations (Table II reports the average and
    /// the worst case over targets).
    ///
    /// # Errors
    ///
    /// Returns an error if `targets` is empty or any evaluation fails.
    pub fn sweep_targets(
        &self,
        net: &Sequential,
        images: &[Tensor],
        targets: &[usize],
    ) -> Result<TargetSweep> {
        if targets.is_empty() {
            return Err(AttackError::BadInput("no attack targets supplied".into()));
        }
        let mut per_target = Vec::with_capacity(targets.len());
        for &target in targets {
            per_target.push((target, self.evaluate(net, images, target)?));
        }
        Ok(TargetSweep { per_target })
    }

    /// Applies the adaptive low-frequency projection to every `[H, W]`
    /// channel plane of a perturbation — rank 3 (`[C, H, W]`) or rank 4
    /// (`[N, C, H, W]`) — a no-op clone for the other objectives.
    fn project_perturbation(&self, perturbation: &Tensor) -> Result<Tensor> {
        match &self.config.objective {
            AdaptiveObjective::LowFrequencyDct { dim } => {
                let (h, w) = spatial_dims(perturbation)?;
                let planes = perturbation.len() / (h * w);
                let mut out = Vec::with_capacity(perturbation.len());
                for p in 0..planes {
                    let map = Tensor::from_vec(
                        perturbation.data()[p * h * w..(p + 1) * h * w].to_vec(),
                        &[h, w],
                    )?;
                    let projected = low_frequency_project(&map, *dim)?;
                    out.extend_from_slice(projected.data());
                }
                Ok(Tensor::from_vec(out, perturbation.dims())?)
            }
            _ => Ok(perturbation.clone()),
        }
    }
}

/// Per-target evaluations from [`Rp2Attack::sweep_targets`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetSweep {
    /// `(target class, evaluation)` pairs.
    pub per_target: Vec<(usize, AttackEvaluation)>,
}

impl TargetSweep {
    /// Average targeted success rate across all swept targets.
    pub fn average_success_rate(&self) -> f32 {
        if self.per_target.is_empty() {
            return 0.0;
        }
        self.per_target
            .iter()
            .map(|(_, e)| e.success_rate)
            .sum::<f32>()
            / self.per_target.len() as f32
    }

    /// Worst-case (maximum) targeted success rate across targets.
    pub fn worst_success_rate(&self) -> f32 {
        self.per_target
            .iter()
            .map(|(_, e)| e.success_rate)
            .fold(0.0, f32::max)
    }

    /// Mean L2 dissimilarity across targets.
    pub fn mean_l2_dissimilarity(&self) -> f32 {
        if self.per_target.is_empty() {
            return 0.0;
        }
        self.per_target
            .iter()
            .map(|(_, e)| e.l2_dissimilarity)
            .sum::<f32>()
            / self.per_target.len() as f32
    }
}

/// Computes the value and activation-gradient of an adaptive feature
/// penalty.
pub(crate) fn feature_penalty(
    kind: &FeaturePenaltyKind,
    feature: &Tensor,
) -> Result<(f32, Tensor)> {
    match kind {
        FeaturePenaltyKind::TotalVariation => Ok((
            blurnet_signal::total_variation_batch(feature)?,
            blurnet_signal::tv_gradient_batch(feature)?,
        )),
        FeaturePenaltyKind::Operator(penalty) => {
            Ok((penalty.value_batch(feature)?, penalty.grad_batch(feature)?))
        }
    }
}

fn image_dims(image: &Tensor) -> Result<(usize, usize, usize)> {
    if image.shape().rank() != 3 {
        return Err(AttackError::BadInput(format!(
            "expected a [C, H, W] image, got {}",
            image.shape()
        )));
    }
    Ok((image.dims()[0], image.dims()[1], image.dims()[2]))
}

/// Trailing spatial extents of a `[..., H, W]` tensor of rank ≥ 3.
fn spatial_dims(t: &Tensor) -> Result<(usize, usize)> {
    let rank = t.shape().rank();
    if rank < 3 {
        return Err(AttackError::BadInput(format!(
            "expected a [..., H, W] tensor of rank >= 3, got {}",
            t.shape()
        )));
    }
    Ok((t.dims()[rank - 2], t.dims()[rank - 1]))
}

fn broadcast_mask(mask: &Tensor, channels: usize) -> Result<Tensor> {
    let (h, w) = (mask.dims()[0], mask.dims()[1]);
    let mut data = Vec::with_capacity(channels * h * w);
    for _ in 0..channels {
        data.extend_from_slice(mask.data());
    }
    Ok(Tensor::from_vec(data, &[channels, h, w])?)
}

/// Applies an alignment transform to a perturbation: integer shift with
/// zero fill plus brightness scaling (no clamping — the perturbation is a
/// signed quantity). Accepts a single `[C, H, W]` image or a whole
/// `[N, C, H, W]` batch (every leading plane is shifted identically).
pub(crate) fn transform_perturbation(perturbation: &Tensor, t: Transform) -> Result<Tensor> {
    let (h, w) = spatial_dims(perturbation)?;
    let planes = perturbation.len() / (h * w);
    let mut out = Tensor::zeros(perturbation.dims());
    let src = perturbation.data();
    let dst = out.data_mut();
    for ch in 0..planes {
        for y in 0..h {
            let sy = y as i32 - t.dy;
            if sy < 0 || sy >= h as i32 {
                continue;
            }
            for x in 0..w {
                let sx = x as i32 - t.dx;
                if sx < 0 || sx >= w as i32 {
                    continue;
                }
                dst[ch * h * w + y * w + x] =
                    src[ch * h * w + sy as usize * w + sx as usize] * t.brightness;
            }
        }
    }
    Ok(out)
}

/// Adjoint of [`transform_perturbation`]: the reverse shift with the same
/// brightness factor. Needed to map input-space gradients back onto the
/// untransformed perturbation.
pub(crate) fn transform_perturbation_adjoint(grad: &Tensor, t: Transform) -> Result<Tensor> {
    transform_perturbation(
        grad,
        Transform {
            dx: -t.dx,
            dy: -t.dy,
            brightness: t.brightness,
        },
    )
}

/// Accumulates `scale ×` the gradient of the non-printability score for one
/// image directly into `grad` (a `[C·H·W]` slice of the batched gradient
/// buffer) — no per-image tensor allocations. Contributions are multiplied
/// by the mask value, matching the historical `nps_grad · M` restriction.
fn nps_gradient_into(
    grad: &mut [f32],
    image: &[f32],
    mask: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    scale: f32,
) -> Result<()> {
    if c != 3 {
        // NPS is defined over RGB triples; for other channel counts skip it.
        return Ok(());
    }
    let m = mask.data();
    for y in 0..h {
        for x in 0..w {
            let mask_val = m[y * w + x];
            if mask_val < 0.5 {
                continue;
            }
            let pixel = [
                image[y * w + x],
                image[h * w + y * w + x],
                image[2 * h * w + y * w + x],
            ];
            // distances to every printable colour
            let dists: Vec<f32> = PRINTABLE_PALETTE
                .iter()
                .map(|p| {
                    ((pixel[0] - p[0]).powi(2)
                        + (pixel[1] - p[1]).powi(2)
                        + (pixel[2] - p[2]).powi(2))
                    .sqrt()
                    .max(1e-4)
                })
                .collect();
            let product: f32 = dists.iter().product();
            for (j, p) in PRINTABLE_PALETTE.iter().enumerate() {
                let coeff = product / dists[j] / dists[j];
                for ch in 0..3 {
                    grad[ch * h * w + y * w + x] += scale * mask_val * coeff * (pixel[ch] - p[ch]);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_data::{DatasetConfig, SignDataset, STOP_CLASS_ID};
    use blurnet_nn::LisaCnn;

    fn tiny_net_and_data() -> (Sequential, SignDataset) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = LisaCnn::new(18)
            .input_size(16)
            .conv1_filters(4)
            .build(&mut rng)
            .unwrap();
        let mut cfg = DatasetConfig::tiny();
        cfg.image_size = 16;
        let data = SignDataset::generate(&cfg, 1).unwrap();
        (net, data)
    }

    #[test]
    fn config_validation() {
        assert!(Rp2Attack::new(Rp2Config {
            iterations: 0,
            ..Rp2Config::default()
        })
        .is_err());
        assert!(Rp2Attack::new(Rp2Config {
            learning_rate: 0.0,
            ..Rp2Config::default()
        })
        .is_err());
        assert!(Rp2Attack::new(Rp2Config {
            num_transforms: 0,
            ..Rp2Config::default()
        })
        .is_err());
        assert!(Rp2Attack::new(Rp2Config {
            lambda: -1.0,
            ..Rp2Config::default()
        })
        .is_err());
        assert!(Rp2Attack::new(Rp2Config::default()).is_ok());
    }

    #[test]
    fn perturbation_stays_inside_the_mask() {
        let (net, data) = tiny_net_and_data();
        let attack = Rp2Attack::new(Rp2Config {
            iterations: 5,
            ..Rp2Config::default()
        })
        .unwrap();
        let image = &data.stop_eval_images()[0];
        let result = attack.generate(&net, image, 0).unwrap();
        assert_eq!(result.adversarial.dims(), image.dims());
        assert_eq!(result.loss_trace.len(), 5);
        // All perturbed pixels must lie within the sticker mask.
        let mask = blurnet_data::sticker_mask(16, 16, StickerLayout::TwoBars).unwrap();
        for ch in 0..3 {
            for y in 0..16 {
                for x in 0..16 {
                    let p = result.perturbation.get(&[ch, y, x]).unwrap();
                    if mask.get(&[y, x]).unwrap() < 0.5 {
                        assert_eq!(p, 0.0, "perturbation escaped the mask at {ch},{y},{x}");
                    }
                }
            }
        }
        // Adversarial image is a valid image.
        assert!(result.adversarial.min().unwrap() >= 0.0);
        assert!(result.adversarial.max().unwrap() <= 1.0);
    }

    #[test]
    fn attack_reduces_target_loss() {
        let (net, data) = tiny_net_and_data();
        let attack = Rp2Attack::new(Rp2Config {
            iterations: 40,
            nps_weight: 0.0,
            lambda: 0.0,
            num_transforms: 1,
            ..Rp2Config::default()
        })
        .unwrap();
        let image = &data.stop_eval_images()[0];
        let target = 3usize;
        let result = attack.generate(&net, image, target).unwrap();
        let first = result.loss_trace.first().copied().unwrap();
        let last = result.loss_trace.last().copied().unwrap();
        assert!(
            last < first,
            "target loss should decrease: first {first}, last {last}"
        );
    }

    #[test]
    fn evaluate_and_sweep_produce_bounded_rates() {
        let (net, data) = tiny_net_and_data();
        let attack = Rp2Attack::new(Rp2Config {
            iterations: 3,
            ..Rp2Config::default()
        })
        .unwrap();
        let images: Vec<Tensor> = data.stop_eval_images()[..2].to_vec();
        let eval = attack.evaluate(&net, &images, 1).unwrap();
        assert!((0.0..=1.0).contains(&eval.success_rate));
        assert!(eval.l2_dissimilarity >= 0.0);
        assert_eq!(eval.count, 2);

        let sweep = attack.sweep_targets(&net, &images, &[0, 1]).unwrap();
        assert_eq!(sweep.per_target.len(), 2);
        assert!(sweep.worst_success_rate() >= sweep.average_success_rate());
        assert!(sweep.mean_l2_dissimilarity() >= 0.0);
        assert!(attack.sweep_targets(&net, &images, &[]).is_err());
        assert!(attack.evaluate(&net, &[], STOP_CLASS_ID).is_err());
    }

    #[test]
    fn transform_adjoint_is_consistent() {
        // <T(x), y> == <x, T^T(y)> for random-ish tensors.
        let x = Tensor::from_vec((0..27).map(|v| v as f32 * 0.1).collect(), &[3, 3, 3]).unwrap();
        let y = Tensor::from_vec(
            (0..27).map(|v| (v as f32 * 0.07).sin()).collect(),
            &[3, 3, 3],
        )
        .unwrap();
        let t = Transform {
            dx: 1,
            dy: -1,
            brightness: 1.2,
        };
        let lhs = transform_perturbation(&x, t).unwrap().dot(&y).unwrap();
        let rhs = x
            .dot(&transform_perturbation_adjoint(&y, t).unwrap())
            .unwrap();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn rejects_bad_image_rank() {
        let (net, _) = tiny_net_and_data();
        let attack = Rp2Attack::new(Rp2Config {
            iterations: 1,
            ..Rp2Config::default()
        })
        .unwrap();
        assert!(attack.generate(&net, &Tensor::zeros(&[16, 16]), 0).is_err());
    }
}
