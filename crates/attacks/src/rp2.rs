//! The Robust Physical Perturbations (RP2) attack.
//!
//! RP2 (Eykholt et al.) finds a sticker-like perturbation `δ` constrained to
//! the sign by a binary mask `M_x`, optimized so that the perturbed sign is
//! classified as an attacker-chosen target `y*` across a transform ensemble
//! `T_i` (Eq. 1 of the BlurNet paper):
//!
//! ```text
//! argmin_δ  λ‖M_x · δ‖₂ + NPS + J(f_θ(x + T_i(M_x · δ)), y*)
//! ```
//!
//! The same optimizer loop also powers the adaptive variants of
//! [`crate::adaptive`] through [`AdaptiveObjective`].

use blurnet_data::{sample_transforms, StickerLayout, Transform};
use blurnet_nn::{softmax_cross_entropy, Adam, Optimizer, Sequential};
use blurnet_signal::low_frequency_project;
use blurnet_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::adaptive::{AdaptiveObjective, FeaturePenaltyKind};
use crate::metrics::{l2_dissimilarity, targeted_success_rate, AttackEvaluation};
use crate::{AttackError, Result};

/// A small palette of printable colours used by the non-printability score
/// (NPS) term; stickers whose colours drift far from every printable colour
/// are penalized.
const PRINTABLE_PALETTE: [[f32; 3]; 6] = [
    [0.05, 0.05, 0.05], // black
    [0.95, 0.95, 0.95], // white
    [0.50, 0.50, 0.50], // grey
    [0.80, 0.10, 0.10], // red
    [0.95, 0.80, 0.15], // yellow
    [0.10, 0.10, 0.70], // blue
];

/// Configuration of an RP2 attack run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rp2Config {
    /// Weight λ of the mask-norm term (the paper sweeps this; 0.002 is the
    /// value used for the black-box evaluation).
    pub lambda: f32,
    /// Weight of the non-printability score term.
    pub nps_weight: f32,
    /// Number of optimization iterations ("epochs" in the paper; 300 there).
    pub iterations: usize,
    /// Adam learning rate on the perturbation.
    pub learning_rate: f32,
    /// Number of alignment transforms sampled for the ensemble.
    pub num_transforms: usize,
    /// Maximum absolute shift (pixels) of the transform ensemble.
    pub max_shift: i32,
    /// Brightness jitter of the transform ensemble.
    pub brightness_jitter: f32,
    /// Sticker mask layout.
    pub layout: StickerLayout,
    /// RNG seed for transform sampling.
    pub seed: u64,
    /// Objective modification for adaptive attacks.
    pub objective: AdaptiveObjective,
}

impl Default for Rp2Config {
    fn default() -> Self {
        Rp2Config {
            lambda: 0.002,
            nps_weight: 0.05,
            iterations: 150,
            learning_rate: 0.05,
            num_transforms: 4,
            max_shift: 2,
            brightness_jitter: 0.15,
            layout: StickerLayout::TwoBars,
            seed: 0,
            objective: AdaptiveObjective::Standard,
        }
    }
}

/// Output of a single-image RP2 run.
#[derive(Debug, Clone)]
pub struct Rp2Result {
    /// The adversarial image, clamped to `[0, 1]`.
    pub adversarial: Tensor,
    /// The effective masked perturbation added to the clean image.
    pub perturbation: Tensor,
    /// Classifier loss after every iteration (for convergence diagnostics).
    pub loss_trace: Vec<f32>,
}

/// The RP2 attack engine.
#[derive(Debug, Clone)]
pub struct Rp2Attack {
    config: Rp2Config,
}

/// Logits, per-layer gradient injections and total penalty value from one
/// objective-aware forward pass (Eq. 9–11).
type ObjectiveForward = (Tensor, Vec<(usize, Tensor)>, f32);

impl Rp2Attack {
    /// Creates an attack from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] for non-positive iteration counts,
    /// learning rates or transform counts.
    pub fn new(config: Rp2Config) -> Result<Self> {
        if config.iterations == 0 {
            return Err(AttackError::BadConfig("iterations must be non-zero".into()));
        }
        if config.learning_rate <= 0.0 {
            return Err(AttackError::BadConfig(
                "learning rate must be positive".into(),
            ));
        }
        if config.num_transforms == 0 {
            return Err(AttackError::BadConfig(
                "transform ensemble must be non-empty".into(),
            ));
        }
        if config.lambda < 0.0 || config.nps_weight < 0.0 {
            return Err(AttackError::BadConfig(
                "regularization weights must be non-negative".into(),
            ));
        }
        Ok(Rp2Attack { config })
    }

    /// The attack configuration.
    pub fn config(&self) -> &Rp2Config {
        &self.config
    }

    /// Generates an adversarial example for one `[3, H, W]` image targeting
    /// class `target`.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed inputs or if the victim network
    /// rejects the image shape.
    pub fn generate(
        &self,
        net: &mut Sequential,
        image: &Tensor,
        target: usize,
    ) -> Result<Rp2Result> {
        let (c, h, w) = image_dims(image)?;
        let mask = blurnet_data::sticker_mask(h, w, self.config.layout)?;
        let mask3 = broadcast_mask(&mask, c)?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let transforms = sample_transforms(
            self.config.num_transforms,
            self.config.max_shift,
            self.config.brightness_jitter,
            &mut rng,
        );

        let mut delta = Tensor::zeros(image.dims());
        let mut adam = Adam::new(self.config.learning_rate)?;
        let mut loss_trace = Vec::with_capacity(self.config.iterations);

        for iter in 0..self.config.iterations {
            let transform = transforms[iter % transforms.len()];
            let masked = delta.mul(&mask3)?;
            let effective = self.project_perturbation(&masked)?;
            let transformed = transform_perturbation(&effective, transform)?;
            let raw = image.add(&transformed)?;
            let x_adv = raw.clamp(0.0, 1.0);
            let batch = Tensor::stack(std::slice::from_ref(&x_adv))?;

            // Forward pass; adaptive feature penalties need the activations.
            let (logits, injections, penalty_value) = self.forward_with_objective(net, &batch)?;
            let (ce_loss, d_logits) = softmax_cross_entropy(&logits, &[target])?;
            loss_trace.push(ce_loss + penalty_value);

            let grad_batch = net.backward_with_injection(&d_logits, &injections)?;
            let mut grad = grad_batch.batch_item(0)?;
            // Gradient does not flow through the [0, 1] clamp.
            grad = grad.zip_map(&raw, |g, v| if (0.0..=1.0).contains(&v) { g } else { 0.0 })?;
            // Adjoint of the alignment transform.
            grad = transform_perturbation_adjoint(&grad, transform)?;
            // Adjoint of the DCT projection (it is an orthogonal projector,
            // hence self-adjoint).
            grad = self.project_perturbation(&grad)?;
            // Restrict to the mask.
            let mut total_grad = grad.mul(&mask3)?;

            // λ‖M·δ‖₂ term.
            if self.config.lambda > 0.0 {
                let norm = masked.l2_norm().max(1e-6);
                total_grad.add_scaled(&masked, self.config.lambda / norm)?;
            }
            // Non-printability score on the sticker colours.
            if self.config.nps_weight > 0.0 {
                let nps_grad = nps_gradient(&x_adv, &mask)?;
                total_grad.add_scaled(&nps_grad.mul(&mask3)?, self.config.nps_weight)?;
            }

            let mut pairs = vec![(&mut delta, &total_grad)];
            adam.step(&mut pairs)?;
        }

        let masked = delta.mul(&mask3)?;
        let effective = self.project_perturbation(&masked)?;
        let adversarial = image.add(&effective)?.clamp(0.0, 1.0);
        let perturbation = adversarial.sub(image)?;
        Ok(Rp2Result {
            adversarial,
            perturbation,
            loss_trace,
        })
    }

    /// Generates adversarial examples for a set of images against one target
    /// class and summarizes the targeted success rate and dissimilarity on
    /// the victim network itself (white-box evaluation).
    ///
    /// # Errors
    ///
    /// Returns an error if `images` is empty or generation fails.
    pub fn evaluate(
        &self,
        net: &mut Sequential,
        images: &[Tensor],
        target: usize,
    ) -> Result<AttackEvaluation> {
        if images.is_empty() {
            return Err(AttackError::BadInput("no images to attack".into()));
        }
        // Generate per image (each optimization needs its own gradient
        // loop), then judge the whole set with one batch-parallel pass.
        let mut adversarial = Vec::with_capacity(images.len());
        let mut dissims = Vec::with_capacity(images.len());
        for image in images {
            let result = self.generate(net, image, target)?;
            dissims.push(l2_dissimilarity(image, &result.adversarial)?);
            adversarial.push(result.adversarial);
        }
        let adv_preds = net.predict_batch(&Tensor::stack(&adversarial)?)?;
        let success_rate = targeted_success_rate(&adv_preds, target)?;
        Ok(AttackEvaluation {
            success_rate,
            l2_dissimilarity: dissims.iter().sum::<f32>() / dissims.len() as f32,
            count: images.len(),
        })
    }

    /// Generates adversarial examples without evaluating them (used by the
    /// black-box transfer harness).
    ///
    /// # Errors
    ///
    /// Returns an error if `images` is empty or generation fails.
    pub fn generate_set(
        &self,
        net: &mut Sequential,
        images: &[Tensor],
        target: usize,
    ) -> Result<Vec<Tensor>> {
        if images.is_empty() {
            return Err(AttackError::BadInput("no images to attack".into()));
        }
        images
            .iter()
            .map(|img| self.generate(net, img, target).map(|r| r.adversarial))
            .collect()
    }

    /// Runs [`Rp2Attack::evaluate`] for every target class in `targets` and
    /// returns the per-target evaluations (Table II reports the average and
    /// the worst case over targets).
    ///
    /// # Errors
    ///
    /// Returns an error if `targets` is empty or any evaluation fails.
    pub fn sweep_targets(
        &self,
        net: &mut Sequential,
        images: &[Tensor],
        targets: &[usize],
    ) -> Result<TargetSweep> {
        if targets.is_empty() {
            return Err(AttackError::BadInput("no attack targets supplied".into()));
        }
        let mut per_target = Vec::with_capacity(targets.len());
        for &target in targets {
            per_target.push((target, self.evaluate(net, images, target)?));
        }
        Ok(TargetSweep { per_target })
    }

    /// Applies the adaptive low-frequency projection to a perturbation (a
    /// no-op for the other objectives).
    fn project_perturbation(&self, perturbation: &Tensor) -> Result<Tensor> {
        match &self.config.objective {
            AdaptiveObjective::LowFrequencyDct { dim } => {
                let (c, h, w) = image_dims(perturbation)?;
                let mut out = Vec::with_capacity(perturbation.len());
                for ch in 0..c {
                    let map = perturbation.channel(ch)?;
                    let projected = low_frequency_project(&map, *dim)?;
                    out.extend_from_slice(projected.data());
                }
                Ok(Tensor::from_vec(out, &[c, h, w])?)
            }
            _ => Ok(perturbation.clone()),
        }
    }

    /// Forward pass plus, for feature-penalty objectives, the activation
    /// gradient injection and penalty value that implement Eq. 9–11.
    fn forward_with_objective(
        &self,
        net: &mut Sequential,
        batch: &Tensor,
    ) -> Result<ObjectiveForward> {
        match &self.config.objective {
            AdaptiveObjective::FeaturePenalty {
                layer_index,
                kind,
                weight,
            } => {
                let (logits, activations) = net.forward_collect(batch, false)?;
                let feature = activations.get(*layer_index).ok_or_else(|| {
                    AttackError::BadConfig(format!(
                        "feature layer index {layer_index} out of range"
                    ))
                })?;
                let (value, grad) = feature_penalty(kind, feature)?;
                Ok((
                    logits,
                    vec![(*layer_index, grad.scale(*weight))],
                    value * weight,
                ))
            }
            _ => Ok((net.forward(batch, false)?, Vec::new(), 0.0)),
        }
    }
}

/// Per-target evaluations from [`Rp2Attack::sweep_targets`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetSweep {
    /// `(target class, evaluation)` pairs.
    pub per_target: Vec<(usize, AttackEvaluation)>,
}

impl TargetSweep {
    /// Average targeted success rate across all swept targets.
    pub fn average_success_rate(&self) -> f32 {
        if self.per_target.is_empty() {
            return 0.0;
        }
        self.per_target
            .iter()
            .map(|(_, e)| e.success_rate)
            .sum::<f32>()
            / self.per_target.len() as f32
    }

    /// Worst-case (maximum) targeted success rate across targets.
    pub fn worst_success_rate(&self) -> f32 {
        self.per_target
            .iter()
            .map(|(_, e)| e.success_rate)
            .fold(0.0, f32::max)
    }

    /// Mean L2 dissimilarity across targets.
    pub fn mean_l2_dissimilarity(&self) -> f32 {
        if self.per_target.is_empty() {
            return 0.0;
        }
        self.per_target
            .iter()
            .map(|(_, e)| e.l2_dissimilarity)
            .sum::<f32>()
            / self.per_target.len() as f32
    }
}

/// Computes the value and activation-gradient of an adaptive feature
/// penalty.
pub(crate) fn feature_penalty(
    kind: &FeaturePenaltyKind,
    feature: &Tensor,
) -> Result<(f32, Tensor)> {
    match kind {
        FeaturePenaltyKind::TotalVariation => Ok((
            blurnet_signal::total_variation_batch(feature)?,
            blurnet_signal::tv_gradient_batch(feature)?,
        )),
        FeaturePenaltyKind::Operator(penalty) => {
            Ok((penalty.value_batch(feature)?, penalty.grad_batch(feature)?))
        }
    }
}

fn image_dims(image: &Tensor) -> Result<(usize, usize, usize)> {
    if image.shape().rank() != 3 {
        return Err(AttackError::BadInput(format!(
            "expected a [C, H, W] image, got {}",
            image.shape()
        )));
    }
    Ok((image.dims()[0], image.dims()[1], image.dims()[2]))
}

fn broadcast_mask(mask: &Tensor, channels: usize) -> Result<Tensor> {
    let (h, w) = (mask.dims()[0], mask.dims()[1]);
    let mut data = Vec::with_capacity(channels * h * w);
    for _ in 0..channels {
        data.extend_from_slice(mask.data());
    }
    Ok(Tensor::from_vec(data, &[channels, h, w])?)
}

/// Applies an alignment transform to a perturbation: integer shift with
/// zero fill plus brightness scaling (no clamping — the perturbation is a
/// signed quantity).
pub(crate) fn transform_perturbation(perturbation: &Tensor, t: Transform) -> Result<Tensor> {
    let (c, h, w) = image_dims(perturbation)?;
    let mut out = Tensor::zeros(&[c, h, w]);
    let src = perturbation.data();
    let dst = out.data_mut();
    for ch in 0..c {
        for y in 0..h {
            let sy = y as i32 - t.dy;
            if sy < 0 || sy >= h as i32 {
                continue;
            }
            for x in 0..w {
                let sx = x as i32 - t.dx;
                if sx < 0 || sx >= w as i32 {
                    continue;
                }
                dst[ch * h * w + y * w + x] =
                    src[ch * h * w + sy as usize * w + sx as usize] * t.brightness;
            }
        }
    }
    Ok(out)
}

/// Adjoint of [`transform_perturbation`]: the reverse shift with the same
/// brightness factor. Needed to map input-space gradients back onto the
/// untransformed perturbation.
pub(crate) fn transform_perturbation_adjoint(grad: &Tensor, t: Transform) -> Result<Tensor> {
    transform_perturbation(
        grad,
        Transform {
            dx: -t.dx,
            dy: -t.dy,
            brightness: t.brightness,
        },
    )
}

/// Gradient of the non-printability score with respect to the image pixels
/// inside the mask.
fn nps_gradient(image: &Tensor, mask: &Tensor) -> Result<Tensor> {
    let (c, h, w) = image_dims(image)?;
    if c != 3 {
        // NPS is defined over RGB triples; for other channel counts skip it.
        return Ok(Tensor::zeros(image.dims()));
    }
    let mut grad = Tensor::zeros(image.dims());
    let data = image.data();
    let g = grad.data_mut();
    for y in 0..h {
        for x in 0..w {
            if mask.get(&[y, x])? < 0.5 {
                continue;
            }
            let pixel = [
                data[y * w + x],
                data[h * w + y * w + x],
                data[2 * h * w + y * w + x],
            ];
            // distances to every printable colour
            let dists: Vec<f32> = PRINTABLE_PALETTE
                .iter()
                .map(|p| {
                    ((pixel[0] - p[0]).powi(2)
                        + (pixel[1] - p[1]).powi(2)
                        + (pixel[2] - p[2]).powi(2))
                    .sqrt()
                    .max(1e-4)
                })
                .collect();
            let product: f32 = dists.iter().product();
            for (j, p) in PRINTABLE_PALETTE.iter().enumerate() {
                let coeff = product / dists[j] / dists[j];
                for ch in 0..3 {
                    g[ch * h * w + y * w + x] += coeff * (pixel[ch] - p[ch]);
                }
            }
        }
    }
    Ok(grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_data::{DatasetConfig, SignDataset, STOP_CLASS_ID};
    use blurnet_nn::LisaCnn;

    fn tiny_net_and_data() -> (Sequential, SignDataset) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = LisaCnn::new(18)
            .input_size(16)
            .conv1_filters(4)
            .build(&mut rng)
            .unwrap();
        let mut cfg = DatasetConfig::tiny();
        cfg.image_size = 16;
        let data = SignDataset::generate(&cfg, 1).unwrap();
        (net, data)
    }

    #[test]
    fn config_validation() {
        assert!(Rp2Attack::new(Rp2Config {
            iterations: 0,
            ..Rp2Config::default()
        })
        .is_err());
        assert!(Rp2Attack::new(Rp2Config {
            learning_rate: 0.0,
            ..Rp2Config::default()
        })
        .is_err());
        assert!(Rp2Attack::new(Rp2Config {
            num_transforms: 0,
            ..Rp2Config::default()
        })
        .is_err());
        assert!(Rp2Attack::new(Rp2Config {
            lambda: -1.0,
            ..Rp2Config::default()
        })
        .is_err());
        assert!(Rp2Attack::new(Rp2Config::default()).is_ok());
    }

    #[test]
    fn perturbation_stays_inside_the_mask() {
        let (mut net, data) = tiny_net_and_data();
        let attack = Rp2Attack::new(Rp2Config {
            iterations: 5,
            ..Rp2Config::default()
        })
        .unwrap();
        let image = &data.stop_eval_images()[0];
        let result = attack.generate(&mut net, image, 0).unwrap();
        assert_eq!(result.adversarial.dims(), image.dims());
        assert_eq!(result.loss_trace.len(), 5);
        // All perturbed pixels must lie within the sticker mask.
        let mask = blurnet_data::sticker_mask(16, 16, StickerLayout::TwoBars).unwrap();
        for ch in 0..3 {
            for y in 0..16 {
                for x in 0..16 {
                    let p = result.perturbation.get(&[ch, y, x]).unwrap();
                    if mask.get(&[y, x]).unwrap() < 0.5 {
                        assert_eq!(p, 0.0, "perturbation escaped the mask at {ch},{y},{x}");
                    }
                }
            }
        }
        // Adversarial image is a valid image.
        assert!(result.adversarial.min().unwrap() >= 0.0);
        assert!(result.adversarial.max().unwrap() <= 1.0);
    }

    #[test]
    fn attack_reduces_target_loss() {
        let (mut net, data) = tiny_net_and_data();
        let attack = Rp2Attack::new(Rp2Config {
            iterations: 40,
            nps_weight: 0.0,
            lambda: 0.0,
            num_transforms: 1,
            ..Rp2Config::default()
        })
        .unwrap();
        let image = &data.stop_eval_images()[0];
        let target = 3usize;
        let result = attack.generate(&mut net, image, target).unwrap();
        let first = result.loss_trace.first().copied().unwrap();
        let last = result.loss_trace.last().copied().unwrap();
        assert!(
            last < first,
            "target loss should decrease: first {first}, last {last}"
        );
    }

    #[test]
    fn evaluate_and_sweep_produce_bounded_rates() {
        let (mut net, data) = tiny_net_and_data();
        let attack = Rp2Attack::new(Rp2Config {
            iterations: 3,
            ..Rp2Config::default()
        })
        .unwrap();
        let images: Vec<Tensor> = data.stop_eval_images()[..2].to_vec();
        let eval = attack.evaluate(&mut net, &images, 1).unwrap();
        assert!((0.0..=1.0).contains(&eval.success_rate));
        assert!(eval.l2_dissimilarity >= 0.0);
        assert_eq!(eval.count, 2);

        let sweep = attack.sweep_targets(&mut net, &images, &[0, 1]).unwrap();
        assert_eq!(sweep.per_target.len(), 2);
        assert!(sweep.worst_success_rate() >= sweep.average_success_rate());
        assert!(sweep.mean_l2_dissimilarity() >= 0.0);
        assert!(attack.sweep_targets(&mut net, &images, &[]).is_err());
        assert!(attack.evaluate(&mut net, &[], STOP_CLASS_ID).is_err());
    }

    #[test]
    fn transform_adjoint_is_consistent() {
        // <T(x), y> == <x, T^T(y)> for random-ish tensors.
        let x = Tensor::from_vec((0..27).map(|v| v as f32 * 0.1).collect(), &[3, 3, 3]).unwrap();
        let y = Tensor::from_vec(
            (0..27).map(|v| (v as f32 * 0.07).sin()).collect(),
            &[3, 3, 3],
        )
        .unwrap();
        let t = Transform {
            dx: 1,
            dy: -1,
            brightness: 1.2,
        };
        let lhs = transform_perturbation(&x, t).unwrap().dot(&y).unwrap();
        let rhs = x
            .dot(&transform_perturbation_adjoint(&y, t).unwrap())
            .unwrap();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn rejects_bad_image_rank() {
        let (mut net, _) = tiny_net_and_data();
        let attack = Rp2Attack::new(Rp2Config {
            iterations: 1,
            ..Rp2Config::default()
        })
        .unwrap();
        assert!(attack
            .generate(&mut net, &Tensor::zeros(&[16, 16]), 0)
            .is_err());
    }
}
