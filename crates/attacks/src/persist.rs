//! Versioned binary persistence for the expensive attack artifacts: the
//! surrogate transfer set and RP2 sticker results.
//!
//! Both artifacts sit on the scheduler's critical path (every Table I /
//! Table V cell consumes one of them), so caching them to disk lets a
//! resumed or warm-cache run skip the optimization entirely. Tensors ride
//! the `BNTR` records of [`blurnet_tensor::persist`].
//!
//! # Transfer-set layout (`BNXS`, version 1)
//!
//! ```text
//! magic     4 bytes   b"BNXS"
//! version   u16 LE
//! target    u64 LE    attacker's target class
//! count     u64 LE    number of images
//! labels    count × u64 LE
//! clean     count × tensor record
//! adv       count × tensor record (index-aligned with clean)
//! ```
//!
//! # RP2 result layout (`BNRP`, version 1)
//!
//! ```text
//! magic         4 bytes   b"BNRP"
//! version       u16 LE
//! trace_len     u64 LE
//! loss_trace    trace_len × f32 LE
//! adversarial   tensor record
//! perturbation  tensor record
//! ```

use blurnet_tensor::persist::{put_u64, read_tensor, write_tensor, ByteReader};
use blurnet_tensor::TensorError;

use crate::{AttackError, Result, Rp2Result, TransferSet};

/// Magic bytes opening a serialized [`TransferSet`].
pub const TRANSFER_MAGIC: [u8; 4] = *b"BNXS";
/// Newest transfer-set format version this build reads and writes.
pub const TRANSFER_VERSION: u16 = 1;

/// Magic bytes opening a serialized [`Rp2Result`].
pub const RP2_MAGIC: [u8; 4] = *b"BNRP";
/// Newest RP2-result format version this build reads and writes.
pub const RP2_VERSION: u16 = 1;

fn fail(e: TensorError) -> AttackError {
    AttackError::Tensor(e)
}

/// Smallest possible encoded tensor record: magic + version + dtype +
/// rank + len, with rank 0 and no payload.
const MIN_TENSOR_RECORD: usize = 16;

/// Rejects a declared element count the remaining input cannot possibly
/// satisfy at `min_size` bytes per element — the guard that keeps a
/// crafted count field from driving a huge up-front allocation before
/// any element has been read.
fn check_declared_count(count: usize, min_size: usize, remaining: usize) -> Result<()> {
    let needed = count.checked_mul(min_size).ok_or_else(|| {
        fail(TensorError::InvalidSpec(format!(
            "declared count {count} overflows usize"
        )))
    })?;
    if remaining < needed {
        return Err(fail(TensorError::Truncated {
            needed,
            available: remaining,
        }));
    }
    Ok(())
}

/// Serializes a transfer set as a standalone binary record.
pub fn transfer_set_to_bytes(set: &TransferSet) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&TRANSFER_MAGIC);
    buf.extend_from_slice(&TRANSFER_VERSION.to_le_bytes());
    put_u64(&mut buf, set.target as u64);
    put_u64(&mut buf, set.clean.len() as u64);
    for &label in &set.labels {
        put_u64(&mut buf, label as u64);
    }
    for t in &set.clean {
        write_tensor(&mut buf, t);
    }
    for t in &set.adversarial {
        write_tensor(&mut buf, t);
    }
    buf
}

/// Deserializes a standalone transfer-set record, rejecting trailing
/// bytes.
///
/// # Errors
///
/// Returns [`AttackError::Tensor`] wrapping the typed persist errors.
pub fn transfer_set_from_bytes(bytes: &[u8]) -> Result<TransferSet> {
    let mut reader = ByteReader::new(bytes);
    reader.expect_magic(TRANSFER_MAGIC).map_err(fail)?;
    reader.expect_version(TRANSFER_VERSION).map_err(fail)?;
    let target = reader.usize_le().map_err(fail)?;
    let count = reader.usize_le().map_err(fail)?;
    // Every image costs at least a u64 label plus two tensor records.
    check_declared_count(count, 8 + 2 * MIN_TENSOR_RECORD, reader.remaining())?;
    let mut labels = Vec::with_capacity(count);
    for _ in 0..count {
        labels.push(reader.usize_le().map_err(fail)?);
    }
    let mut clean = Vec::with_capacity(count);
    for _ in 0..count {
        clean.push(read_tensor(&mut reader).map_err(fail)?);
    }
    let mut adversarial = Vec::with_capacity(count);
    for _ in 0..count {
        adversarial.push(read_tensor(&mut reader).map_err(fail)?);
    }
    reader.finish().map_err(fail)?;
    Ok(TransferSet {
        clean,
        adversarial,
        labels,
        target,
    })
}

/// Serializes an RP2 result as a standalone binary record.
pub fn rp2_result_to_bytes(result: &Rp2Result) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&RP2_MAGIC);
    buf.extend_from_slice(&RP2_VERSION.to_le_bytes());
    put_u64(&mut buf, result.loss_trace.len() as u64);
    for v in &result.loss_trace {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    write_tensor(&mut buf, &result.adversarial);
    write_tensor(&mut buf, &result.perturbation);
    buf
}

/// Deserializes a standalone RP2-result record, rejecting trailing bytes.
///
/// # Errors
///
/// Returns [`AttackError::Tensor`] wrapping the typed persist errors.
pub fn rp2_result_from_bytes(bytes: &[u8]) -> Result<Rp2Result> {
    let mut reader = ByteReader::new(bytes);
    reader.expect_magic(RP2_MAGIC).map_err(fail)?;
    reader.expect_version(RP2_VERSION).map_err(fail)?;
    let trace_len = reader.usize_le().map_err(fail)?;
    check_declared_count(trace_len, 4, reader.remaining())?;
    let mut loss_trace = Vec::with_capacity(trace_len);
    for _ in 0..trace_len {
        let b = reader.take(4).map_err(fail)?;
        loss_trace.push(f32::from_le_bytes(b.try_into().expect("four bytes")));
    }
    let adversarial = read_tensor(&mut reader).map_err(fail)?;
    let perturbation = read_tensor(&mut reader).map_err(fail)?;
    reader.finish().map_err(fail)?;
    Ok(Rp2Result {
        adversarial,
        perturbation,
        loss_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_tensor::Tensor;

    fn tensor(seed: f32, dims: &[usize]) -> Tensor {
        let volume: usize = dims.iter().product();
        Tensor::from_vec(
            (0..volume).map(|v| seed + v as f32 * 0.03125).collect(),
            dims,
        )
        .unwrap()
    }

    fn bits(tensors: &[Tensor]) -> Vec<Vec<u32>> {
        tensors
            .iter()
            .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn transfer_set_roundtrips_bitwise() {
        let set = TransferSet {
            clean: vec![tensor(0.1, &[3, 8, 8]), tensor(0.2, &[3, 8, 8])],
            adversarial: vec![tensor(0.3, &[3, 8, 8]), tensor(0.4, &[3, 8, 8])],
            labels: vec![5, 11],
            target: 14,
        };
        let restored = transfer_set_from_bytes(&transfer_set_to_bytes(&set)).unwrap();
        assert_eq!(restored.target, set.target);
        assert_eq!(restored.labels, set.labels);
        assert_eq!(bits(&restored.clean), bits(&set.clean));
        assert_eq!(bits(&restored.adversarial), bits(&set.adversarial));
    }

    #[test]
    fn rp2_result_roundtrips_bitwise() {
        let result = Rp2Result {
            adversarial: tensor(0.5, &[3, 8, 8]),
            perturbation: tensor(-0.25, &[3, 8, 8]),
            loss_trace: vec![2.5, 1.25, 0.625],
        };
        let restored = rp2_result_from_bytes(&rp2_result_to_bytes(&result)).unwrap();
        assert_eq!(
            bits(std::slice::from_ref(&restored.adversarial)),
            bits(std::slice::from_ref(&result.adversarial))
        );
        assert_eq!(
            bits(std::slice::from_ref(&restored.perturbation)),
            bits(std::slice::from_ref(&result.perturbation))
        );
        let trace_bits: Vec<u32> = restored.loss_trace.iter().map(|v| v.to_bits()).collect();
        let expect_bits: Vec<u32> = result.loss_trace.iter().map(|v| v.to_bits()).collect();
        assert_eq!(trace_bits, expect_bits);
    }

    #[test]
    fn huge_declared_counts_are_rejected_before_allocating() {
        // A header-only payload claiming 2^40 images must come back as a
        // typed truncation, not abort the process allocating for them.
        let mut transfer = Vec::new();
        transfer.extend_from_slice(&TRANSFER_MAGIC);
        transfer.extend_from_slice(&TRANSFER_VERSION.to_le_bytes());
        put_u64(&mut transfer, 0); // target
        put_u64(&mut transfer, 1 << 40); // count
        assert!(matches!(
            transfer_set_from_bytes(&transfer),
            Err(AttackError::Tensor(TensorError::Truncated { .. }))
        ));

        let mut rp2 = Vec::new();
        rp2.extend_from_slice(&RP2_MAGIC);
        rp2.extend_from_slice(&RP2_VERSION.to_le_bytes());
        put_u64(&mut rp2, 1 << 40); // trace_len
        assert!(matches!(
            rp2_result_from_bytes(&rp2),
            Err(AttackError::Tensor(TensorError::Truncated { .. }))
        ));

        // A count whose byte cost overflows usize is typed too.
        let mut overflow = Vec::new();
        overflow.extend_from_slice(&RP2_MAGIC);
        overflow.extend_from_slice(&RP2_VERSION.to_le_bytes());
        put_u64(&mut overflow, u64::MAX);
        assert!(matches!(
            rp2_result_from_bytes(&overflow),
            Err(AttackError::Tensor(TensorError::InvalidSpec(_)))
        ));
    }

    #[test]
    fn corruption_is_typed() {
        let set = TransferSet {
            clean: vec![tensor(0.1, &[2, 2])],
            adversarial: vec![tensor(0.2, &[2, 2])],
            labels: vec![3],
            target: 1,
        };
        let bytes = transfer_set_to_bytes(&set);
        let mut wrong = bytes.clone();
        wrong[0] = b'?';
        assert!(matches!(
            transfer_set_from_bytes(&wrong),
            Err(AttackError::Tensor(TensorError::WrongMagic { .. }))
        ));
        assert!(matches!(
            transfer_set_from_bytes(&bytes[..bytes.len() - 2]),
            Err(AttackError::Tensor(TensorError::Truncated { .. }))
        ));
        let rp2 = Rp2Result {
            adversarial: tensor(0.5, &[2, 2]),
            perturbation: tensor(0.1, &[2, 2]),
            loss_trace: vec![1.0],
        };
        let mut future = rp2_result_to_bytes(&rp2);
        future[4] = 0xFF;
        future[5] = 0xFF;
        assert!(matches!(
            rp2_result_from_bytes(&future),
            Err(AttackError::Tensor(TensorError::UnsupportedVersion { .. }))
        ));
    }
}
