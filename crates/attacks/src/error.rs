use std::fmt;

use blurnet_data::DataError;
use blurnet_nn::NnError;
use blurnet_signal::SignalError;
use blurnet_tensor::TensorError;

/// Errors produced while configuring or running attacks.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// An attack hyper-parameter was invalid.
    BadConfig(String),
    /// The victim model or input had an unexpected shape.
    BadInput(String),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying network operation failed.
    Network(NnError),
    /// An underlying signal-processing operation failed.
    Signal(SignalError),
    /// An underlying dataset operation failed.
    Data(DataError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::BadConfig(msg) => write!(f, "bad attack configuration: {msg}"),
            AttackError::BadInput(msg) => write!(f, "bad attack input: {msg}"),
            AttackError::Tensor(e) => write!(f, "tensor error: {e}"),
            AttackError::Network(e) => write!(f, "network error: {e}"),
            AttackError::Signal(e) => write!(f, "signal error: {e}"),
            AttackError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Tensor(e) => Some(e),
            AttackError::Network(e) => Some(e),
            AttackError::Signal(e) => Some(e),
            AttackError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for AttackError {
    fn from(e: TensorError) -> Self {
        AttackError::Tensor(e)
    }
}

impl From<NnError> for AttackError {
    fn from(e: NnError) -> Self {
        AttackError::Network(e)
    }
}

impl From<SignalError> for AttackError {
    fn from(e: SignalError) -> Self {
        AttackError::Signal(e)
    }
}

impl From<DataError> for AttackError {
    fn from(e: DataError) -> Self {
        AttackError::Data(e)
    }
}
