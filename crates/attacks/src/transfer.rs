//! Black-box transfer evaluation (Table I of the paper).
//!
//! Adversarial examples are generated on a surrogate (the undefended
//! baseline network) and then evaluated on a defended victim that the
//! attacker cannot introspect. Victims are anything that can classify a
//! single image — a plain network, a network behind input filtering, or a
//! randomized-smoothing wrapper — expressed through the [`Classifier`]
//! trait.

use blurnet_nn::Sequential;
use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::metrics::{l2_dissimilarity, untargeted_success_rate};
use crate::rp2::Rp2Attack;
use crate::{AttackError, Result};

/// Anything that can classify a single `[C, H, W]` image.
///
/// The mutable receiver allows implementations that run a network forward
/// pass (which caches activations) or sample randomness.
pub trait Classifier {
    /// Predicts the class of one image.
    ///
    /// # Errors
    ///
    /// Returns an error if the image shape is incompatible with the model.
    fn classify(&mut self, image: &Tensor) -> Result<usize>;

    /// Predicts the class of every image in `images`.
    ///
    /// The default implementation loops [`Classifier::classify`]; models
    /// backed by a network override it to ride the batch-parallel
    /// inference engine (one sharded forward pass instead of per-image
    /// passes). Every evaluation loop in this crate classifies through
    /// this entry point.
    ///
    /// # Errors
    ///
    /// Returns an error if any image is incompatible with the model.
    fn classify_batch(&mut self, images: &[Tensor]) -> Result<Vec<usize>> {
        images.iter().map(|image| self.classify(image)).collect()
    }
}

impl Classifier for Sequential {
    fn classify(&mut self, image: &Tensor) -> Result<usize> {
        let batch = Tensor::stack(std::slice::from_ref(image))?;
        Ok(self.predict(&batch)?[0])
    }

    /// One batch-parallel forward pass over the whole set.
    fn classify_batch(&mut self, images: &[Tensor]) -> Result<Vec<usize>> {
        if images.is_empty() {
            return Ok(Vec::new());
        }
        let batch = Tensor::stack(images)?;
        Ok(self.predict_batch(&batch)?)
    }
}

/// A reusable transfer-attack artifact: one surrogate-generated adversarial
/// set together with its clean counterparts and labels.
///
/// Generating the set is the expensive half of a transfer evaluation (an
/// RP2 optimization over the whole image set); evaluating a victim is one
/// batched classification. Generating the artifact **once** and reusing it
/// across every victim — exactly what Table I's five rows and the
/// experiment scheduler's cell DAG do — keeps the cost of adding a victim
/// at one forward pass. Generation is deterministic (the RP2 transform
/// schedule is seeded from its config), so two artifacts generated from
/// the same surrogate and inputs are bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferSet {
    /// The clean images the set was generated from.
    pub clean: Vec<Tensor>,
    /// Index-aligned adversarial examples from the surrogate.
    pub adversarial: Vec<Tensor>,
    /// True classes of the clean images.
    pub labels: Vec<usize>,
    /// The attacker's target class.
    pub target: usize,
}

impl TransferSet {
    /// Generates the artifact with one batched RP2 optimization on the
    /// surrogate network.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadInput`] for empty or mismatched inputs;
    /// propagates generation errors.
    pub fn generate(
        surrogate: &Sequential,
        attack: &Rp2Attack,
        clean: &[Tensor],
        labels: &[usize],
        target: usize,
    ) -> Result<Self> {
        if clean.is_empty() || clean.len() != labels.len() {
            return Err(AttackError::BadInput(format!(
                "mismatched transfer inputs: {} images, {} labels",
                clean.len(),
                labels.len()
            )));
        }
        let adversarial = attack.generate_set(surrogate, clean, target)?;
        Ok(TransferSet {
            clean: clean.to_vec(),
            adversarial,
            labels: labels.to_vec(),
            target,
        })
    }

    /// Number of image pairs in the artifact.
    pub fn len(&self) -> usize {
        self.clean.len()
    }

    /// Whether the artifact is empty (never true for a generated set).
    pub fn is_empty(&self) -> bool {
        self.clean.is_empty()
    }

    /// Evaluates this artifact against one victim (see
    /// [`evaluate_transfer`]).
    ///
    /// # Errors
    ///
    /// Propagates classification errors.
    pub fn evaluate<C: Classifier + ?Sized>(&self, victim: &mut C) -> Result<TransferReport> {
        evaluate_transfer(victim, &self.clean, &self.adversarial, &self.labels)
    }
}

/// Result of a black-box transfer evaluation against one victim.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferReport {
    /// Victim accuracy on the clean evaluation images.
    pub clean_accuracy: f32,
    /// Fraction of images whose victim prediction the transferred
    /// adversarial examples changed.
    pub attack_success_rate: f32,
    /// Mean relative L2 dissimilarity of the transferred examples.
    pub l2_dissimilarity: f32,
    /// Number of evaluated images.
    pub count: usize,
}

/// Evaluates transferred adversarial examples against a victim classifier.
///
/// `clean` and `adversarial` must be index-aligned; `labels` are the true
/// classes of the clean images (used for the victim's clean accuracy).
///
/// # Errors
///
/// Returns [`AttackError::BadInput`] for empty or mismatched sets.
pub fn evaluate_transfer<C: Classifier + ?Sized>(
    victim: &mut C,
    clean: &[Tensor],
    adversarial: &[Tensor],
    labels: &[usize],
) -> Result<TransferReport> {
    if clean.is_empty() || clean.len() != adversarial.len() || clean.len() != labels.len() {
        return Err(AttackError::BadInput(format!(
            "mismatched transfer sets: {} clean, {} adversarial, {} labels",
            clean.len(),
            adversarial.len(),
            labels.len()
        )));
    }
    // Both prediction sets ride the victim's batched path (a single
    // sharded forward pass for network-backed victims).
    let clean_preds = victim.classify_batch(clean)?;
    let adv_preds = victim.classify_batch(adversarial)?;
    let mut dissims = Vec::with_capacity(clean.len());
    let mut correct = 0usize;
    for ((c, a), (&cp, &label)) in clean
        .iter()
        .zip(adversarial.iter())
        .zip(clean_preds.iter().zip(labels.iter()))
    {
        if cp == label {
            correct += 1;
        }
        dissims.push(l2_dissimilarity(c, a)?);
    }
    Ok(TransferReport {
        clean_accuracy: correct as f32 / clean.len() as f32,
        attack_success_rate: untargeted_success_rate(&clean_preds, &adv_preds)?,
        l2_dissimilarity: dissims.iter().sum::<f32>() / dissims.len() as f32,
        count: clean.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A classifier stub with scripted outputs.
    struct Scripted {
        outputs: Vec<usize>,
        cursor: usize,
    }

    impl Classifier for Scripted {
        fn classify(&mut self, _image: &Tensor) -> Result<usize> {
            let out = self.outputs[self.cursor % self.outputs.len()];
            self.cursor += 1;
            Ok(out)
        }
    }

    fn images(n: usize, value: f32) -> Vec<Tensor> {
        (0..n).map(|_| Tensor::full(&[3, 4, 4], value)).collect()
    }

    #[test]
    fn report_reflects_scripted_predictions() {
        // The harness classifies the whole clean set, then the whole
        // adversarial set: clean=0 (correct), adv=1 (changed) for both
        // images.
        let mut victim = Scripted {
            outputs: vec![0, 0, 1, 1],
            cursor: 0,
        };
        let clean = images(2, 0.5);
        let adv = images(2, 0.6);
        let report = evaluate_transfer(&mut victim, &clean, &adv, &[0, 0]).unwrap();
        assert_eq!(report.clean_accuracy, 1.0);
        assert_eq!(report.attack_success_rate, 1.0);
        assert!(report.l2_dissimilarity > 0.0);
        assert_eq!(report.count, 2);
    }

    #[test]
    fn unchanged_predictions_mean_no_success() {
        let mut victim = Scripted {
            outputs: vec![3],
            cursor: 0,
        };
        let clean = images(3, 0.5);
        let adv = images(3, 0.55);
        let report = evaluate_transfer(&mut victim, &clean, &adv, &[3, 3, 0]).unwrap();
        assert_eq!(report.attack_success_rate, 0.0);
        assert!((report.clean_accuracy - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn input_validation() {
        let mut victim = Scripted {
            outputs: vec![0],
            cursor: 0,
        };
        let clean = images(2, 0.5);
        let adv = images(1, 0.6);
        assert!(evaluate_transfer(&mut victim, &clean, &adv, &[0, 0]).is_err());
        assert!(evaluate_transfer(&mut victim, &[], &[], &[]).is_err());
    }

    #[test]
    fn sequential_implements_classifier() {
        use blurnet_nn::LisaCnn;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = LisaCnn::new(18)
            .input_size(16)
            .conv1_filters(4)
            .build(&mut rng)
            .unwrap();
        let image = Tensor::full(&[3, 16, 16], 0.5);
        let pred = net.classify(&image).unwrap();
        assert!(pred < 18);
        // The batched override agrees with per-image classification.
        let images = [image, Tensor::full(&[3, 16, 16], 0.1)];
        let batched = net.classify_batch(&images).unwrap();
        let singles: Vec<usize> = images.iter().map(|i| net.classify(i).unwrap()).collect();
        assert_eq!(batched, singles);
        assert!(net.classify_batch(&[]).unwrap().is_empty());
    }
}
