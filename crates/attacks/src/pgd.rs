//! Projected gradient descent (PGD) under an L∞ pixel budget.
//!
//! The supplementary evaluation of the paper (Table IV) checks every
//! defense against the standard ε-bounded adversary of Madry et al.:
//! ε = 8/255, step size 0.01, 10 steps. All BlurNet defenses break under
//! this threat model because the perturbation is no longer constrained to
//! a localized sticker.

use blurnet_nn::{softmax_cross_entropy, Sequential};
use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::metrics::{l2_dissimilarity, untargeted_success_rate, AttackEvaluation};
use crate::{AttackError, Result};

/// PGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PgdConfig {
    /// L∞ budget ε.
    pub epsilon: f32,
    /// Step size α.
    pub step_size: f32,
    /// Number of gradient steps.
    pub steps: usize,
    /// Whether to start from a random point inside the ε-ball.
    pub random_start: bool,
}

impl Default for PgdConfig {
    fn default() -> Self {
        PgdConfig {
            epsilon: 8.0 / 255.0,
            step_size: 0.01,
            steps: 10,
            random_start: false,
        }
    }
}

/// The PGD attack engine.
#[derive(Debug, Clone)]
pub struct PgdAttack {
    config: PgdConfig,
}

impl PgdAttack {
    /// Creates a PGD attack.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] for non-positive ε, step size or
    /// step count.
    pub fn new(config: PgdConfig) -> Result<Self> {
        if config.epsilon <= 0.0 || config.step_size <= 0.0 || config.steps == 0 {
            return Err(AttackError::BadConfig(format!(
                "PGD needs positive epsilon/step size/steps, got {config:?}"
            )));
        }
        Ok(PgdAttack { config })
    }

    /// The attack configuration.
    pub fn config(&self) -> &PgdConfig {
        &self.config
    }

    /// Generates an untargeted adversarial example for one `[C, H, W]`
    /// image with true label `label`.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed inputs.
    pub fn generate(&self, net: &mut Sequential, image: &Tensor, label: usize) -> Result<Tensor> {
        if image.shape().rank() != 3 {
            return Err(AttackError::BadInput(format!(
                "expected a [C, H, W] image, got {}",
                image.shape()
            )));
        }
        let mut x_adv = if self.config.random_start {
            // Deterministic pseudo-random start derived from the image so the
            // attack itself stays reproducible without an external RNG.
            image
                .map(|v| {
                    let jitter = ((v * 12_9898.0).sin() * 43_758.547).fract();
                    (v + (jitter - 0.5) * 2.0 * self.config.epsilon).clamp(0.0, 1.0)
                })
                .clamp(0.0, 1.0)
        } else {
            image.clone()
        };
        for _ in 0..self.config.steps {
            let batch = Tensor::stack(&[x_adv.clone()])?;
            let logits = net.forward(&batch, false)?;
            let (_, d_logits) = softmax_cross_entropy(&logits, &[label])?;
            let grad = net.backward(&d_logits)?.batch_item(0)?;
            // Ascend the loss: x += α · sign(∇x J).
            x_adv = x_adv.zip_map(&grad, |x, g| x + self.config.step_size * g.signum())?;
            // Project back into the ε-ball and the valid pixel range.
            x_adv = x_adv.zip_map(image, |x, orig| {
                x.clamp(orig - self.config.epsilon, orig + self.config.epsilon)
            })?;
            x_adv = x_adv.clamp(0.0, 1.0);
        }
        Ok(x_adv)
    }

    /// Attacks a set of images and reports the untargeted success rate (the
    /// fraction of predictions the attack changed) and dissimilarity.
    ///
    /// Generation is per image (each needs its own gradient loop), but both
    /// prediction sets — clean and adversarial — are judged with one
    /// batch-parallel forward pass each.
    ///
    /// # Errors
    ///
    /// Returns an error if `images` and `labels` are empty or mismatched.
    pub fn evaluate(
        &self,
        net: &mut Sequential,
        images: &[Tensor],
        labels: &[usize],
    ) -> Result<AttackEvaluation> {
        if images.is_empty() || images.len() != labels.len() {
            return Err(AttackError::BadInput(format!(
                "mismatched evaluation set: {} images, {} labels",
                images.len(),
                labels.len()
            )));
        }
        let clean_preds = net.predict_batch(&Tensor::stack(images)?)?;
        let mut adversarial = Vec::with_capacity(images.len());
        let mut dissims = Vec::with_capacity(images.len());
        for (image, &label) in images.iter().zip(labels.iter()) {
            let adv = self.generate(net, image, label)?;
            dissims.push(l2_dissimilarity(image, &adv)?);
            adversarial.push(adv);
        }
        let adv_preds = net.predict_batch(&Tensor::stack(&adversarial)?)?;
        Ok(AttackEvaluation {
            success_rate: untargeted_success_rate(&clean_preds, &adv_preds)?,
            l2_dissimilarity: dissims.iter().sum::<f32>() / dissims.len() as f32,
            count: images.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_data::{DatasetConfig, SignDataset};
    use blurnet_nn::LisaCnn;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_setup() -> (Sequential, SignDataset) {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = LisaCnn::new(18)
            .input_size(16)
            .conv1_filters(4)
            .build(&mut rng)
            .unwrap();
        let mut cfg = DatasetConfig::tiny();
        cfg.image_size = 16;
        (net, SignDataset::generate(&cfg, 3).unwrap())
    }

    #[test]
    fn config_validation() {
        assert!(PgdAttack::new(PgdConfig {
            epsilon: 0.0,
            ..PgdConfig::default()
        })
        .is_err());
        assert!(PgdAttack::new(PgdConfig {
            steps: 0,
            ..PgdConfig::default()
        })
        .is_err());
        assert!(PgdAttack::new(PgdConfig::default()).is_ok());
    }

    #[test]
    fn perturbation_respects_epsilon_ball() {
        let (mut net, data) = tiny_setup();
        let attack = PgdAttack::new(PgdConfig::default()).unwrap();
        let image = &data.stop_eval_images()[0];
        let adv = attack.generate(&mut net, image, 14).unwrap();
        let max_diff = adv.sub(image).unwrap().linf_norm();
        assert!(
            max_diff <= 8.0 / 255.0 + 1e-5,
            "L-inf violation: {max_diff}"
        );
        assert!(adv.min().unwrap() >= 0.0 && adv.max().unwrap() <= 1.0);
    }

    #[test]
    fn random_start_stays_in_ball() {
        let (mut net, data) = tiny_setup();
        let attack = PgdAttack::new(PgdConfig {
            random_start: true,
            ..PgdConfig::default()
        })
        .unwrap();
        let image = &data.stop_eval_images()[1];
        let adv = attack.generate(&mut net, image, 14).unwrap();
        assert!(adv.sub(image).unwrap().linf_norm() <= 8.0 / 255.0 + 1e-5);
    }

    #[test]
    fn pgd_increases_true_label_loss() {
        let (mut net, data) = tiny_setup();
        let attack = PgdAttack::new(PgdConfig {
            epsilon: 0.1,
            step_size: 0.02,
            steps: 10,
            random_start: false,
        })
        .unwrap();
        let image = &data.stop_eval_images()[0];
        let label = 14usize;
        let clean_logits = net
            .forward(&Tensor::stack(std::slice::from_ref(image)).unwrap(), false)
            .unwrap();
        let (clean_loss, _) = softmax_cross_entropy(&clean_logits, &[label]).unwrap();
        let adv = attack.generate(&mut net, image, label).unwrap();
        let adv_logits = net.forward(&Tensor::stack(&[adv]).unwrap(), false).unwrap();
        let (adv_loss, _) = softmax_cross_entropy(&adv_logits, &[label]).unwrap();
        assert!(
            adv_loss >= clean_loss,
            "{adv_loss} should exceed {clean_loss}"
        );
    }

    #[test]
    fn evaluate_validates_inputs() {
        let (mut net, data) = tiny_setup();
        let attack = PgdAttack::new(PgdConfig::default()).unwrap();
        let images: Vec<Tensor> = data.stop_eval_images()[..2].to_vec();
        let eval = attack.evaluate(&mut net, &images, &[14, 14]).unwrap();
        assert!((0.0..=1.0).contains(&eval.success_rate));
        assert!(attack.evaluate(&mut net, &images, &[14]).is_err());
        assert!(attack.evaluate(&mut net, &[], &[]).is_err());
    }

    #[test]
    fn bad_image_rank_rejected() {
        let (mut net, _) = tiny_setup();
        let attack = PgdAttack::new(PgdConfig::default()).unwrap();
        assert!(attack
            .generate(&mut net, &Tensor::zeros(&[16, 16]), 0)
            .is_err());
    }
}
