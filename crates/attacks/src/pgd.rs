//! Projected gradient descent (PGD) under an L∞ pixel budget.
//!
//! The supplementary evaluation of the paper (Table IV) checks every
//! defense against the standard ε-bounded adversary of Madry et al.:
//! ε = 8/255, step size 0.01, 10 steps. All BlurNet defenses break under
//! this threat model because the perturbation is no longer constrained to
//! a localized sticker.
//!
//! Generation is **batched**: all `steps` iterations run on the whole
//! `[N, C, H, W]` batch at once through the immutable
//! [`blurnet_nn::BatchEngine`] gradient path (one recorded forward + one
//! tape-driven backward per step, sharded over rayon workers), and the
//! ascend/project/clamp update happens in place on the batch buffer — no
//! per-step tensor clones. Results are identical to the historical
//! per-image gradient loop and bit-identical at every thread count.

use blurnet_nn::{BatchEngine, Sequential};
use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::metrics::{batch_l2_dissimilarity, untargeted_success_from_logits, AttackEvaluation};
use crate::{AttackError, Result};

/// PGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PgdConfig {
    /// L∞ budget ε.
    pub epsilon: f32,
    /// Step size α.
    pub step_size: f32,
    /// Number of gradient steps.
    pub steps: usize,
    /// Whether to start from a random point inside the ε-ball.
    pub random_start: bool,
}

impl Default for PgdConfig {
    fn default() -> Self {
        PgdConfig {
            epsilon: 8.0 / 255.0,
            step_size: 0.01,
            steps: 10,
            random_start: false,
        }
    }
}

/// The PGD attack engine.
#[derive(Debug, Clone)]
pub struct PgdAttack {
    config: PgdConfig,
}

impl PgdAttack {
    /// Creates a PGD attack.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] for non-positive ε, step size or
    /// step count.
    pub fn new(config: PgdConfig) -> Result<Self> {
        if config.epsilon <= 0.0 || config.step_size <= 0.0 || config.steps == 0 {
            return Err(AttackError::BadConfig(format!(
                "PGD needs positive epsilon/step size/steps, got {config:?}"
            )));
        }
        Ok(PgdAttack { config })
    }

    /// The attack configuration.
    pub fn config(&self) -> &PgdConfig {
        &self.config
    }

    /// Generates untargeted adversarial examples for a whole `[N, C, H, W]`
    /// batch at once: every PGD step is one batched recorded forward + one
    /// tape-driven backward through `engine`, and the
    /// ascend/project/clamp update mutates the batch buffer in place.
    ///
    /// Identical to running the per-image gradient loop on each row (the
    /// per-shard cross-entropy normalization matches the per-image loss,
    /// and `sign` is scale-invariant), and bit-identical at every rayon
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-`[N, C, H, W]` batch or a label count
    /// that does not match the batch size.
    pub fn perturb_with_engine(
        &self,
        engine: &BatchEngine<'_>,
        images: &Tensor,
        labels: &[usize],
    ) -> Result<Tensor> {
        if images.shape().rank() != 4 || images.dims()[0] == 0 {
            return Err(AttackError::BadInput(format!(
                "expected a non-empty [N, C, H, W] batch, got {}",
                images.shape()
            )));
        }
        if labels.len() != images.dims()[0] {
            return Err(AttackError::BadInput(format!(
                "{} labels for a batch of {}",
                labels.len(),
                images.dims()[0]
            )));
        }
        let mut x_adv = if self.config.random_start {
            // Deterministic pseudo-random start derived from the image so the
            // attack itself stays reproducible without an external RNG. The
            // hash must land in [0, 1) — a plain `fract()` keeps the sign of
            // its argument and would bias the jitter below the pixel (and up
            // to 3ε outside the ball) wherever the sine is negative.
            images.map(|v| {
                let jitter = ((v * 12_9898.0).sin() * 43_758.547).rem_euclid(1.0);
                (v + (jitter - 0.5) * 2.0 * self.config.epsilon).clamp(0.0, 1.0)
            })
        } else {
            images.clone()
        };
        let (alpha, eps) = (self.config.step_size, self.config.epsilon);
        for _ in 0..self.config.steps {
            let step = engine.forward_backward_batch(&x_adv, labels)?;
            // Ascend the loss, project back into the ε-ball around the
            // clean batch and clamp to the pixel range — one in-place pass
            // over the batch buffer.
            let grad = step.input_grad.data();
            let clean = images.data();
            for ((x, &g), &orig) in x_adv.data_mut().iter_mut().zip(grad).zip(clean) {
                let stepped = *x + alpha * g.signum();
                *x = stepped.clamp(orig - eps, orig + eps).clamp(0.0, 1.0);
            }
        }
        Ok(x_adv)
    }

    /// [`PgdAttack::perturb_with_engine`] over a borrowed network: builds
    /// the engine (packing each layer's weights once for all steps) and
    /// runs the batched attack.
    ///
    /// # Errors
    ///
    /// Propagates [`PgdAttack::perturb_with_engine`] errors.
    pub fn perturb(&self, net: &Sequential, images: &Tensor, labels: &[usize]) -> Result<Tensor> {
        let engine = net.batch_engine()?;
        self.perturb_with_engine(&engine, images, labels)
    }

    /// Generates an untargeted adversarial example for one `[C, H, W]`
    /// image with true label `label` (a batch-of-one
    /// [`PgdAttack::perturb`]; the network stays immutable).
    ///
    /// # Errors
    ///
    /// Returns an error for malformed inputs.
    pub fn generate(&self, net: &Sequential, image: &Tensor, label: usize) -> Result<Tensor> {
        if image.shape().rank() != 3 {
            return Err(AttackError::BadInput(format!(
                "expected a [C, H, W] image, got {}",
                image.shape()
            )));
        }
        let batch = Tensor::stack(std::slice::from_ref(image))?;
        Ok(self.perturb(net, &batch, &[label])?.batch_item(0)?)
    }

    /// Attacks a set of images and reports the untargeted success rate (the
    /// fraction of predictions the attack changed) and dissimilarity.
    ///
    /// One engine serves the whole evaluation: generation runs all steps on
    /// the full batch, and both prediction sets — clean and adversarial —
    /// are judged with one batch-parallel forward pass each, with the
    /// metrics computed straight from the batched logits and image buffers.
    ///
    /// # Errors
    ///
    /// Returns an error if `images` and `labels` are empty or mismatched.
    pub fn evaluate(
        &self,
        net: &Sequential,
        images: &[Tensor],
        labels: &[usize],
    ) -> Result<AttackEvaluation> {
        if images.is_empty() || images.len() != labels.len() {
            return Err(AttackError::BadInput(format!(
                "mismatched evaluation set: {} images, {} labels",
                images.len(),
                labels.len()
            )));
        }
        let clean = Tensor::stack(images)?;
        let engine = net.batch_engine()?;
        let clean_logits = engine.forward(&clean)?;
        let adversarial = self.perturb_with_engine(&engine, &clean, labels)?;
        let adv_logits = engine.forward(&adversarial)?;
        let dissims = batch_l2_dissimilarity(&clean, &adversarial)?;
        Ok(AttackEvaluation {
            success_rate: untargeted_success_from_logits(&clean_logits, &adv_logits)?,
            l2_dissimilarity: dissims.iter().sum::<f32>() / dissims.len() as f32,
            count: images.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_data::{DatasetConfig, SignDataset};
    use blurnet_nn::{softmax_cross_entropy, LisaCnn};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_setup() -> (Sequential, SignDataset) {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = LisaCnn::new(18)
            .input_size(16)
            .conv1_filters(4)
            .build(&mut rng)
            .unwrap();
        let mut cfg = DatasetConfig::tiny();
        cfg.image_size = 16;
        (net, SignDataset::generate(&cfg, 3).unwrap())
    }

    #[test]
    fn config_validation() {
        assert!(PgdAttack::new(PgdConfig {
            epsilon: 0.0,
            ..PgdConfig::default()
        })
        .is_err());
        assert!(PgdAttack::new(PgdConfig {
            steps: 0,
            ..PgdConfig::default()
        })
        .is_err());
        assert!(PgdAttack::new(PgdConfig::default()).is_ok());
    }

    #[test]
    fn perturbation_respects_epsilon_ball() {
        let (net, data) = tiny_setup();
        let attack = PgdAttack::new(PgdConfig::default()).unwrap();
        let image = &data.stop_eval_images()[0];
        let adv = attack.generate(&net, image, 14).unwrap();
        let max_diff = adv.sub(image).unwrap().linf_norm();
        assert!(
            max_diff <= 8.0 / 255.0 + 1e-5,
            "L-inf violation: {max_diff}"
        );
        assert!(adv.min().unwrap() >= 0.0 && adv.max().unwrap() <= 1.0);
    }

    #[test]
    fn random_start_stays_in_ball() {
        let (net, data) = tiny_setup();
        let attack = PgdAttack::new(PgdConfig {
            random_start: true,
            ..PgdConfig::default()
        })
        .unwrap();
        let image = &data.stop_eval_images()[1];
        let adv = attack.generate(&net, image, 14).unwrap();
        assert!(adv.sub(image).unwrap().linf_norm() <= 8.0 / 255.0 + 1e-5);
    }

    #[test]
    fn pgd_increases_true_label_loss() {
        let (mut net, data) = tiny_setup();
        let attack = PgdAttack::new(PgdConfig {
            epsilon: 0.1,
            step_size: 0.02,
            steps: 10,
            random_start: false,
        })
        .unwrap();
        let image = &data.stop_eval_images()[0];
        let label = 14usize;
        let clean_logits = net
            .forward(&Tensor::stack(std::slice::from_ref(image)).unwrap(), false)
            .unwrap();
        let (clean_loss, _) = softmax_cross_entropy(&clean_logits, &[label]).unwrap();
        let adv = attack.generate(&net, image, label).unwrap();
        let adv_logits = net.forward(&Tensor::stack(&[adv]).unwrap(), false).unwrap();
        let (adv_loss, _) = softmax_cross_entropy(&adv_logits, &[label]).unwrap();
        assert!(
            adv_loss >= clean_loss,
            "{adv_loss} should exceed {clean_loss}"
        );
    }

    #[test]
    fn batched_perturb_matches_per_image_generate() {
        let (net, data) = tiny_setup();
        let attack = PgdAttack::new(PgdConfig::default()).unwrap();
        let images: Vec<Tensor> = data.stop_eval_images()[..3].to_vec();
        let labels = [14usize, 14, 14];
        let batch = Tensor::stack(&images).unwrap();
        let batched = attack.perturb(&net, &batch, &labels).unwrap();
        for (i, image) in images.iter().enumerate() {
            let single = attack.generate(&net, image, labels[i]).unwrap();
            assert_eq!(
                batched.batch_item(i).unwrap(),
                single,
                "image {i} diverged from the batch-of-one path"
            );
        }
        // Bit-identical across thread counts.
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let again = pool.install(|| attack.perturb(&net, &batch, &labels).unwrap());
            assert_eq!(again, batched, "threads {threads}");
        }
        // Label/shape validation.
        assert!(attack.perturb(&net, &batch, &labels[..2]).is_err());
        assert!(attack
            .perturb(&net, &Tensor::zeros(&[3, 16, 16]), &labels)
            .is_err());
    }

    #[test]
    fn evaluate_validates_inputs() {
        let (net, data) = tiny_setup();
        let attack = PgdAttack::new(PgdConfig::default()).unwrap();
        let images: Vec<Tensor> = data.stop_eval_images()[..2].to_vec();
        let eval = attack.evaluate(&net, &images, &[14, 14]).unwrap();
        assert!((0.0..=1.0).contains(&eval.success_rate));
        assert!(attack.evaluate(&net, &images, &[14]).is_err());
        assert!(attack.evaluate(&net, &[], &[]).is_err());
    }

    #[test]
    fn bad_image_rank_rejected() {
        let (net, _) = tiny_setup();
        let attack = PgdAttack::new(PgdConfig::default()).unwrap();
        assert!(attack.generate(&net, &Tensor::zeros(&[16, 16]), 0).is_err());
    }
}
