//! Adaptive attack objectives (Section V of the paper).
//!
//! Following Athalye et al. and Tramèr et al., every defense is evaluated
//! against an attacker that *knows the defense*:
//!
//! * the depthwise-filter defenses are attacked with perturbations
//!   restricted to low DCT frequencies (Eq. 8, Figure 3), and
//! * the regularized defenses (TV, `Tik_hf`, `Tik_pseudo`) are attacked by
//!   adding the defender's own feature-map penalty to the attacker's loss
//!   (Eq. 9–11).
//!
//! Both are expressed as an [`AdaptiveObjective`] plugged into the shared
//! [`crate::Rp2Attack`] optimizer loop.

use blurnet_signal::OperatorPenalty;
use serde::{Deserialize, Serialize};

use crate::rp2::{Rp2Attack, Rp2Config};
use crate::Result;

/// The feature-map penalty an adaptive attacker adds to its loss.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FeaturePenaltyKind {
    /// Anisotropic total variation of the feature maps (Eq. 9).
    TotalVariation,
    /// A quadratic operator penalty `‖L·F‖²` — `Tik_hf` or `Tik_pseudo`
    /// depending on the wrapped operator (Eq. 10–11).
    Operator(OperatorPenalty),
}

/// Modification of the RP2 objective used by adaptive attacks.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub enum AdaptiveObjective {
    /// The plain RP2 objective of Eq. 1 (white-box and black-box tables).
    #[default]
    Standard,
    /// Restrict the perturbation to the lowest `dim × dim` DCT
    /// coefficients, `IDCT(M_dim · DCT(M_x · δ))` (Eq. 8).
    LowFrequencyDct {
        /// Side length of the retained low-frequency block.
        dim: usize,
    },
    /// Add a feature-map penalty on a chosen activation to the attacker's
    /// loss (Eq. 9–11).
    FeaturePenalty {
        /// Index of the activation (layer output) the penalty applies to.
        layer_index: usize,
        /// Which penalty to add.
        kind: FeaturePenaltyKind,
        /// Weight of the penalty in the attacker's loss. The paper found an
        /// unweighted term (1.0) to be the strongest attacker.
        weight: f32,
    },
}

/// Builds the low-frequency DCT adaptive attack of Eq. 8 from a base RP2
/// configuration.
///
/// # Errors
///
/// Propagates [`Rp2Attack::new`] validation errors.
pub fn low_frequency_attack(base: Rp2Config, dim: usize) -> Result<Rp2Attack> {
    Rp2Attack::new(Rp2Config {
        objective: AdaptiveObjective::LowFrequencyDct { dim },
        ..base
    })
}

/// Builds the TV-aware adaptive attack of Eq. 9.
///
/// `feature_layer` is the index of the first-convolution output in the
/// victim network.
///
/// # Errors
///
/// Propagates [`Rp2Attack::new`] validation errors.
pub fn tv_aware_attack(base: Rp2Config, feature_layer: usize) -> Result<Rp2Attack> {
    Rp2Attack::new(Rp2Config {
        objective: AdaptiveObjective::FeaturePenalty {
            layer_index: feature_layer,
            kind: FeaturePenaltyKind::TotalVariation,
            weight: 1.0,
        },
        ..base
    })
}

/// Builds the Tikhonov-aware adaptive attack of Eq. 10 or 11, depending on
/// the operator wrapped by `penalty`.
///
/// # Errors
///
/// Propagates [`Rp2Attack::new`] validation errors.
pub fn tikhonov_aware_attack(
    base: Rp2Config,
    feature_layer: usize,
    penalty: OperatorPenalty,
) -> Result<Rp2Attack> {
    Rp2Attack::new(Rp2Config {
        objective: AdaptiveObjective::FeaturePenalty {
            layer_index: feature_layer,
            kind: FeaturePenaltyKind::Operator(penalty),
            weight: 1.0,
        },
        ..base
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_data::{DatasetConfig, SignDataset};
    use blurnet_nn::{LisaCnn, Sequential};
    use blurnet_signal::low_frequency_project;
    use blurnet_tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_net() -> (Sequential, usize) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let builder = LisaCnn::new(18).input_size(16).conv1_filters(4);
        let net = builder.build(&mut rng).unwrap();
        (net, builder.config().feature_layer_index())
    }

    fn tiny_image() -> Tensor {
        let mut cfg = DatasetConfig::tiny();
        cfg.image_size = 16;
        SignDataset::generate(&cfg, 2).unwrap().stop_eval_images()[0].clone()
    }

    fn fast_config() -> Rp2Config {
        Rp2Config {
            iterations: 6,
            num_transforms: 1,
            ..Rp2Config::default()
        }
    }

    #[test]
    fn low_frequency_attack_produces_low_frequency_perturbations() {
        let (net, _) = tiny_net();
        let image = tiny_image();
        let attack = low_frequency_attack(fast_config(), 4).unwrap();
        let result = attack.generate(&net, &image, 2).unwrap();
        // Every channel of the perturbation must be (numerically) invariant
        // under the same low-frequency projection.
        for ch in 0..3 {
            let map = result.perturbation.channel(ch).unwrap();
            if map.l2_norm() < 1e-6 {
                continue;
            }
            let projected = low_frequency_project(&map, 4).unwrap();
            let residual = map.sub(&projected).unwrap().l2_norm() / map.l2_norm();
            // The clamp to [0,1] can slightly break exact invariance.
            assert!(residual < 0.2, "channel {ch} residual {residual}");
        }
    }

    #[test]
    fn tv_aware_attack_runs_and_stays_masked() {
        let (net, feature_layer) = tiny_net();
        let image = tiny_image();
        let attack = tv_aware_attack(fast_config(), feature_layer).unwrap();
        let result = attack.generate(&net, &image, 5).unwrap();
        assert_eq!(result.adversarial.dims(), image.dims());
        assert!(result.loss_trace.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn tikhonov_aware_attack_runs() {
        let (net, feature_layer) = tiny_net();
        let image = tiny_image();
        // Feature maps are 8x8 for a 16x16 input with stride-2 conv1.
        let penalty = OperatorPenalty::high_frequency(8, 3).unwrap();
        let attack = tikhonov_aware_attack(fast_config(), feature_layer, penalty).unwrap();
        let result = attack.generate(&net, &image, 7).unwrap();
        assert!(result.loss_trace.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn bad_feature_layer_index_is_reported() {
        let (net, _) = tiny_net();
        let image = tiny_image();
        let attack = tv_aware_attack(fast_config(), 99).unwrap();
        assert!(attack.generate(&net, &image, 1).is_err());
    }

    #[test]
    fn default_objective_is_standard() {
        assert!(matches!(
            AdaptiveObjective::default(),
            AdaptiveObjective::Standard
        ));
    }
}
