//! Adversarial attacks and evaluation metrics for the BlurNet reproduction.
//!
//! Implemented threat models:
//!
//! * **RP2** ([`rp2`]) — the Robust Physical Perturbations attack of
//!   Eykholt et al.: a mask-constrained, targeted perturbation optimized
//!   with Adam over a transform ensemble, with an L2 mask-norm term and a
//!   non-printability score (Eq. 1 of the paper).
//! * **Adaptive RP2 variants** ([`adaptive`]) — the low-frequency DCT
//!   attack on depthwise-filter defenses (Eq. 8) and the regularizer-aware
//!   attacks on the TV / Tikhonov defenses (Eq. 9–11).
//! * **PGD** ([`pgd`]) — the ε-bounded pixel adversary of the supplementary
//!   evaluation (Table IV).
//! * **Black-box transfer** ([`transfer`]) — generate on a surrogate,
//!   evaluate on a defended victim (Table I).
//!
//! [`metrics`] provides the attack success rate and L2 dissimilarity
//! measures every table reports.

#![warn(missing_docs)]

pub mod adaptive;
mod error;
pub mod metrics;
pub mod persist;
pub mod pgd;
pub mod rp2;
pub mod transfer;

pub use adaptive::{AdaptiveObjective, FeaturePenaltyKind};
pub use error::AttackError;
pub use metrics::{
    batch_l2_dissimilarity, l2_dissimilarity, mean_l2_dissimilarity, targeted_success_from_logits,
    targeted_success_rate, untargeted_success_from_logits, untargeted_success_rate,
    AttackEvaluation,
};
pub use pgd::{PgdAttack, PgdConfig};
pub use rp2::{Rp2Attack, Rp2Config, Rp2Result};
pub use transfer::{evaluate_transfer, Classifier, TransferReport, TransferSet};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, AttackError>;
