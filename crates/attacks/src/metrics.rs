//! Attack evaluation metrics: success rates and dissimilarity distances.

use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{AttackError, Result};

/// Summary of one attack evaluation over a set of images.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackEvaluation {
    /// Fraction of images for which the attack achieved its goal.
    pub success_rate: f32,
    /// Mean relative L2 dissimilarity `‖x − x_adv‖₂ / ‖x‖₂`.
    pub l2_dissimilarity: f32,
    /// Number of images evaluated.
    pub count: usize,
}

impl AttackEvaluation {
    /// Combines per-image success flags and dissimilarities into a summary.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadInput`] if the slices are empty or of
    /// different lengths.
    pub fn from_parts(successes: &[bool], dissimilarities: &[f32]) -> Result<Self> {
        if successes.is_empty() || successes.len() != dissimilarities.len() {
            return Err(AttackError::BadInput(format!(
                "inconsistent evaluation sizes: {} successes, {} dissimilarities",
                successes.len(),
                dissimilarities.len()
            )));
        }
        let success_rate = successes.iter().filter(|&&s| s).count() as f32 / successes.len() as f32;
        let l2 = dissimilarities.iter().sum::<f32>() / dissimilarities.len() as f32;
        Ok(AttackEvaluation {
            success_rate,
            l2_dissimilarity: l2,
            count: successes.len(),
        })
    }
}

/// Relative L2 dissimilarity `‖x − x_adv‖₂ / ‖x‖₂` between one clean image
/// and its adversarial counterpart (Section II-A of the paper).
///
/// # Errors
///
/// Returns [`AttackError::BadInput`] if the shapes differ or the clean image
/// has zero norm.
pub fn l2_dissimilarity(clean: &Tensor, adversarial: &Tensor) -> Result<f32> {
    let diff = clean
        .sub(adversarial)
        .map_err(|e| AttackError::BadInput(format!("shape mismatch: {e}")))?;
    let denom = clean.l2_norm();
    if denom == 0.0 {
        return Err(AttackError::BadInput(
            "clean image has zero norm; dissimilarity undefined".into(),
        ));
    }
    Ok(diff.l2_norm() / denom)
}

/// Mean [`l2_dissimilarity`] over paired sets of images.
///
/// # Errors
///
/// Returns [`AttackError::BadInput`] for empty or mismatched sets.
pub fn mean_l2_dissimilarity(clean: &[Tensor], adversarial: &[Tensor]) -> Result<f32> {
    if clean.is_empty() || clean.len() != adversarial.len() {
        return Err(AttackError::BadInput(format!(
            "mismatched sets: {} clean vs {} adversarial",
            clean.len(),
            adversarial.len()
        )));
    }
    let mut acc = 0.0;
    for (c, a) in clean.iter().zip(adversarial.iter()) {
        acc += l2_dissimilarity(c, a)?;
    }
    Ok(acc / clean.len() as f32)
}

/// Per-image relative L2 dissimilarities between two index-aligned
/// `[N, ...]` batches, computed directly on row slices of the batched
/// tensors — no per-image tensor subtractions or allocations.
///
/// Each entry equals [`l2_dissimilarity`] on the corresponding pair of
/// batch items.
///
/// # Errors
///
/// Returns [`AttackError::BadInput`] for mismatched shapes, an empty
/// batch, or a zero-norm clean image.
pub fn batch_l2_dissimilarity(clean: &Tensor, adversarial: &Tensor) -> Result<Vec<f32>> {
    if clean.dims() != adversarial.dims() || clean.shape().rank() < 2 || clean.dims()[0] == 0 {
        return Err(AttackError::BadInput(format!(
            "mismatched or empty batches: {} vs {}",
            clean.shape(),
            adversarial.shape()
        )));
    }
    let n = clean.dims()[0];
    let stride = clean.len() / n;
    let c = clean.data();
    let a = adversarial.data();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let (mut diff_sq, mut clean_sq) = (0.0f32, 0.0f32);
        for (x, y) in c[i * stride..(i + 1) * stride]
            .iter()
            .zip(a[i * stride..(i + 1) * stride].iter())
        {
            let d = x - y;
            diff_sq += d * d;
            clean_sq += x * x;
        }
        if clean_sq == 0.0 {
            return Err(AttackError::BadInput(
                "clean image has zero norm; dissimilarity undefined".into(),
            ));
        }
        out.push(diff_sq.sqrt() / clean_sq.sqrt());
    }
    Ok(out)
}

/// Argmax of one logits row, first maximum winning ties — the same rule as
/// `blurnet_nn::loss::predictions`, applied to a slice.
fn argmax_row(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (j, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = j;
        }
    }
    best
}

/// Untargeted success rate straight from two batched `[N, classes]` logits
/// tensors: argmax per row slice, then the fraction of rows where the two
/// predictions differ. Avoids materializing prediction vectors between the
/// batched forward pass and the metric.
///
/// # Errors
///
/// Returns [`AttackError::BadInput`] for empty or mismatched logit sets.
pub fn untargeted_success_from_logits(clean_logits: &Tensor, adv_logits: &Tensor) -> Result<f32> {
    if clean_logits.dims() != adv_logits.dims()
        || clean_logits.shape().rank() != 2
        || clean_logits.dims()[0] == 0
    {
        return Err(AttackError::BadInput(format!(
            "mismatched or empty logit sets: {} vs {}",
            clean_logits.shape(),
            adv_logits.shape()
        )));
    }
    let (n, classes) = (clean_logits.dims()[0], clean_logits.dims()[1]);
    let c = clean_logits.data();
    let a = adv_logits.data();
    let changed = (0..n)
        .filter(|&i| {
            argmax_row(&c[i * classes..(i + 1) * classes])
                != argmax_row(&a[i * classes..(i + 1) * classes])
        })
        .count();
    Ok(changed as f32 / n as f32)
}

/// Targeted success rate straight from a batched `[N, classes]` logits
/// tensor: the fraction of rows whose argmax equals `target`.
///
/// # Errors
///
/// Returns [`AttackError::BadInput`] for an empty logit set.
pub fn targeted_success_from_logits(adv_logits: &Tensor, target: usize) -> Result<f32> {
    if adv_logits.shape().rank() != 2 || adv_logits.dims()[0] == 0 {
        return Err(AttackError::BadInput(format!(
            "expected non-empty [N, classes] logits, got {}",
            adv_logits.shape()
        )));
    }
    let (n, classes) = (adv_logits.dims()[0], adv_logits.dims()[1]);
    let a = adv_logits.data();
    let hits = (0..n)
        .filter(|&i| argmax_row(&a[i * classes..(i + 1) * classes]) == target)
        .count();
    Ok(hits as f32 / n as f32)
}

/// Untargeted attack success rate: the fraction of predictions that the
/// attack changed, `1/N Σ 1[F(x) ≠ F(x_adv)]`.
///
/// # Errors
///
/// Returns [`AttackError::BadInput`] for empty or mismatched sets.
pub fn untargeted_success_rate(clean_preds: &[usize], adv_preds: &[usize]) -> Result<f32> {
    if clean_preds.is_empty() || clean_preds.len() != adv_preds.len() {
        return Err(AttackError::BadInput(format!(
            "mismatched prediction sets: {} vs {}",
            clean_preds.len(),
            adv_preds.len()
        )));
    }
    let changed = clean_preds
        .iter()
        .zip(adv_preds.iter())
        .filter(|(c, a)| c != a)
        .count();
    Ok(changed as f32 / clean_preds.len() as f32)
}

/// Targeted attack success rate: the fraction of adversarial predictions
/// equal to the attacker's target class.
///
/// # Errors
///
/// Returns [`AttackError::BadInput`] for an empty prediction set.
pub fn targeted_success_rate(adv_preds: &[usize], target: usize) -> Result<f32> {
    if adv_preds.is_empty() {
        return Err(AttackError::BadInput("no predictions to evaluate".into()));
    }
    let hits = adv_preds.iter().filter(|&&p| p == target).count();
    Ok(hits as f32 / adv_preds.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dissimilarity_of_identical_images_is_zero() {
        let x = Tensor::full(&[3, 4, 4], 0.5);
        assert_eq!(l2_dissimilarity(&x, &x).unwrap(), 0.0);
    }

    #[test]
    fn dissimilarity_scales_with_perturbation() {
        let x = Tensor::full(&[3, 4, 4], 0.5);
        let small = x.map(|v| v + 0.01);
        let large = x.map(|v| v + 0.1);
        let d_small = l2_dissimilarity(&x, &small).unwrap();
        let d_large = l2_dissimilarity(&x, &large).unwrap();
        assert!(d_large > 5.0 * d_small);
        assert!((d_large - 0.2).abs() < 1e-5);
    }

    #[test]
    fn dissimilarity_error_cases() {
        let x = Tensor::zeros(&[3, 4, 4]);
        let y = Tensor::zeros(&[3, 4, 5]);
        assert!(l2_dissimilarity(&x, &y).is_err());
        assert!(l2_dissimilarity(&x, &x).is_err()); // zero-norm clean image
    }

    #[test]
    fn mean_dissimilarity_averages() {
        let a = Tensor::full(&[4], 1.0);
        let b1 = a.map(|v| v + 0.1);
        let b2 = a.map(|v| v + 0.3);
        let mean = mean_l2_dissimilarity(&[a.clone(), a.clone()], &[b1, b2]).unwrap();
        assert!((mean - 0.2).abs() < 1e-5);
        assert!(mean_l2_dissimilarity(&[], &[]).is_err());
        assert!(mean_l2_dissimilarity(std::slice::from_ref(&a), &[]).is_err());
    }

    #[test]
    fn success_rates() {
        assert_eq!(
            untargeted_success_rate(&[1, 2, 3, 4], &[1, 0, 3, 0]).unwrap(),
            0.5
        );
        assert_eq!(targeted_success_rate(&[5, 5, 2, 5], 5).unwrap(), 0.75);
        assert!(untargeted_success_rate(&[], &[]).is_err());
        assert!(untargeted_success_rate(&[1], &[1, 2]).is_err());
        assert!(targeted_success_rate(&[], 0).is_err());
    }

    #[test]
    fn batch_dissimilarity_matches_per_image_metric() {
        let clean = Tensor::from_vec(
            (0..24).map(|v| 0.2 + 0.03 * v as f32).collect(),
            &[2, 3, 2, 2],
        )
        .unwrap();
        let adv = clean.map(|v| (v + 0.05).min(1.0));
        let batched = batch_l2_dissimilarity(&clean, &adv).unwrap();
        assert_eq!(batched.len(), 2);
        for (i, &d) in batched.iter().enumerate() {
            let c = clean.batch_item(i).unwrap();
            let a = adv.batch_item(i).unwrap();
            let reference = l2_dissimilarity(&c, &a).unwrap();
            assert!(
                (d - reference).abs() < 1e-6,
                "image {i}: {d} vs {reference}"
            );
        }
        // Shape and zero-norm validation.
        assert!(batch_l2_dissimilarity(&clean, &Tensor::zeros(&[2, 3, 2, 3])).is_err());
        let zero = Tensor::zeros(&[1, 4]);
        assert!(batch_l2_dissimilarity(&zero, &zero).is_err());
    }

    #[test]
    fn logit_success_rates_match_prediction_based_rates() {
        // Row argmaxes: clean = [0, 2, 1], adv = [0, 1, 1].
        let clean = Tensor::from_vec(
            vec![
                3.0, 1.0, 2.0, /* row 1 */ 0.0, 1.0, 5.0, /* row 2 */ 0.0, 2.0, 1.0,
            ],
            &[3, 3],
        )
        .unwrap();
        let adv = Tensor::from_vec(
            vec![
                9.0, 1.0, 2.0, /* row 1 */ 0.0, 7.0, 5.0, /* row 2 */ 0.0, 2.0, 1.0,
            ],
            &[3, 3],
        )
        .unwrap();
        let from_logits = untargeted_success_from_logits(&clean, &adv).unwrap();
        assert!((from_logits - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(
            untargeted_success_rate(&[0, 2, 1], &[0, 1, 1]).unwrap(),
            from_logits
        );
        let targeted = targeted_success_from_logits(&adv, 1).unwrap();
        assert!((targeted - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(targeted_success_rate(&[0, 1, 1], 1).unwrap(), targeted);
        // Ties go to the first maximum, like loss::predictions.
        let tied = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        assert_eq!(targeted_success_from_logits(&tied, 0).unwrap(), 1.0);
        assert!(untargeted_success_from_logits(&clean, &tied).is_err());
        assert!(targeted_success_from_logits(&Tensor::zeros(&[3]), 0).is_err());
    }

    #[test]
    fn evaluation_from_parts() {
        let eval = AttackEvaluation::from_parts(&[true, false, true, true], &[0.1, 0.2, 0.3, 0.4])
            .unwrap();
        assert!((eval.success_rate - 0.75).abs() < 1e-6);
        assert!((eval.l2_dissimilarity - 0.25).abs() < 1e-6);
        assert_eq!(eval.count, 4);
        assert!(AttackEvaluation::from_parts(&[], &[]).is_err());
        assert!(AttackEvaluation::from_parts(&[true], &[0.1, 0.2]).is_err());
    }
}
