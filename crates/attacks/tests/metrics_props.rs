//! Property tests pinning the batched metric variants in
//! `blurnet_attacks::metrics` to their per-sample reference paths.
//!
//! These metrics sit directly between the batch engine's outputs and every
//! number the experiment tables report: `batch_l2_dissimilarity` reads raw
//! row slices of the batched image tensors, and the `*_from_logits`
//! variants take argmaxes straight off the batched logits. Each must agree
//! with composing the corresponding per-sample function over `batch_item`
//! rows, for every batch size — otherwise the scheduler's batched cells
//! would drift from the per-image sequential path.

use blurnet_attacks::{
    batch_l2_dissimilarity, l2_dissimilarity, targeted_success_from_logits, targeted_success_rate,
    untargeted_success_from_logits, untargeted_success_rate,
};
use blurnet_tensor::Tensor;
use proptest::prelude::*;

/// First-maximum argmax — the tie rule `blurnet_nn::loss::predictions`
/// documents, restated independently so the test does not share code with
/// the implementation under test.
fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (j, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = j;
        }
    }
    best
}

/// A `[n, classes]` logits tensor from a flat value vector.
fn logits_tensor(values: &[f32], n: usize, classes: usize) -> Tensor {
    Tensor::from_vec(values.to_vec(), &[n, classes]).expect("consistent dims")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// batch_l2_dissimilarity over an [N, C, H, W] batch equals the
    /// per-sample l2_dissimilarity over batch_item pairs, for random batch
    /// sizes and image extents.
    #[test]
    fn batched_l2_matches_per_sample(
        n in 1usize..9,
        hw in 2usize..7,
        seed in 0u64..10_000,
    ) {
        // Keep clean values strictly positive so no image has zero norm.
        let clean = blurnet_test_support::uniform_batch(&[n, 3, hw, hw], 0.1, 1.0, seed);
        let adv = clean.map(|v| (v + 0.07).min(1.5));
        let batched = batch_l2_dissimilarity(&clean, &adv).unwrap();
        prop_assert_eq!(batched.len(), n);
        for (i, &d) in batched.iter().enumerate() {
            let c = clean.batch_item(i).unwrap();
            let a = adv.batch_item(i).unwrap();
            let reference = l2_dissimilarity(&c, &a).unwrap();
            prop_assert!(
                (d - reference).abs() <= 1e-6,
                "image {}: batched {} vs per-sample {}",
                i,
                d,
                reference
            );
        }
    }

    /// untargeted_success_from_logits equals untargeted_success_rate over
    /// independently computed argmax predictions — exactly, since both
    /// paths count the same discrete events.
    #[test]
    fn untargeted_logit_path_matches_prediction_path(
        n in 1usize..12,
        classes in 2usize..8,
        values in proptest::collection::vec(-5.0f32..5.0, 2 * 12 * 8),
    ) {
        let clean: Vec<f32> = values[..n * classes].to_vec();
        let adv: Vec<f32> = values[12 * 8..12 * 8 + n * classes].to_vec();
        let clean_t = logits_tensor(&clean, n, classes);
        let adv_t = logits_tensor(&adv, n, classes);

        let clean_preds: Vec<usize> =
            (0..n).map(|i| argmax(&clean[i * classes..(i + 1) * classes])).collect();
        let adv_preds: Vec<usize> =
            (0..n).map(|i| argmax(&adv[i * classes..(i + 1) * classes])).collect();

        let from_logits = untargeted_success_from_logits(&clean_t, &adv_t).unwrap();
        let from_preds = untargeted_success_rate(&clean_preds, &adv_preds).unwrap();
        prop_assert_eq!(from_logits, from_preds);
    }

    /// targeted_success_from_logits equals targeted_success_rate over the
    /// same argmax predictions, for every target class.
    #[test]
    fn targeted_logit_path_matches_prediction_path(
        n in 1usize..12,
        classes in 2usize..8,
        target_index in 0usize..8,
        values in proptest::collection::vec(-5.0f32..5.0, 12 * 8),
    ) {
        let target = target_index % classes;
        let adv: Vec<f32> = values[..n * classes].to_vec();
        let adv_t = logits_tensor(&adv, n, classes);
        let adv_preds: Vec<usize> =
            (0..n).map(|i| argmax(&adv[i * classes..(i + 1) * classes])).collect();

        let from_logits = targeted_success_from_logits(&adv_t, target).unwrap();
        let from_preds = targeted_success_rate(&adv_preds, target).unwrap();
        prop_assert_eq!(from_logits, from_preds);
    }

    /// Ties in a logits row resolve to the first maximum on both paths
    /// (duplicate the max value at a random later position).
    #[test]
    fn tie_breaking_is_first_maximum_on_both_paths(
        classes in 2usize..8,
        dup in 1usize..8,
        values in proptest::collection::vec(-1.0f32..1.0, 8),
    ) {
        let dup = dup % classes;
        let mut row = values[..classes].to_vec();
        let max_idx = argmax(&row);
        if dup > max_idx {
            row[dup] = row[max_idx];
        }
        let t = logits_tensor(&row, 1, classes);
        let expected = argmax(&row);
        prop_assert_eq!(targeted_success_from_logits(&t, expected).unwrap(), 1.0);
        for c in 0..classes {
            if c != expected {
                prop_assert_eq!(targeted_success_from_logits(&t, c).unwrap(), 0.0);
            }
        }
    }
}

#[test]
fn batched_l2_validation_matches_per_sample_validation() {
    // Zero-norm clean rows are rejected by both paths.
    let zero = Tensor::zeros(&[2, 3, 4, 4]);
    assert!(batch_l2_dissimilarity(&zero, &zero).is_err());
    assert!(l2_dissimilarity(&zero.batch_item(0).unwrap(), &zero.batch_item(0).unwrap()).is_err());
    // Mismatched shapes are rejected.
    let a = Tensor::full(&[2, 3, 4, 4], 0.5);
    let b = Tensor::full(&[2, 3, 4, 5], 0.5);
    assert!(batch_l2_dissimilarity(&a, &b).is_err());
}
