//! Seeded fixture builders shared by the workspace's test suites.
//!
//! Before this crate existed, `crates/nn/tests/`, `crates/signal/tests/`
//! and the root `tests/` each carried their own copy of the same fixture
//! code: a tiny 2-conv LISA-CNN built from a `ChaCha8Rng`, uniform random
//! batches, and hand-rolled sticker masks. The copies drifted (different
//! seeds, different builder parameters) and every new test file started by
//! pasting one of them. This crate is the single home for those fixtures.
//!
//! Everything here is **deterministic given the seed** — the same property
//! the engine and scheduler tests pin bitwise — so fixtures can be rebuilt
//! in two places (e.g. a reference path and a parallel path) and compared
//! exactly.

use blurnet_data::{sticker_mask, StickerLayout};
use blurnet_defenses::model::TrainingReport;
use blurnet_defenses::{DefendedModel, DefenseKind, TrainConfig};
use blurnet_nn::{LisaCnn, Sequential};
use blurnet_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Number of classes in the synthetic LISA dataset (and therefore in every
/// fixture network's head).
pub const NUM_CLASSES: usize = 18;

/// Spatial extent of the tiny fixture images (`[3, 16, 16]`).
pub const TINY_IMAGE_SIZE: usize = 16;

/// A fresh `ChaCha8Rng` for `seed` — the one RNG family every test in the
/// workspace derives data from.
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// The workspace's canonical tiny network: a 2-conv LISA-CNN over
/// `[3, 16, 16]` inputs with 4 first-layer filters, built from `seed`.
///
/// This is the exact fixture previously copied into `crates/nn/tests/`
/// (twice), `crates/core/src/runner.rs` and the root test suite.
///
/// # Panics
///
/// Panics if the builder rejects the fixed configuration (a bug, not an
/// input condition).
pub fn tiny_lisa_net(seed: u64) -> Sequential {
    tiny_lisa_builder()
        .build(&mut seeded_rng(seed))
        .expect("tiny LisaCnn builds")
}

/// The builder behind [`tiny_lisa_net`], for tests that also need the
/// architecture config.
pub fn tiny_lisa_builder() -> LisaCnn {
    LisaCnn::new(NUM_CLASSES)
        .input_size(TINY_IMAGE_SIZE)
        .conv1_filters(4)
}

/// An untrained [`DefendedModel`] around [`tiny_lisa_net`] — the fixture
/// for defense-path tests that do not need trained weights.
///
/// # Panics
///
/// Panics if the fixed builder configuration fails (a bug).
pub fn tiny_defended_model(defense: DefenseKind, seed: u64) -> DefendedModel {
    let builder = tiny_lisa_builder();
    let net = builder
        .build(&mut seeded_rng(seed))
        .expect("tiny LisaCnn builds");
    DefendedModel::new(
        net,
        defense,
        builder.config().clone(),
        TrainingReport {
            epoch_losses: vec![],
            test_accuracy: 0.0,
        },
    )
}

/// A `[dims...]` tensor of uniform values in `[lo, hi)` drawn from `seed` —
/// the CIFAR-like random batch every equivalence test feeds both sides of
/// a comparison.
pub fn uniform_batch(dims: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
    Tensor::rand_uniform(dims, lo, hi, &mut seeded_rng(seed))
}

/// `n` individual `[3, size, size]` images in `[0, 1)`, seeded — the
/// slice-of-images form the attack and defense evaluation APIs take.
pub fn uniform_images(n: usize, size: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = seeded_rng(seed);
    (0..n)
        .map(|_| Tensor::rand_uniform(&[3, size, size], 0.0, 1.0, &mut rng))
        .collect()
}

/// The canned two-bar sticker mask at the tiny fixture extent — the RP2
/// "graffiti" layout every mask-invariant test uses.
///
/// # Panics
///
/// Panics if mask generation rejects the fixed extent (a bug).
pub fn canned_sticker_mask() -> Tensor {
    sticker_mask(TINY_IMAGE_SIZE, TINY_IMAGE_SIZE, StickerLayout::TwoBars)
        .expect("fixture mask extent is valid")
}

/// The smoke-scale training recipe shared by integration tests that train
/// a real (tiny) model: `epochs` at batch 16, lr 2e-3, seed 7.
pub fn smoke_train_config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        learning_rate: 2e-3,
        seed: 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic_per_seed() {
        let a = tiny_lisa_net(3);
        let b = tiny_lisa_net(3);
        assert_eq!(a.to_bytes().unwrap(), b.to_bytes().unwrap());
        let c = tiny_lisa_net(4);
        assert_ne!(a.to_bytes().unwrap(), c.to_bytes().unwrap());

        assert_eq!(
            uniform_batch(&[2, 3, 4, 4], 0.0, 1.0, 9),
            uniform_batch(&[2, 3, 4, 4], 0.0, 1.0, 9)
        );
        assert_ne!(
            uniform_batch(&[2, 3, 4, 4], 0.0, 1.0, 9),
            uniform_batch(&[2, 3, 4, 4], 0.0, 1.0, 10)
        );
    }

    #[test]
    fn image_fixtures_have_the_documented_shapes() {
        let images = uniform_images(3, TINY_IMAGE_SIZE, 1);
        assert_eq!(images.len(), 3);
        for image in &images {
            assert_eq!(image.dims(), &[3, TINY_IMAGE_SIZE, TINY_IMAGE_SIZE]);
            assert!(image.min().unwrap() >= 0.0 && image.max().unwrap() < 1.0);
        }
        let mask = canned_sticker_mask();
        assert_eq!(mask.dims(), &[TINY_IMAGE_SIZE, TINY_IMAGE_SIZE]);
        assert!(mask.data().iter().any(|&v| v > 0.5));
    }

    #[test]
    fn defended_model_fixture_classifies() {
        let mut model = tiny_defended_model(DefenseKind::Baseline, 0);
        let image = Tensor::full(&[3, TINY_IMAGE_SIZE, TINY_IMAGE_SIZE], 0.5);
        assert!(model.classify_one(&image).unwrap() < NUM_CLASSES);
        assert_eq!(smoke_train_config(4).epochs, 4);
    }
}
