//! Plain-text table rendering for the reproduced experiments.

use serde::{Deserialize, Serialize};

/// A rendered experiment table: a title, column headers and string rows.
///
/// Experiment modules produce typed row structs; this is the common
/// presentation form printed by the bench binaries and written into
/// `EXPERIMENTS.md`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table caption (e.g. "Table II — white-box evaluation").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, one `Vec<String>` per row.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; extra or missing cells are allowed but will render
    /// ragged.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes the table to JSON (used by the bench binaries' `--json`
    /// flag).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:width$}", width = widths[i]))
            .collect();
        writeln!(f, "| {} |", header_line.join(" | "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", rule.join("-|-"))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:width$}", width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            writeln!(f, "| {} |", line.join(" | "))?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal place (the paper
/// reports success rates and accuracies as percentages).
pub fn pct(value: f32) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Formats a dissimilarity / loss value with three decimal places.
pub fn num3(value: f32) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_aligns_columns() {
        let mut table = Table::new("Demo", &["Defense", "ASR"]);
        table.push_row(vec!["Baseline".into(), pct(0.9)]);
        table.push_row(vec!["TV (1e-4)".into(), pct(0.175)]);
        let rendered = table.to_string();
        assert!(rendered.contains("Demo"));
        assert!(rendered.contains("| Baseline "));
        assert!(rendered.contains("90.0%"));
        assert!(rendered.contains("17.5%"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let mut table = Table::new("T", &["a"]);
        table.push_row(vec!["1".into()]);
        let json = table.to_json();
        let parsed: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, table);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.905), "90.5%");
        assert_eq!(num3(0.20749), "0.207");
    }
}
