//! Plain-text table rendering and machine-readable run reports for the
//! reproduced experiments.
//!
//! [`Table`] is the human-facing presentation form; [`RunReport`] is the
//! machine-readable `results.json` a grid run emits. A `RunReport`
//! contains **only deterministic content** — cell identities, statuses and
//! typed outputs, in grid order — never timings or thread counts, so the
//! serialized report is bit-identical for the same grid/scale/seed at
//! every thread count and on both the scheduler and sequential paths
//! (pinned by `tests/golden_repro.rs`). Timing lives in the scheduler's
//! separate `RunProfile`.

use serde::{Deserialize, Serialize};

use crate::experiments::figures::{Figure1, Figure2, Figure3, Figure4, ScatterSeries};
use crate::experiments::table1::Table1Row;
use crate::experiments::table2::Table2Row;
use crate::experiments::table3::Table3Row;
use crate::experiments::table4::Table4Row;
use crate::experiments::table5::Table5Row;

/// A rendered experiment table: a title, column headers and string rows.
///
/// Experiment modules produce typed row structs; this is the common
/// presentation form printed by the bench binaries and written into
/// `EXPERIMENTS.md`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table caption (e.g. "Table II — white-box evaluation").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, one `Vec<String>` per row.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; extra or missing cells are allowed but will render
    /// ragged.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes the table to JSON (used by the bench binaries' `--json`
    /// flag).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:width$}", width = widths[i]))
            .collect();
        writeln!(f, "| {} |", header_line.join(" | "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", rule.join("-|-"))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:width$}", width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            writeln!(f, "| {} |", line.join(" | "))?;
        }
        Ok(())
    }
}

/// Outcome of one experiment cell in a grid run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellStatus {
    /// The cell ran to completion and produced its output.
    Ok,
    /// The cell itself failed (error or panic); siblings are unaffected.
    Failed {
        /// The cell's error or panic message.
        error: String,
    },
    /// A prerequisite artifact failed, so the cell never ran.
    Skipped {
        /// Which prerequisite failed and why.
        reason: String,
    },
}

/// The typed output of one experiment cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellOutput {
    /// A Table I row (black-box transfer victim).
    Table1(Table1Row),
    /// A Table II row (white-box RP2 evaluation).
    Table2(Table2Row),
    /// A Table III row (adaptive attack evaluation).
    Table3(Table3Row),
    /// A Table IV row (PGD evaluation).
    Table4(Table4Row),
    /// A Table V row (adaptive attack vs adversarial training).
    Table5(Table5Row),
    /// The Figure 1 input-spectrum analysis.
    Figure1(Figure1),
    /// The Figure 2 feature-map-spectrum analysis.
    Figure2(Figure2),
    /// The Figure 3 DCT-dimension sweep.
    Figure3(Figure3),
    /// The Figure 4 layer-depth spectrum comparison.
    Figure4(Figure4),
    /// One scatter series of Figures 5–6.
    Scatter(ScatterSeries),
}

/// One cell's entry in a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// The experiment this cell belongs to (`"table1"` … `"figure5_6"`).
    pub experiment: String,
    /// The cell's row/series label within its experiment.
    pub label: String,
    /// How the cell ended.
    pub status: CellStatus,
    /// The cell's typed output when `status` is [`CellStatus::Ok`].
    pub output: Option<CellOutput>,
}

/// The machine-readable result of one experiment-grid run
/// (`results.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema tag (`"blurnet-results/v1"`).
    pub schema: String,
    /// The scale profile the run used (`"smoke"`, `"quick"`, `"paper"`).
    pub scale: String,
    /// The dataset/zoo seed.
    pub seed: u64,
    /// Per-cell outcomes, **in grid order** (never completion order).
    pub cells: Vec<CellReport>,
}

/// Schema tag written into every [`RunReport`].
pub const RESULTS_SCHEMA: &str = "blurnet-results/v1";

impl RunReport {
    /// Serializes the report to deterministic pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Writes [`RunReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// The cells belonging to one experiment, in grid order.
    pub fn experiment_cells(&self, experiment: &str) -> Vec<&CellReport> {
        self.cells
            .iter()
            .filter(|c| c.experiment == experiment)
            .collect()
    }

    /// Looks up one cell by experiment and label.
    pub fn cell(&self, experiment: &str, label: &str) -> Option<&CellReport> {
        self.cells
            .iter()
            .find(|c| c.experiment == experiment && c.label == label)
    }

    /// Whether every cell completed successfully.
    pub fn all_ok(&self) -> bool {
        self.cells.iter().all(|c| c.status == CellStatus::Ok)
    }

    /// Renders every experiment present in the report as printable tables,
    /// grouped in grid order.
    pub fn tables(&self) -> Vec<Table> {
        let mut out = Vec::new();
        let mut seen: Vec<&str> = Vec::new();
        for cell in &self.cells {
            let experiment = cell.experiment.as_str();
            if seen.contains(&experiment) {
                continue;
            }
            seen.push(experiment);
            out.extend(self.experiment_table(experiment));
        }
        out
    }

    /// Renders one experiment's cells as a printable table (row-based
    /// experiments collate rows; figure analyses render their own tables).
    fn experiment_table(&self, experiment: &str) -> Vec<Table> {
        let cells = self.experiment_cells(experiment);
        let mut failures = Vec::new();
        let mut tables = Vec::new();
        let mut t1 = crate::experiments::table1::Table1 { rows: vec![] };
        let mut t2 = crate::experiments::table2::Table2 { rows: vec![] };
        let mut t3 = crate::experiments::table3::Table3 { rows: vec![] };
        let mut t4 = crate::experiments::table4::Table4 { rows: vec![] };
        let mut t5 = crate::experiments::table5::Table5 { rows: vec![] };
        let mut scatter5 = Vec::new();
        let mut scatter6 = Vec::new();
        for cell in &cells {
            match (&cell.status, &cell.output) {
                (CellStatus::Ok, Some(output)) => match output.clone() {
                    CellOutput::Table1(row) => t1.rows.push(row),
                    CellOutput::Table2(row) => t2.rows.push(row),
                    CellOutput::Table3(row) => t3.rows.push(row),
                    CellOutput::Table4(row) => t4.rows.push(row),
                    CellOutput::Table5(row) => t5.rows.push(row),
                    CellOutput::Figure1(f) => tables.push(f.table()),
                    CellOutput::Figure2(f) => tables.push(f.table()),
                    CellOutput::Figure3(f) => tables.push(f.table()),
                    CellOutput::Figure4(f) => tables.push(f.table()),
                    CellOutput::Scatter(series) => {
                        if cell.experiment == "figure5" {
                            scatter5.push(series);
                        } else {
                            scatter6.push(series);
                        }
                    }
                },
                (CellStatus::Failed { error }, _) => {
                    failures.push((cell.label.clone(), error.clone()));
                }
                (CellStatus::Skipped { reason }, _) => {
                    failures.push((cell.label.clone(), reason.clone()));
                }
                // An Ok cell always carries its output; nothing to render
                // otherwise.
                _ => {}
            }
        }
        if !t1.rows.is_empty() {
            tables.push(t1.table());
        }
        if !t2.rows.is_empty() {
            tables.push(t2.table());
        }
        if !t3.rows.is_empty() {
            tables.push(t3.table());
        }
        if !t4.rows.is_empty() {
            tables.push(t4.table());
        }
        if !t5.rows.is_empty() {
            tables.push(t5.table());
        }
        if !scatter5.is_empty() || !scatter6.is_empty() {
            let fig = crate::experiments::figures::Figure5And6 {
                figure5: scatter5,
                figure6: scatter6,
            };
            tables.push(fig.table());
        }
        if !failures.is_empty() {
            let mut table = Table::new(
                format!("{experiment} — cells that did not complete"),
                &["Cell", "Reason"],
            );
            for (label, reason) in failures {
                table.push_row(vec![label, reason]);
            }
            tables.push(table);
        }
        tables
    }
}

/// Formats a fraction as a percentage with one decimal place (the paper
/// reports success rates and accuracies as percentages).
pub fn pct(value: f32) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Formats a dissimilarity / loss value with three decimal places.
pub fn num3(value: f32) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_aligns_columns() {
        let mut table = Table::new("Demo", &["Defense", "ASR"]);
        table.push_row(vec!["Baseline".into(), pct(0.9)]);
        table.push_row(vec!["TV (1e-4)".into(), pct(0.175)]);
        let rendered = table.to_string();
        assert!(rendered.contains("Demo"));
        assert!(rendered.contains("| Baseline "));
        assert!(rendered.contains("90.0%"));
        assert!(rendered.contains("17.5%"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let mut table = Table::new("T", &["a"]);
        table.push_row(vec!["1".into()]);
        let json = table.to_json();
        let parsed: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, table);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.905), "90.5%");
        assert_eq!(num3(0.20749), "0.207");
    }
}
