//! Table III — adaptive attacks per defense.
//!
//! Each BlurNet defense is re-attacked by an adversary that knows the
//! defense: the depthwise-filter models face the low-frequency DCT attack
//! (Eq. 8), the regularized models face RP2 with the defender's own
//! feature-map penalty added to the attacker's loss (Eq. 9–11). The paper's
//! headline: `Tik_hf` loses ~30% of its apparent robustness while TV (1e-4)
//! degrades by only 2.5%, making TV the truly robust defense.

use blurnet_defenses::{DefendedModel, DefenseKind};
use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::report::{num3, pct};
use crate::{ModelZoo, Result, Scale, Table};

/// One row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Defense label.
    pub defense: String,
    /// Adaptive-attack success rate averaged over targets.
    pub average_success_rate: f32,
    /// Worst-case adaptive success rate over targets.
    pub worst_success_rate: f32,
    /// Mean relative L2 dissimilarity.
    pub l2_dissimilarity: f32,
}

/// The reproduced Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// Rows in the paper's order.
    pub rows: Vec<Table3Row>,
}

impl Table3 {
    /// Renders the result as a printable table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Table III — adaptive attack evaluation",
            &[
                "Defense",
                "Average Success Rate",
                "Worst Success Rate",
                "L2 Dissimilarity",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.defense.clone(),
                pct(row.average_success_rate),
                pct(row.worst_success_rate),
                num3(row.l2_dissimilarity),
            ]);
        }
        table
    }

    /// The paper's values for side-by-side comparison.
    pub fn paper_reference() -> Table {
        let mut table = Table::new(
            "Table III (paper)",
            &["Defense", "Avg SR", "Worst SR", "L2"],
        );
        for (d, avg, worst, l2) in [
            ("3x3 conv", "22.91%", "52.5%", "0.546"),
            ("5x5 conv", "46.25%", "75%", "0.539"),
            ("7x7 conv", "10.42%", "20%", "0.539"),
            ("TV (1e-4)", "8.33%", "20%", "0.044"),
            ("TV (1e-5)", "6.11%", "25%", "0.046"),
            ("Tik_hf", "23.6%", "47.5%", "0.147"),
            ("Tik_pseudo", "17.5%", "45%", "0.141"),
        ] {
            table.push_row(vec![
                d.to_string(),
                avg.to_string(),
                worst.to_string(),
                l2.to_string(),
            ]);
        }
        table
    }
}

/// Runs the adaptive evaluation for one defense.
///
/// # Errors
///
/// Propagates training and attack errors.
pub fn run_defense(zoo: &mut ModelZoo, defense: &DefenseKind) -> Result<Table3Row> {
    let scale = zoo.scale();
    let mut model = zoo.get_or_train(defense)?;
    let images = super::attack_images(zoo);
    row_for_model(scale, &mut model, &images)
}

/// The pure per-cell evaluation behind [`run_defense`]: the
/// defense-matched adaptive attack against an already-trained model. Both
/// the sequential path and the experiment scheduler execute a Table III
/// cell through this exact function.
///
/// # Errors
///
/// Propagates attack errors.
pub fn row_for_model(
    scale: Scale,
    model: &mut DefendedModel,
    images: &[Tensor],
) -> Result<Table3Row> {
    let targets = scale.attack_targets();
    let defense = model.defense().clone();
    let objective = super::adaptive_objective_for(&defense, model, super::DEFAULT_DCT_DIM)?;
    let attack = super::rp2_with_objective(scale, objective)?;
    let sweep = super::sweep_defended(model, &attack, images, &targets)?;
    Ok(Table3Row {
        defense: defense.label(),
        average_success_rate: sweep.average_success_rate(),
        worst_success_rate: sweep.worst_success_rate(),
        l2_dissimilarity: sweep.mean_l2_dissimilarity(),
    })
}

/// Runs the full Table III experiment (all seven BlurNet defenses).
///
/// # Errors
///
/// Propagates training and attack errors.
pub fn run(zoo: &mut ModelZoo) -> Result<Table3> {
    let mut rows = Vec::new();
    for defense in super::blurnet_defenses(zoo.scale()) {
        rows.push(run_defense(zoo, &defense)?);
    }
    Ok(Table3 { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn paper_reference_has_seven_rows() {
        assert_eq!(Table3::paper_reference().len(), 7);
    }

    #[test]
    fn adaptive_row_for_tv_defense_runs_at_smoke_scale() {
        let mut zoo = ModelZoo::new(Scale::Smoke, 13).unwrap();
        let row = run_defense(&mut zoo, &DefenseKind::TotalVariation { alpha: 1e-4 }).unwrap();
        assert!(row.defense.starts_with("TV"));
        assert!((0.0..=1.0).contains(&row.average_success_rate));
        assert!(row.worst_success_rate >= row.average_success_rate);
    }

    #[test]
    fn roster_covers_the_blurnet_defenses() {
        let roster = super::super::blurnet_defenses(Scale::Smoke);
        assert_eq!(roster.len(), 7);
    }
}
