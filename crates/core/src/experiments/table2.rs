//! Table II — white-box evaluation of every defense.
//!
//! Each defended model is trained from scratch and attacked white-box with
//! RP2, sweeping the attack target over the non-stop classes. The paper
//! reports the legitimate (clean test) accuracy, the success rate averaged
//! over targets, the worst-case target and the L2 dissimilarity.

use blurnet_attacks::AdaptiveObjective;
use blurnet_defenses::{DefendedModel, DefenseKind};
use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::report::{num3, pct};
use crate::{ModelZoo, Result, Scale, Table};

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Defense label (paper row name).
    pub defense: String,
    /// Clean test accuracy through the defended prediction path.
    pub legitimate_accuracy: f32,
    /// Targeted success rate averaged over the swept targets.
    pub average_success_rate: f32,
    /// Worst-case (maximum) targeted success rate over targets.
    pub worst_success_rate: f32,
    /// Mean relative L2 dissimilarity of the adversarial examples.
    pub l2_dissimilarity: f32,
}

/// The reproduced Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Rows in the paper's order.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Renders the result as a printable table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Table II — white-box evaluation (RP2, swept over targets)",
            &[
                "Defense",
                "Legitimate Acc.",
                "Average Success Rate",
                "Worst Success Rate",
                "L2 Dissimilarity",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.defense.clone(),
                pct(row.legitimate_accuracy),
                pct(row.average_success_rate),
                pct(row.worst_success_rate),
                num3(row.l2_dissimilarity),
            ]);
        }
        table
    }

    /// Key rows from the paper for side-by-side comparison.
    pub fn paper_reference() -> Table {
        let mut table = Table::new(
            "Table II (paper, selected rows)",
            &["Defense", "Legit Acc.", "Avg SR", "Worst SR", "L2"],
        );
        for (d, a, avg, worst, l2) in [
            ("Baseline", "91%", "49.18%", "90%", "0.207"),
            (
                "Gaussian aug (sigma=0.1)",
                "84.3%",
                "19.44%",
                "62.5%",
                "0.238",
            ),
            ("Adv-train", "77.9%", "11.94%", "20%", "0.244"),
            ("3x3 conv", "86.3%", "30%", "55%", "0.201"),
            ("5x5 conv", "86.3%", "24.11%", "47.5%", "0.189"),
            ("7x7 conv", "87%", "11.61%", "30%", "0.203"),
            ("TV (1e-4)", "85.6%", "7.92%", "17.5%", "0.224"),
            ("TV (1e-5)", "82.3%", "8.47%", "30%", "0.199"),
            ("Tik_hf (1e-4)", "84.5%", "5.42%", "10%", "0.214"),
            ("Tik_pseudo (1e-6)", "83.6%", "13.9%", "35%", "0.222"),
        ] {
            table.push_row(vec![
                d.to_string(),
                a.to_string(),
                avg.to_string(),
                worst.to_string(),
                l2.to_string(),
            ]);
        }
        table
    }

    /// Looks up a row by its defense label.
    pub fn row(&self, label: &str) -> Option<&Table2Row> {
        self.rows.iter().find(|r| r.defense == label)
    }
}

/// Runs the white-box evaluation for one defense and returns its row.
///
/// # Errors
///
/// Propagates training and attack errors.
pub fn run_defense(zoo: &mut ModelZoo, defense: &DefenseKind) -> Result<Table2Row> {
    let scale = zoo.scale();
    let mut model = zoo.get_or_train(defense)?;
    let images = super::attack_images(zoo);
    row_for_model(scale, &mut model, &images)
}

/// The pure per-cell evaluation behind [`run_defense`]: a white-box RP2
/// sweep against an already-trained model. Both the sequential path and
/// the experiment scheduler execute a Table II cell through this exact
/// function, which is what makes their reports bit-identical.
///
/// # Errors
///
/// Propagates attack errors.
pub fn row_for_model(
    scale: Scale,
    model: &mut DefendedModel,
    images: &[Tensor],
) -> Result<Table2Row> {
    let targets = scale.attack_targets();
    let attack = super::rp2_with_objective(scale, AdaptiveObjective::Standard)?;
    let sweep = super::sweep_defended(model, &attack, images, &targets)?;
    Ok(Table2Row {
        defense: model.defense().label(),
        legitimate_accuracy: model.training_report().test_accuracy,
        average_success_rate: sweep.average_success_rate(),
        worst_success_rate: sweep.worst_success_rate(),
        l2_dissimilarity: sweep.mean_l2_dissimilarity(),
    })
}

/// Runs the full Table II experiment (all fifteen defended models).
///
/// # Errors
///
/// Propagates training and attack errors.
pub fn run(zoo: &mut ModelZoo) -> Result<Table2> {
    let mut rows = Vec::new();
    for defense in super::table2_defenses(zoo.scale()) {
        rows.push(run_defense(zoo, &defense)?);
    }
    Ok(Table2 { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn paper_reference_contains_the_headline_rows() {
        let reference = Table2::paper_reference();
        let rendered = reference.to_string();
        assert!(rendered.contains("Baseline"));
        assert!(rendered.contains("TV (1e-4)"));
        assert!(rendered.contains("Tik_hf"));
    }

    #[test]
    fn single_defense_row_is_well_formed_at_smoke_scale() {
        let mut zoo = ModelZoo::new(Scale::Smoke, 11).unwrap();
        let row = run_defense(&mut zoo, &DefenseKind::Baseline).unwrap();
        assert_eq!(row.defense, "Baseline");
        assert!((0.0..=1.0).contains(&row.legitimate_accuracy));
        assert!((0.0..=1.0).contains(&row.average_success_rate));
        assert!(row.worst_success_rate >= row.average_success_rate);
        assert!(row.l2_dissimilarity >= 0.0);
    }

    #[test]
    fn roster_matches_the_paper_row_count() {
        // 1 baseline + 3 Gaussian + 3 smoothing + adv-train + 3 depthwise +
        // 2 TV + Tik_hf + Tik_pseudo = 15 rows, as in the paper.
        assert_eq!(super::super::table2_defenses(Scale::Smoke).len(), 15);
    }
}
