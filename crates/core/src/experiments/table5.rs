//! Table V (supplementary) — adversarial training against the adaptive
//! attacks.
//!
//! The PGD-adversarially-trained model is attacked with the same adaptive
//! objectives used in Table III. The paper's take-away: adversarial
//! training beats every BlurNet defense except TV regularization under the
//! RP2 threat model, reinforcing that no defense is universal.

use blurnet_attacks::{AdaptiveObjective, FeaturePenaltyKind};
use blurnet_defenses::DefenseKind;
use blurnet_signal::OperatorPenalty;
use serde::{Deserialize, Serialize};

use crate::report::{num3, pct};
use crate::{ModelZoo, Result, Table};

/// One row of Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Attack label (which adaptive objective was used).
    pub attack: String,
    /// Success rate averaged over targets.
    pub average_success_rate: f32,
    /// Worst-case success rate over targets.
    pub worst_success_rate: f32,
    /// Mean relative L2 dissimilarity.
    pub l2_dissimilarity: f32,
}

/// The reproduced Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5 {
    /// Rows in the paper's order.
    pub rows: Vec<Table5Row>,
}

impl Table5 {
    /// Renders the result as a printable table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Table V — adversarial training vs adaptive adversaries",
            &[
                "Attack",
                "Average Success Rate",
                "Worst Success Rate",
                "L2 Dissimilarity",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.attack.clone(),
                pct(row.average_success_rate),
                pct(row.worst_success_rate),
                num3(row.l2_dissimilarity),
            ]);
        }
        table
    }

    /// The paper's values for side-by-side comparison.
    pub fn paper_reference() -> Table {
        let mut table = Table::new("Table V (paper)", &["Attack", "Avg SR", "Worst SR", "L2"]);
        for (a, avg, worst, l2) in [
            ("TV adaptive attack", "5.85%", "27.5%", "0.046"),
            ("Tik_hf attack", "17.6%", "18%", "0.148"),
            ("Tik_pseudo attack", "15%", "17.5%", "0.150"),
        ] {
            table.push_row(vec![
                a.to_string(),
                avg.to_string(),
                worst.to_string(),
                l2.to_string(),
            ]);
        }
        table
    }
}

/// Runs the full Table V experiment.
///
/// # Errors
///
/// Propagates training and attack errors.
pub fn run(zoo: &mut ModelZoo) -> Result<Table5> {
    let scale = zoo.scale();
    let defense = DefenseKind::AdversarialTraining {
        epsilon: 8.0 / 255.0,
        step_size: 0.1,
        steps: scale.adv_train_steps(),
    };
    let mut model = zoo.get_or_train(&defense)?;
    let images = super::attack_images(zoo);
    let targets = scale.attack_targets();
    let feature_layer = model.feature_layer_index();
    let extent = model.feature_map_extent();

    let attacks: Vec<(String, AdaptiveObjective)> = vec![
        (
            "TV adaptive attack".to_string(),
            AdaptiveObjective::FeaturePenalty {
                layer_index: feature_layer,
                kind: FeaturePenaltyKind::TotalVariation,
                weight: 1.0,
            },
        ),
        (
            "Tik_hf attack".to_string(),
            AdaptiveObjective::FeaturePenalty {
                layer_index: feature_layer,
                kind: FeaturePenaltyKind::Operator(OperatorPenalty::high_frequency(extent, 3)?),
                weight: 1.0,
            },
        ),
        (
            "Tik_pseudo attack".to_string(),
            AdaptiveObjective::FeaturePenalty {
                layer_index: feature_layer,
                kind: FeaturePenaltyKind::Operator(OperatorPenalty::pseudo_difference(
                    extent, 1e-3,
                )?),
                weight: 1.0,
            },
        ),
    ];

    let mut rows = Vec::with_capacity(attacks.len());
    for (label, objective) in attacks {
        let attack = super::rp2_with_objective(scale, objective)?;
        let sweep = super::sweep_defended(&mut model, &attack, &images, &targets)?;
        rows.push(Table5Row {
            attack: label,
            average_success_rate: sweep.average_success_rate(),
            worst_success_rate: sweep.worst_success_rate(),
            l2_dissimilarity: sweep.mean_l2_dissimilarity(),
        });
    }
    Ok(Table5 { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_has_three_attacks() {
        let reference = Table5::paper_reference();
        assert_eq!(reference.len(), 3);
        assert!(reference.to_string().contains("TV adaptive attack"));
    }
}
