//! Table V (supplementary) — adversarial training against the adaptive
//! attacks.
//!
//! The PGD-adversarially-trained model is attacked with the same adaptive
//! objectives used in Table III. The paper's take-away: adversarial
//! training beats every BlurNet defense except TV regularization under the
//! RP2 threat model, reinforcing that no defense is universal.

use blurnet_attacks::{AdaptiveObjective, FeaturePenaltyKind};
use blurnet_defenses::{DefendedModel, DefenseKind};
use blurnet_signal::OperatorPenalty;
use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::report::{num3, pct};
use crate::{ModelZoo, Result, Scale, Table};

/// The three adaptive adversaries Table V turns against the
/// adversarially-trained model, as declarative cell parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Table5Attack {
    /// RP2 with the TV feature penalty in the attacker's loss (Eq. 9).
    TotalVariation,
    /// RP2 with the high-frequency Tikhonov operator penalty (Eq. 10).
    TikhonovHf,
    /// RP2 with the pseudo-difference Tikhonov operator penalty (Eq. 11).
    TikhonovPseudo,
}

impl Table5Attack {
    /// The attacks in the paper's row order.
    pub fn roster() -> Vec<Table5Attack> {
        vec![
            Table5Attack::TotalVariation,
            Table5Attack::TikhonovHf,
            Table5Attack::TikhonovPseudo,
        ]
    }

    /// The paper's row label for this attack.
    pub fn label(&self) -> &'static str {
        match self {
            Table5Attack::TotalVariation => "TV adaptive attack",
            Table5Attack::TikhonovHf => "Tik_hf attack",
            Table5Attack::TikhonovPseudo => "Tik_pseudo attack",
        }
    }

    /// Builds the adaptive objective for this attack against `model`.
    ///
    /// # Errors
    ///
    /// Propagates operator-construction errors.
    pub fn objective(&self, model: &DefendedModel) -> Result<AdaptiveObjective> {
        let feature_layer = model.feature_layer_index();
        let extent = model.feature_map_extent();
        Ok(match self {
            Table5Attack::TotalVariation => AdaptiveObjective::FeaturePenalty {
                layer_index: feature_layer,
                kind: FeaturePenaltyKind::TotalVariation,
                weight: 1.0,
            },
            Table5Attack::TikhonovHf => AdaptiveObjective::FeaturePenalty {
                layer_index: feature_layer,
                kind: FeaturePenaltyKind::Operator(OperatorPenalty::high_frequency(extent, 3)?),
                weight: 1.0,
            },
            Table5Attack::TikhonovPseudo => AdaptiveObjective::FeaturePenalty {
                layer_index: feature_layer,
                kind: FeaturePenaltyKind::Operator(OperatorPenalty::pseudo_difference(
                    extent, 1e-3,
                )?),
                weight: 1.0,
            },
        })
    }
}

/// The adversarially-trained defense Table V evaluates, at `scale`.
pub fn defense_for(scale: Scale) -> DefenseKind {
    DefenseKind::AdversarialTraining {
        epsilon: 8.0 / 255.0,
        step_size: 0.1,
        steps: scale.adv_train_steps(),
    }
}

/// The pure per-cell evaluation: one adaptive adversary against the
/// trained adversarial-training model. Both the sequential path and the
/// experiment scheduler execute a Table V cell through this exact
/// function.
///
/// # Errors
///
/// Propagates attack errors.
pub fn row_for_model(
    scale: Scale,
    model: &mut DefendedModel,
    images: &[Tensor],
    attack_kind: Table5Attack,
) -> Result<Table5Row> {
    let targets = scale.attack_targets();
    let objective = attack_kind.objective(model)?;
    let attack = super::rp2_with_objective(scale, objective)?;
    let sweep = super::sweep_defended(model, &attack, images, &targets)?;
    Ok(Table5Row {
        attack: attack_kind.label().to_string(),
        average_success_rate: sweep.average_success_rate(),
        worst_success_rate: sweep.worst_success_rate(),
        l2_dissimilarity: sweep.mean_l2_dissimilarity(),
    })
}

/// One row of Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Attack label (which adaptive objective was used).
    pub attack: String,
    /// Success rate averaged over targets.
    pub average_success_rate: f32,
    /// Worst-case success rate over targets.
    pub worst_success_rate: f32,
    /// Mean relative L2 dissimilarity.
    pub l2_dissimilarity: f32,
}

/// The reproduced Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5 {
    /// Rows in the paper's order.
    pub rows: Vec<Table5Row>,
}

impl Table5 {
    /// Renders the result as a printable table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Table V — adversarial training vs adaptive adversaries",
            &[
                "Attack",
                "Average Success Rate",
                "Worst Success Rate",
                "L2 Dissimilarity",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.attack.clone(),
                pct(row.average_success_rate),
                pct(row.worst_success_rate),
                num3(row.l2_dissimilarity),
            ]);
        }
        table
    }

    /// The paper's values for side-by-side comparison.
    pub fn paper_reference() -> Table {
        let mut table = Table::new("Table V (paper)", &["Attack", "Avg SR", "Worst SR", "L2"]);
        for (a, avg, worst, l2) in [
            ("TV adaptive attack", "5.85%", "27.5%", "0.046"),
            ("Tik_hf attack", "17.6%", "18%", "0.148"),
            ("Tik_pseudo attack", "15%", "17.5%", "0.150"),
        ] {
            table.push_row(vec![
                a.to_string(),
                avg.to_string(),
                worst.to_string(),
                l2.to_string(),
            ]);
        }
        table
    }
}

/// Runs the full Table V experiment.
///
/// # Errors
///
/// Propagates training and attack errors.
pub fn run(zoo: &mut ModelZoo) -> Result<Table5> {
    let scale = zoo.scale();
    let mut model = zoo.get_or_train(&defense_for(scale))?;
    let images = super::attack_images(zoo);
    let mut rows = Vec::new();
    for attack_kind in Table5Attack::roster() {
        rows.push(row_for_model(scale, &mut model, &images, attack_kind)?);
    }
    Ok(Table5 { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_has_three_attacks() {
        let reference = Table5::paper_reference();
        assert_eq!(reference.len(), 3);
        assert!(reference.to_string().contains("TV adaptive attack"));
    }
}
