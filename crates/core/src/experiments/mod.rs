//! Reproductions of every table and figure in the paper's evaluation.
//!
//! Each submodule exposes a `run(zoo)` function returning a typed result
//! struct with a [`crate::Table`] rendering. The bench binaries in
//! `blurnet-bench` print these tables; `EXPERIMENTS.md` records
//! paper-vs-measured values.

pub mod figures;
pub mod grid;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use blurnet_attacks::rp2::TargetSweep;
use blurnet_attacks::{AdaptiveObjective, FeaturePenaltyKind, Rp2Attack, Rp2Config};
use blurnet_defenses::{DefendedModel, DefenseKind};
use blurnet_signal::OperatorPenalty;
use blurnet_tensor::Tensor;

use crate::{BatchRunner, ModelZoo, Result, Scale};

/// The stop-sign images attacked by an experiment at the given scale —
/// the one selection rule shared by the sequential path and the
/// scheduler (their bit-identity depends on it).
pub(crate) fn attack_images_for(dataset: &blurnet_data::SignDataset, scale: Scale) -> Vec<Tensor> {
    dataset
        .stop_eval_images()
        .iter()
        .take(scale.attack_image_count())
        .cloned()
        .collect()
}

/// [`attack_images_for`] over a zoo's dataset and scale.
pub(crate) fn attack_images(zoo: &ModelZoo) -> Vec<Tensor> {
    attack_images_for(zoo.dataset(), zoo.scale())
}

/// Runs a targeted RP2 sweep against a defended model, generating the
/// adversarial examples white-box on the underlying network but judging
/// success through the model's *defended* prediction path (input filters
/// and randomized smoothing included). Delegates to
/// [`BatchRunner::rp2_sweep`], so every sweep-based experiment (Tables II
/// and III, Figures 3 and 5) classifies through the batch-parallel engine.
pub(crate) fn sweep_defended(
    model: &mut DefendedModel,
    attack: &Rp2Attack,
    images: &[Tensor],
    targets: &[usize],
) -> Result<TargetSweep> {
    BatchRunner::new(model).rp2_sweep(attack, images, targets)
}

/// Builds the adaptive RP2 objective matching a defense (Section V).
///
/// Depthwise-filter defenses get the low-frequency DCT attack; the
/// regularized defenses get their own penalty added to the attacker's
/// loss. Defenses without a dedicated adaptive attack fall back to the
/// standard objective.
pub(crate) fn adaptive_objective_for(
    defense: &DefenseKind,
    model: &DefendedModel,
    dct_dim: usize,
) -> Result<AdaptiveObjective> {
    let feature_layer = model.feature_layer_index();
    let extent = model.feature_map_extent();
    Ok(match defense {
        DefenseKind::DepthwiseLinf { .. } | DefenseKind::FeatureFilter { .. } => {
            AdaptiveObjective::LowFrequencyDct { dim: dct_dim }
        }
        DefenseKind::TotalVariation { .. } => AdaptiveObjective::FeaturePenalty {
            layer_index: feature_layer,
            kind: FeaturePenaltyKind::TotalVariation,
            weight: 1.0,
        },
        DefenseKind::TikhonovHf { window, .. } => AdaptiveObjective::FeaturePenalty {
            layer_index: feature_layer,
            kind: FeaturePenaltyKind::Operator(OperatorPenalty::high_frequency(extent, *window)?),
            weight: 1.0,
        },
        DefenseKind::TikhonovPseudo { .. } => AdaptiveObjective::FeaturePenalty {
            layer_index: feature_layer,
            kind: FeaturePenaltyKind::Operator(OperatorPenalty::pseudo_difference(extent, 1e-3)?),
            weight: 1.0,
        },
        _ => AdaptiveObjective::Standard,
    })
}

/// Builds the RP2 attack for a scale with the given objective.
pub(crate) fn rp2_with_objective(scale: Scale, objective: AdaptiveObjective) -> Result<Rp2Attack> {
    Ok(Rp2Attack::new(Rp2Config {
        objective,
        ..scale.rp2_config()
    })?)
}

/// The Table II defense roster (in the paper's row order).
pub(crate) fn table2_defenses(scale: Scale) -> Vec<DefenseKind> {
    let samples = scale.smoothing_samples();
    let adv_steps = scale.adv_train_steps();
    vec![
        DefenseKind::Baseline,
        DefenseKind::GaussianAugmentation { sigma: 0.1 },
        DefenseKind::GaussianAugmentation { sigma: 0.2 },
        DefenseKind::GaussianAugmentation { sigma: 0.3 },
        DefenseKind::RandomizedSmoothing {
            sigma: 0.1,
            samples,
        },
        DefenseKind::RandomizedSmoothing {
            sigma: 0.2,
            samples,
        },
        DefenseKind::RandomizedSmoothing {
            sigma: 0.3,
            samples,
        },
        DefenseKind::AdversarialTraining {
            epsilon: 8.0 / 255.0,
            step_size: 0.1,
            steps: adv_steps,
        },
        DefenseKind::DepthwiseLinf {
            kernel: 3,
            alpha: 1e-5,
        },
        DefenseKind::DepthwiseLinf {
            kernel: 5,
            alpha: 0.1,
        },
        DefenseKind::DepthwiseLinf {
            kernel: 7,
            alpha: 0.1,
        },
        DefenseKind::TotalVariation { alpha: 1e-4 },
        DefenseKind::TotalVariation { alpha: 1e-5 },
        DefenseKind::TikhonovHf {
            alpha: 1e-4,
            window: 3,
        },
        DefenseKind::TikhonovPseudo { alpha: 1e-6 },
    ]
}

/// The defenses evaluated by the adaptive and PGD tables (Tables III and
/// IV): the BlurNet defenses proper.
pub(crate) fn blurnet_defenses(_scale: Scale) -> Vec<DefenseKind> {
    vec![
        DefenseKind::DepthwiseLinf {
            kernel: 3,
            alpha: 1e-5,
        },
        DefenseKind::DepthwiseLinf {
            kernel: 5,
            alpha: 0.1,
        },
        DefenseKind::DepthwiseLinf {
            kernel: 7,
            alpha: 0.1,
        },
        DefenseKind::TotalVariation { alpha: 1e-4 },
        DefenseKind::TotalVariation { alpha: 1e-5 },
        DefenseKind::TikhonovHf {
            alpha: 1e-4,
            window: 3,
        },
        DefenseKind::TikhonovPseudo { alpha: 1e-6 },
    ]
}

/// Default DCT mask dimension of the low-frequency adaptive attack
/// (16 in the paper).
pub(crate) const DEFAULT_DCT_DIM: usize = 16;
