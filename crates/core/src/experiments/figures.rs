//! Figures 1–6 of the paper.
//!
//! * **Figure 1** — FFT spectrum of a clean vs RP2-perturbed stop sign.
//! * **Figure 2** — FFT spectra of first-layer feature maps (clean,
//!   adversarial, difference, blurred difference).
//! * **Figure 3** — adaptive attack success rate vs DCT mask dimension for
//!   the 7×7 depthwise defense.
//! * **Figure 4** — FFT spectra of second-layer feature maps (why filters
//!   are only inserted after the first layer).
//! * **Figures 5–6** — per-target scatter of attack success rate vs L2
//!   dissimilarity for the defended models.
//!
//! Rather than emitting bitmaps, each figure function returns the
//! underlying numeric series (spectra, band-energy ratios, scatter
//! points); the bench binaries print them and `EXPERIMENTS.md` records the
//! qualitative comparison with the paper.

use blurnet_attacks::{AdaptiveObjective, Rp2Attack, Rp2Result};
use blurnet_defenses::{DefendedModel, DefenseKind};
use blurnet_signal::{box_kernel, high_frequency_ratio, log_magnitude_spectrum};
use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::report::{num3, pct};
use crate::{BlurNetError, ModelZoo, Result, Scale, Table};

/// The DCT mask dimensions the Figure 3 sweep evaluates by default.
pub const FIGURE3_DIMS: [usize; 4] = [4, 8, 16, 32];

/// Number of feature-map channels the Figure 2 analysis summarizes by
/// default.
pub const FIGURE2_CHANNELS: usize = 4;

/// Generates the single-image RP2 sticker artifact shared by the Figure 1
/// and Figure 2 analyses: the attack result for the first stop-sign
/// evaluation image at the Table I transfer target. Generation is
/// deterministic, so the two sequential figure runs (which each generate
/// it) and the scheduler (which generates it once) see the same artifact.
///
/// # Errors
///
/// Propagates attack errors; rejects an empty image set.
pub fn sticker_artifact(
    scale: Scale,
    baseline: &DefendedModel,
    images: &[Tensor],
) -> Result<Rp2Result> {
    let image = images
        .first()
        .ok_or_else(|| BlurNetError::BadConfig("no stop-sign image available".into()))?;
    let attack = Rp2Attack::new(scale.rp2_config())?;
    Ok(attack.generate(baseline.network(), image, super::table1::TRANSFER_TARGET)?)
}

/// Radius (as a fraction of Nyquist) separating "low" from "high"
/// frequencies in the band-energy summaries.
const LOW_BAND_RADIUS: f32 = 0.5;

fn grayscale(image: &Tensor) -> Result<Tensor> {
    if image.shape().rank() != 3 {
        return Err(BlurNetError::BadConfig(format!(
            "expected a [C, H, W] image, got {}",
            image.shape()
        )));
    }
    let c = image.dims()[0] as f32;
    let mut acc = image.channel(0)?;
    for ch in 1..image.dims()[0] {
        acc = acc.add(&image.channel(ch)?)?;
    }
    Ok(acc.scale(1.0 / c))
}

/// Figure 1 — input-space spectra of a clean and an RP2-perturbed stop
/// sign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure1 {
    /// High-frequency energy fraction of the clean stop sign.
    pub clean_high_fraction: f32,
    /// High-frequency energy fraction of the perturbed stop sign.
    pub adversarial_high_fraction: f32,
    /// High-frequency energy fraction of the perturbation alone.
    pub perturbation_high_fraction: f32,
    /// Normalized log-magnitude spectrum of the clean sign.
    pub clean_spectrum: Tensor,
    /// Normalized log-magnitude spectrum of the perturbed sign.
    pub adversarial_spectrum: Tensor,
}

impl Figure1 {
    /// Renders the band-energy summary as a table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Figure 1 — input spectrum band energy (high-frequency fraction)",
            &["Image", "High-frequency fraction"],
        );
        table.push_row(vec![
            "Clean stop sign".into(),
            num3(self.clean_high_fraction),
        ]);
        table.push_row(vec![
            "Perturbed stop sign".into(),
            num3(self.adversarial_high_fraction),
        ]);
        table.push_row(vec![
            "Perturbation only".into(),
            num3(self.perturbation_high_fraction),
        ]);
        table
    }
}

/// Runs the Figure 1 analysis.
///
/// # Errors
///
/// Propagates training, attack and FFT errors.
pub fn figure1(zoo: &mut ModelZoo) -> Result<Figure1> {
    let scale = zoo.scale();
    let baseline = zoo.get_or_train(&DefenseKind::Baseline)?;
    let images = super::attack_images(zoo);
    let result = sticker_artifact(scale, &baseline, &images)?;
    figure1_from_parts(&images[0], &result)
}

/// The pure per-cell analysis behind [`figure1`], over a pre-generated
/// sticker artifact.
///
/// # Errors
///
/// Propagates FFT errors.
pub fn figure1_from_parts(image: &Tensor, result: &Rp2Result) -> Result<Figure1> {
    let clean_gray = grayscale(image)?;
    let adv_gray = grayscale(&result.adversarial)?;
    let pert_gray = grayscale(&result.perturbation)?;
    Ok(Figure1 {
        clean_high_fraction: high_frequency_ratio(&clean_gray, LOW_BAND_RADIUS)?,
        adversarial_high_fraction: high_frequency_ratio(&adv_gray, LOW_BAND_RADIUS)?,
        perturbation_high_fraction: if pert_gray.l2_norm() > 0.0 {
            high_frequency_ratio(&pert_gray, LOW_BAND_RADIUS)?
        } else {
            0.0
        },
        clean_spectrum: log_magnitude_spectrum(&clean_gray)?,
        adversarial_spectrum: log_magnitude_spectrum(&adv_gray)?,
    })
}

/// One channel of the Figure 2 feature-map spectrum analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2Channel {
    /// Feature-map channel index.
    pub channel: usize,
    /// High-frequency fraction of the clean feature map.
    pub clean_high_fraction: f32,
    /// High-frequency fraction of the adversarial feature map.
    pub adversarial_high_fraction: f32,
    /// High-frequency fraction of the (adversarial − clean) difference.
    pub difference_high_fraction: f32,
    /// High-frequency fraction of the difference after a 5×5 blur — the
    /// paper's fourth column, showing the blur removes the injected
    /// high-frequency artefacts.
    pub blurred_difference_high_fraction: f32,
}

/// Figure 2 — spectra of first-layer feature maps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2 {
    /// Per-channel band-energy summaries.
    pub channels: Vec<Figure2Channel>,
}

impl Figure2 {
    /// Renders the per-channel summary as a table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Figure 2 — first-layer feature-map spectra (high-frequency fraction)",
            &[
                "Channel",
                "Clean",
                "Adversarial",
                "Difference",
                "Blurred difference",
            ],
        );
        for ch in &self.channels {
            table.push_row(vec![
                ch.channel.to_string(),
                num3(ch.clean_high_fraction),
                num3(ch.adversarial_high_fraction),
                num3(ch.difference_high_fraction),
                num3(ch.blurred_difference_high_fraction),
            ]);
        }
        table
    }

    /// Mean high-frequency fraction of the difference maps before blurring.
    pub fn mean_difference_fraction(&self) -> f32 {
        mean(self.channels.iter().map(|c| c.difference_high_fraction))
    }

    /// Mean high-frequency fraction of the difference maps after blurring.
    pub fn mean_blurred_difference_fraction(&self) -> f32 {
        mean(
            self.channels
                .iter()
                .map(|c| c.blurred_difference_high_fraction),
        )
    }
}

fn mean(values: impl Iterator<Item = f32>) -> f32 {
    let collected: Vec<f32> = values.collect();
    if collected.is_empty() {
        0.0
    } else {
        collected.iter().sum::<f32>() / collected.len() as f32
    }
}

/// Runs the Figure 2 analysis over up to `max_channels` feature maps.
///
/// # Errors
///
/// Propagates training, attack and FFT errors.
pub fn figure2(zoo: &mut ModelZoo, max_channels: usize) -> Result<Figure2> {
    let scale = zoo.scale();
    let mut baseline = zoo.get_or_train(&DefenseKind::Baseline)?;
    let images = super::attack_images(zoo);
    let result = sticker_artifact(scale, &baseline, &images)?;
    figure2_from_parts(&mut baseline, &images[0], &result.adversarial, max_channels)
}

/// The pure per-cell analysis behind [`figure2`], over a pre-generated
/// adversarial image.
///
/// # Errors
///
/// Propagates network and FFT errors.
pub fn figure2_from_parts(
    baseline: &mut DefendedModel,
    image: &Tensor,
    adversarial: &Tensor,
    max_channels: usize,
) -> Result<Figure2> {
    let feature_index = baseline.feature_layer_index();
    let clean_features = layer_activation(baseline, image, feature_index)?;
    let adv_features = layer_activation(baseline, adversarial, feature_index)?;
    let kernel = box_kernel(5);
    let blurred_diff = blurnet_tensor::default_backend()
        .blur_image(&adv_features.sub(&clean_features)?, &kernel)?;

    let channels = clean_features.dims()[0].min(max_channels.max(1));
    let mut rows = Vec::with_capacity(channels);
    for ch in 0..channels {
        let clean = clean_features.channel(ch)?;
        let adv = adv_features.channel(ch)?;
        let diff = adv.sub(&clean)?;
        let blurred = blurred_diff.channel(ch)?;
        rows.push(Figure2Channel {
            channel: ch,
            clean_high_fraction: safe_ratio(&clean)?,
            adversarial_high_fraction: safe_ratio(&adv)?,
            difference_high_fraction: safe_ratio(&diff)?,
            blurred_difference_high_fraction: safe_ratio(&blurred)?,
        });
    }
    Ok(Figure2 { channels: rows })
}

fn safe_ratio(map: &Tensor) -> Result<f32> {
    if map.l2_norm() == 0.0 {
        Ok(0.0)
    } else {
        Ok(high_frequency_ratio(map, LOW_BAND_RADIUS)?)
    }
}

/// Extracts the `[C, H, W]` activation of one layer for one image.
fn layer_activation(
    model: &mut blurnet_defenses::DefendedModel,
    image: &Tensor,
    layer_index: usize,
) -> Result<Tensor> {
    let batch = Tensor::stack(std::slice::from_ref(image))?;
    let (_, activations) = model.network_mut().forward_collect(&batch, false)?;
    let activation = activations.get(layer_index).ok_or_else(|| {
        BlurNetError::BadConfig(format!("layer index {layer_index} out of range"))
    })?;
    Ok(activation.batch_item(0)?)
}

/// Figure 3 — adaptive attack success rate vs DCT mask dimension (7×7
/// depthwise defense).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure3 {
    /// `(mask dimension, worst-case attack success rate)` points.
    pub points: Vec<(usize, f32)>,
}

impl Figure3 {
    /// Renders the sweep as a table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Figure 3 — adaptive ASR vs DCT mask dimension (7x7 depthwise defense)",
            &["DCT mask dim", "Worst-case success rate"],
        );
        for (dim, asr) in &self.points {
            table.push_row(vec![dim.to_string(), pct(*asr)]);
        }
        table
    }
}

/// Runs the Figure 3 sweep over the given mask dimensions.
///
/// # Errors
///
/// Propagates training and attack errors.
pub fn figure3(zoo: &mut ModelZoo, dims: &[usize]) -> Result<Figure3> {
    let scale = zoo.scale();
    let mut model = zoo.get_or_train(&figure3_defense())?;
    let images = super::attack_images(zoo);
    figure3_for_model(scale, &mut model, &images, dims)
}

/// The defense the Figure 3 sweep attacks (the 7×7 depthwise model).
pub fn figure3_defense() -> DefenseKind {
    DefenseKind::DepthwiseLinf {
        kernel: 7,
        alpha: 0.1,
    }
}

/// The pure per-cell sweep behind [`figure3`], against an already-trained
/// 7×7 depthwise model.
///
/// # Errors
///
/// Rejects an empty dimension list; propagates attack errors.
pub fn figure3_for_model(
    scale: Scale,
    model: &mut DefendedModel,
    images: &[Tensor],
    dims: &[usize],
) -> Result<Figure3> {
    if dims.is_empty() {
        return Err(BlurNetError::BadConfig("no DCT dimensions supplied".into()));
    }
    let targets = scale.attack_targets();
    let mut points = Vec::with_capacity(dims.len());
    for &dim in dims {
        let attack = super::rp2_with_objective(scale, AdaptiveObjective::LowFrequencyDct { dim })?;
        let sweep = super::sweep_defended(model, &attack, images, &targets)?;
        points.push((dim, sweep.worst_success_rate()));
    }
    Ok(Figure3 { points })
}

/// Figure 4 — spectra of second-layer feature maps on a clean stop sign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4 {
    /// Mean high-frequency fraction of the first-layer feature maps.
    pub first_layer_mean_fraction: f32,
    /// Mean high-frequency fraction of the second-layer feature maps.
    pub second_layer_mean_fraction: f32,
    /// Per-channel high-frequency fraction of the second-layer maps.
    pub second_layer_fractions: Vec<f32>,
}

impl Figure4 {
    /// Renders the comparison as a table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Figure 4 — higher layers carry more high-frequency content",
            &["Layer", "Mean high-frequency fraction"],
        );
        table.push_row(vec![
            "First-layer feature maps".into(),
            num3(self.first_layer_mean_fraction),
        ]);
        table.push_row(vec![
            "Second-layer feature maps".into(),
            num3(self.second_layer_mean_fraction),
        ]);
        table
    }
}

/// Runs the Figure 4 analysis.
///
/// # Errors
///
/// Propagates training and FFT errors.
pub fn figure4(zoo: &mut ModelZoo) -> Result<Figure4> {
    let mut baseline = zoo.get_or_train(&DefenseKind::Baseline)?;
    let image = super::attack_images(zoo)
        .into_iter()
        .next()
        .ok_or_else(|| BlurNetError::BadConfig("no stop-sign image available".into()))?;
    figure4_for_model(&mut baseline, &image)
}

/// The pure per-cell analysis behind [`figure4`], against an
/// already-trained baseline.
///
/// # Errors
///
/// Propagates network and FFT errors.
pub fn figure4_for_model(baseline: &mut DefendedModel, image: &Tensor) -> Result<Figure4> {
    let first_index = baseline.feature_layer_index();
    let second_index = baseline.arch().second_conv_layer_index();
    let first = layer_activation(baseline, image, first_index)?;
    let second = layer_activation(baseline, image, second_index)?;

    let first_fractions: Vec<f32> = (0..first.dims()[0])
        .map(|ch| safe_ratio(&first.channel(ch)?))
        .collect::<Result<_>>()?;
    let second_fractions: Vec<f32> = (0..second.dims()[0])
        .map(|ch| safe_ratio(&second.channel(ch)?))
        .collect::<Result<_>>()?;
    Ok(Figure4 {
        first_layer_mean_fraction: mean(first_fractions.iter().copied()),
        second_layer_mean_fraction: mean(second_fractions.iter().copied()),
        second_layer_fractions: second_fractions,
    })
}

/// One scatter series of Figures 5–6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScatterSeries {
    /// Defense label.
    pub defense: String,
    /// `(L2 dissimilarity, targeted success rate)` per attack target.
    pub points: Vec<(f32, f32)>,
}

/// Figures 5 and 6 — per-target success rate vs L2 dissimilarity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure5And6 {
    /// Series for the depthwise-convolution and TV models (Figure 5).
    pub figure5: Vec<ScatterSeries>,
    /// Series for the Tikhonov and Gaussian-augmented models (Figure 6).
    pub figure6: Vec<ScatterSeries>,
}

impl Figure5And6 {
    /// Renders both scatters as one table (`figure` column distinguishes
    /// them).
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Figures 5-6 — per-target ASR vs L2 dissimilarity",
            &["Figure", "Defense", "Target point (L2, ASR)"],
        );
        for (figure, series_set) in [("5", &self.figure5), ("6", &self.figure6)] {
            for series in series_set {
                for (l2, asr) in &series.points {
                    table.push_row(vec![
                        figure.to_string(),
                        series.defense.clone(),
                        format!("({}, {})", num3(*l2), pct(*asr)),
                    ]);
                }
            }
        }
        table
    }
}

/// Runs the Figures 5–6 sweeps.
///
/// # Errors
///
/// Propagates training and attack errors.
pub fn figure5_and_6(zoo: &mut ModelZoo) -> Result<Figure5And6> {
    Ok(Figure5And6 {
        figure5: scatter_series(zoo, &figure5_defenses())?,
        figure6: scatter_series(zoo, &figure6_defenses())?,
    })
}

/// The defenses plotted by Figure 5 (depthwise and TV models), in order.
pub fn figure5_defenses() -> Vec<DefenseKind> {
    vec![
        DefenseKind::DepthwiseLinf {
            kernel: 3,
            alpha: 1e-5,
        },
        DefenseKind::DepthwiseLinf {
            kernel: 5,
            alpha: 0.1,
        },
        DefenseKind::DepthwiseLinf {
            kernel: 7,
            alpha: 0.1,
        },
        DefenseKind::TotalVariation { alpha: 1e-4 },
        DefenseKind::TotalVariation { alpha: 1e-5 },
    ]
}

/// The defenses plotted by Figure 6 (Tikhonov and Gaussian-augmented
/// models), in order.
pub fn figure6_defenses() -> Vec<DefenseKind> {
    vec![
        DefenseKind::TikhonovHf {
            alpha: 1e-4,
            window: 3,
        },
        DefenseKind::TikhonovPseudo { alpha: 1e-6 },
        DefenseKind::GaussianAugmentation { sigma: 0.1 },
        DefenseKind::GaussianAugmentation { sigma: 0.2 },
        DefenseKind::GaussianAugmentation { sigma: 0.3 },
    ]
}

fn scatter_series(zoo: &mut ModelZoo, defenses: &[DefenseKind]) -> Result<Vec<ScatterSeries>> {
    let scale = zoo.scale();
    let images = super::attack_images(zoo);
    let mut out = Vec::with_capacity(defenses.len());
    for defense in defenses {
        let mut model = zoo.get_or_train(defense)?;
        out.push(scatter_series_for_model(scale, &mut model, &images)?);
    }
    Ok(out)
}

/// The pure per-cell sweep behind one scatter series of Figures 5–6:
/// the standard white-box RP2 sweep with per-target points kept.
///
/// # Errors
///
/// Propagates attack errors.
pub fn scatter_series_for_model(
    scale: Scale,
    model: &mut DefendedModel,
    images: &[Tensor],
) -> Result<ScatterSeries> {
    let targets = scale.attack_targets();
    let attack = super::rp2_with_objective(scale, AdaptiveObjective::Standard)?;
    let defense = model.defense().label();
    let sweep = super::sweep_defended(model, &attack, images, &targets)?;
    Ok(ScatterSeries {
        defense,
        points: sweep
            .per_target
            .iter()
            .map(|(_, e)| (e.l2_dissimilarity, e.success_rate))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn grayscale_averages_channels() {
        let mut image = Tensor::zeros(&[3, 4, 4]);
        image.set(&[0, 0, 0], 0.9).unwrap();
        image.set(&[1, 0, 0], 0.3).unwrap();
        let gray = grayscale(&image).unwrap();
        assert!((gray.get(&[0, 0]).unwrap() - 0.4).abs() < 1e-6);
        assert!(grayscale(&Tensor::zeros(&[4, 4])).is_err());
    }

    #[test]
    fn figure1_reports_spike_in_high_frequency_energy() {
        let mut zoo = ModelZoo::new(Scale::Smoke, 23).unwrap();
        let fig = figure1(&mut zoo).unwrap();
        assert!(fig.clean_high_fraction >= 0.0 && fig.clean_high_fraction <= 1.0);
        assert_eq!(fig.clean_spectrum.dims(), fig.adversarial_spectrum.dims());
        assert!(fig.table().to_string().contains("Perturbation only"));
    }

    #[test]
    fn figure4_uses_both_layers() {
        let mut zoo = ModelZoo::new(Scale::Smoke, 23).unwrap();
        let fig = figure4(&mut zoo).unwrap();
        assert!(!fig.second_layer_fractions.is_empty());
        assert!(fig.first_layer_mean_fraction >= 0.0);
        assert!(fig.second_layer_mean_fraction >= 0.0);
    }

    #[test]
    fn figure3_rejects_empty_dims() {
        let mut zoo = ModelZoo::new(Scale::Smoke, 23).unwrap();
        assert!(figure3(&mut zoo, &[]).is_err());
    }
}
