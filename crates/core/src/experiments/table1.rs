//! Table I — black-box transfer: filtering the input vs filtering the
//! first-layer feature maps.
//!
//! Adversarial stop signs are generated with RP2 on the undefended
//! baseline (λ = 0.002) and transferred to victims that share the
//! baseline's weights but add a blur filter either at the input or on the
//! first-layer feature maps. The paper's finding: feature-map filtering
//! (especially 5×5) cuts the transfer success rate far more than input
//! filtering at the same kernel size, at a modest accuracy cost.

use blurnet_attacks::{Rp2Attack, TransferSet};
use blurnet_data::STOP_CLASS_ID;
use blurnet_defenses::{DefendedModel, DefenseKind};
use blurnet_nn::model::FilterLayer;
use blurnet_nn::DepthwiseConv2d;
use blurnet_signal::box_kernel;
use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::report::pct;
use crate::{BatchRunner, ModelZoo, Result, Scale, Table};

/// Target class used when generating the transferred examples
/// (speedLimit25 — an arbitrary non-stop class, as in the RP2 setup).
pub const TRANSFER_TARGET: usize = 12;

/// The five victims of Table I, as declarative cell parameters: every row
/// of the table is "evaluate the shared transfer set against this victim".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Table1Victim {
    /// The undefended surrogate itself.
    Baseline,
    /// The baseline behind an input-space blur of the given kernel size.
    InputFilter {
        /// Blur kernel size.
        kernel: usize,
    },
    /// The baseline with a frozen blur inserted on the first-layer feature
    /// maps.
    FeatureFilter {
        /// Blur kernel size.
        kernel: usize,
    },
}

impl Table1Victim {
    /// The victims in the paper's row order.
    pub fn roster() -> Vec<Table1Victim> {
        vec![
            Table1Victim::Baseline,
            Table1Victim::InputFilter { kernel: 3 },
            Table1Victim::InputFilter { kernel: 5 },
            Table1Victim::FeatureFilter { kernel: 3 },
            Table1Victim::FeatureFilter { kernel: 5 },
        ]
    }

    /// The paper's row label for this victim.
    pub fn label(&self) -> String {
        match self {
            Table1Victim::Baseline => "Baseline".to_string(),
            Table1Victim::InputFilter { kernel } => format!("Input filter {kernel}x{kernel}"),
            Table1Victim::FeatureFilter { kernel } => {
                format!("{kernel}x{kernel} filter on L1 maps")
            }
        }
    }

    /// Builds the victim model from the trained baseline (weight-sharing,
    /// no retraining — exactly the Table I setting).
    ///
    /// # Errors
    ///
    /// Propagates layer-construction errors.
    pub fn build(&self, baseline: &DefendedModel) -> Result<DefendedModel> {
        match self {
            Table1Victim::Baseline => Ok(baseline.clone()),
            Table1Victim::InputFilter { kernel } => Ok(input_filter_victim(baseline, *kernel)),
            Table1Victim::FeatureFilter { kernel } => feature_filter_victim(baseline, *kernel),
        }
    }
}

/// Generates the shared Table I transfer artifact: RP2 on the undefended
/// baseline over the stop-sign evaluation images, at the paper's transfer
/// target. Generation is deterministic, so every caller producing this
/// artifact from the same baseline and images gets bit-identical examples.
///
/// # Errors
///
/// Propagates attack-generation errors.
pub fn transfer_set(
    scale: Scale,
    baseline: &DefendedModel,
    images: &[Tensor],
) -> Result<TransferSet> {
    let attack = Rp2Attack::new(scale.rp2_config())?;
    let labels = vec![STOP_CLASS_ID; images.len()];
    Ok(TransferSet::generate(
        baseline.network(),
        &attack,
        images,
        &labels,
        TRANSFER_TARGET,
    )?)
}

/// Evaluates the shared transfer artifact against one victim — the work of
/// a single Table I cell.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn victim_row(
    victim: &Table1Victim,
    baseline: &DefendedModel,
    set: &TransferSet,
) -> Result<Table1Row> {
    let mut model = victim.build(baseline)?;
    let report = BatchRunner::new(&mut model).transfer_set(set)?;
    Ok(Table1Row {
        defense: victim.label(),
        accuracy: report.clean_accuracy,
        attack_success_rate: report.attack_success_rate,
    })
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Victim label (baseline / input filter / feature-map filter).
    pub defense: String,
    /// Victim accuracy on the clean stop-sign evaluation images.
    pub accuracy: f32,
    /// Fraction of victim predictions the transferred examples changed.
    pub attack_success_rate: f32,
}

/// The reproduced Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows in the paper's order.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Renders the result as a printable table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Table I — black-box transfer (RP2 generated on the baseline)",
            &["Defense", "Accuracy", "Attack Success Rate"],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.defense.clone(),
                pct(row.accuracy),
                pct(row.attack_success_rate),
            ]);
        }
        table
    }

    /// The values reported in the paper, for side-by-side comparison.
    pub fn paper_reference() -> Table {
        let mut table = Table::new(
            "Table I (paper)",
            &["Defense", "Accuracy", "Attack Success Rate"],
        );
        for (d, a, s) in [
            ("Baseline", "100%", "90%"),
            ("Input filter 3x3", "100%", "87.5%"),
            ("Input filter 5x5", "100%", "67.5%"),
            ("3x3 filter on L1 maps", "100%", "65%"),
            ("5x5 filter on L1 maps", "87.5%", "17.5%"),
        ] {
            table.push_row(vec![d.to_string(), a.to_string(), s.to_string()]);
        }
        table
    }
}

/// Builds a feature-map-filter victim sharing the baseline's weights: the
/// trained network with a frozen blur layer inserted after conv1, without
/// retraining (exactly the Table I setting).
pub fn feature_filter_victim(baseline: &DefendedModel, kernel: usize) -> Result<DefendedModel> {
    let mut net = baseline.network().clone();
    let blur = box_kernel(kernel);
    let channels = baseline.arch().conv1_filters;
    net.insert(1, DepthwiseConv2d::fixed_kernel(channels, &blur)?);
    let mut arch = baseline.arch().clone();
    arch.filter_layer = FilterLayer::FixedBlur { kernel: blur };
    Ok(DefendedModel::new(
        net,
        DefenseKind::FeatureFilter { kernel },
        arch,
        baseline.training_report().clone(),
    ))
}

/// Builds an input-filter victim sharing the baseline's weights.
pub fn input_filter_victim(baseline: &DefendedModel, kernel: usize) -> DefendedModel {
    DefendedModel::new(
        baseline.network().clone(),
        DefenseKind::InputFilter { kernel },
        baseline.arch().clone(),
        baseline.training_report().clone(),
    )
}

/// Runs the Table I experiment.
///
/// # Errors
///
/// Propagates training, attack and evaluation errors.
pub fn run(zoo: &mut ModelZoo) -> Result<Table1> {
    let scale = zoo.scale();
    let baseline = zoo.get_or_train(&DefenseKind::Baseline)?;
    let images = super::attack_images(zoo);

    // Surrogate generation on the undefended network — the shared artifact
    // every victim row reuses.
    let set = transfer_set(scale, &baseline, &images)?;

    let mut rows = Vec::new();
    for victim in Table1Victim::roster() {
        rows.push(victim_row(&victim, &baseline, &set)?);
    }
    Ok(Table1 { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn paper_reference_has_five_rows() {
        assert_eq!(Table1::paper_reference().len(), 5);
    }

    #[test]
    fn victims_share_weights_with_the_baseline() {
        let mut zoo = ModelZoo::new(Scale::Smoke, 9).unwrap();
        let baseline = zoo.get_or_train(&DefenseKind::Baseline).unwrap();
        let input = input_filter_victim(&baseline, 3);
        assert_eq!(
            input.network().to_bytes().unwrap(),
            baseline.network().to_bytes().unwrap()
        );
        let feature = feature_filter_victim(&baseline, 5).unwrap();
        assert_eq!(feature.network().len(), baseline.network().len() + 1);
        assert_eq!(feature.arch().filter_layer_index(), Some(1));
    }

    #[test]
    fn smoke_run_produces_all_rows() {
        let mut zoo = ModelZoo::new(Scale::Smoke, 9).unwrap();
        let result = run(&mut zoo).unwrap();
        assert_eq!(result.rows.len(), 5);
        for row in &result.rows {
            assert!((0.0..=1.0).contains(&row.accuracy));
            assert!((0.0..=1.0).contains(&row.attack_success_rate));
        }
        let rendered = result.table().to_string();
        assert!(rendered.contains("5x5 filter on L1 maps"));
    }
}
