//! Table IV (supplementary) — PGD breaks every defense.
//!
//! Under the standard ε-bounded pixel adversary (ε = 8/255, α = 0.01, 10
//! steps) all BlurNet defenses fail: the perturbation is no longer a
//! localized sticker, so smoothing the feature maps cannot remove it. The
//! paper uses this to argue that defenses must be tailored to a threat
//! model.

use blurnet_attacks::PgdAttack;
use blurnet_data::STOP_CLASS_ID;
use blurnet_defenses::{DefendedModel, DefenseKind};
use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::report::{num3, pct};
use crate::{BatchRunner, ModelZoo, Result, Scale, Table};

/// One row of Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Defense label.
    pub defense: String,
    /// PGD (untargeted) attack success rate.
    pub attack_success_rate: f32,
    /// Mean relative L2 dissimilarity of the PGD examples.
    pub l2_dissimilarity: f32,
}

/// The reproduced Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4 {
    /// Rows in the paper's order.
    pub rows: Vec<Table4Row>,
}

impl Table4 {
    /// Renders the result as a printable table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Table IV — PGD evaluation (epsilon = 8/255)",
            &["Defense", "Attack Success Rate", "L2 Dissimilarity"],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.defense.clone(),
                pct(row.attack_success_rate),
                num3(row.l2_dissimilarity),
            ]);
        }
        table
    }

    /// The paper's values for side-by-side comparison.
    pub fn paper_reference() -> Table {
        let mut table = Table::new("Table IV (paper)", &["Defense", "ASR", "L2"]);
        for (d, s, l2) in [
            ("Baseline", "100%", "0.53"),
            ("3x3 conv", "100%", "0.512"),
            ("5x5 conv", "100%", "0.502"),
            ("7x7 conv", "100%", "0.511"),
            ("TV (1e-4)", "100%", "0.455"),
            ("TV (1e-5)", "100%", "0.437"),
            ("Tik_hf", "100%", "0.464"),
            ("Tik_pseudo", "100%", "0.443"),
        ] {
            table.push_row(vec![d.to_string(), s.to_string(), l2.to_string()]);
        }
        table
    }
}

/// Runs the PGD evaluation for one defense.
///
/// # Errors
///
/// Propagates training and attack errors.
pub fn run_defense(zoo: &mut ModelZoo, defense: &DefenseKind) -> Result<Table4Row> {
    let scale = zoo.scale();
    let mut model = zoo.get_or_train(defense)?;
    let images = super::attack_images(zoo);
    row_for_model(scale, &mut model, &images)
}

/// The pure per-cell evaluation behind [`run_defense`]: the ε-bounded PGD
/// adversary against an already-trained model. Both the sequential path
/// and the experiment scheduler execute a Table IV cell through this exact
/// function.
///
/// # Errors
///
/// Propagates attack errors.
pub fn row_for_model(
    scale: Scale,
    model: &mut DefendedModel,
    images: &[Tensor],
) -> Result<Table4Row> {
    let labels = vec![STOP_CLASS_ID; images.len()];
    let attack = PgdAttack::new(scale.pgd_config())?;
    let defense = model.defense().label();
    let eval = BatchRunner::new(model).pgd_evaluate(&attack, images, &labels)?;
    Ok(Table4Row {
        defense,
        attack_success_rate: eval.success_rate,
        l2_dissimilarity: eval.l2_dissimilarity,
    })
}

/// Runs the full Table IV experiment (baseline plus the BlurNet defenses).
///
/// # Errors
///
/// Propagates training and attack errors.
pub fn run(zoo: &mut ModelZoo) -> Result<Table4> {
    let mut rows = vec![run_defense(zoo, &DefenseKind::Baseline)?];
    for defense in super::blurnet_defenses(zoo.scale()) {
        rows.push(run_defense(zoo, &defense)?);
    }
    Ok(Table4 { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn paper_reference_reports_total_break() {
        let reference = Table4::paper_reference();
        assert_eq!(reference.len(), 8);
        assert!(reference.to_string().matches("100%").count() >= 8);
    }

    #[test]
    fn pgd_row_runs_at_smoke_scale() {
        let mut zoo = ModelZoo::new(Scale::Smoke, 17).unwrap();
        let row = run_defense(&mut zoo, &DefenseKind::Baseline).unwrap();
        assert!((0.0..=1.0).contains(&row.attack_success_rate));
        assert!(row.l2_dissimilarity >= 0.0);
    }
}
