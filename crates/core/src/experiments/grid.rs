//! Declarative experiment grids: every table row and figure sweep as a
//! cell spec.
//!
//! A [`CellSpec`] names one unit of evaluation work — a (model variant ×
//! attack × metric) cell of a paper table, or one figure analysis/series —
//! without running anything. The specs are executed either sequentially
//! ([`ExperimentGrid::run_sequential`], the reference path driving one
//! [`crate::ModelZoo`] through the same `BatchRunner` calls the table
//! modules always used) or concurrently by the
//! [`crate::ExperimentScheduler`], which turns the same specs into a DAG
//! over shared artifacts. Both paths execute a cell through the **same**
//! per-cell function in the table/figure modules, which is what makes
//! their [`RunReport`]s bit-identical.

use blurnet_attacks::{Rp2Result, TransferSet};
use blurnet_defenses::{DefendedModel, DefenseKind};
use blurnet_tensor::Tensor;

use crate::experiments::table1::Table1Victim;
use crate::experiments::table5::Table5Attack;
use crate::experiments::{figures, table1, table2, table3, table4, table5};
use crate::report::{CellOutput, CellReport, CellStatus, RunReport, RESULTS_SCHEMA};
use crate::{BlurNetError, ModelZoo, Result, Scale};

/// One experiment cell, declaratively.
#[derive(Debug, Clone, PartialEq)]
pub enum CellKind {
    /// A Table I victim row (needs the shared transfer artifact).
    Table1(Table1Victim),
    /// A Table II white-box row for one defense.
    Table2(DefenseKind),
    /// A Table III adaptive row for one defense.
    Table3(DefenseKind),
    /// A Table IV PGD row for one defense.
    Table4(DefenseKind),
    /// A Table V adaptive adversary against the adversarially-trained
    /// model.
    Table5(Table5Attack),
    /// The Figure 1 input-spectrum analysis (needs the sticker artifact).
    Figure1,
    /// The Figure 2 feature-map-spectrum analysis (needs the sticker
    /// artifact).
    Figure2 {
        /// Number of channels to summarize.
        max_channels: usize,
    },
    /// The Figure 3 DCT-dimension sweep on the 7×7 depthwise model.
    Figure3 {
        /// The mask dimensions to sweep.
        dims: Vec<usize>,
    },
    /// The Figure 4 layer-depth spectrum comparison.
    Figure4,
    /// One scatter series of Figure 5 or 6 (the owning figure is the
    /// cell's `experiment` string, which is also how the report renders
    /// the two figures' series apart).
    Scatter {
        /// The defense whose sweep is plotted.
        defense: DefenseKind,
    },
}

/// A named cell in a grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// The experiment the cell belongs to (`"table1"` … `"figure6"`).
    pub experiment: &'static str,
    /// Row/series label within the experiment.
    pub label: String,
    /// What the cell evaluates.
    pub kind: CellKind,
}

impl CellSpec {
    /// The trained model variant this cell evaluates.
    pub fn required_defense(&self, scale: Scale) -> DefenseKind {
        match &self.kind {
            CellKind::Table1(_) | CellKind::Figure1 | CellKind::Figure2 { .. } => {
                DefenseKind::Baseline
            }
            CellKind::Figure4 => DefenseKind::Baseline,
            CellKind::Table2(d) | CellKind::Table3(d) | CellKind::Table4(d) => d.clone(),
            CellKind::Table5(_) => table5::defense_for(scale),
            CellKind::Figure3 { .. } => figures::figure3_defense(),
            CellKind::Scatter { defense } => defense.clone(),
        }
    }

    /// Whether the cell consumes the shared Table I transfer artifact.
    pub fn needs_transfer_set(&self) -> bool {
        matches!(self.kind, CellKind::Table1(_))
    }

    /// Whether the cell consumes the shared single-image sticker artifact.
    pub fn needs_sticker_artifact(&self) -> bool {
        matches!(self.kind, CellKind::Figure1 | CellKind::Figure2 { .. })
    }
}

/// Executes one cell against an already-trained model clone and
/// pre-generated artifacts. This is the **single** cell-execution path:
/// both [`ExperimentGrid::run_sequential`] and the scheduler call it, so
/// the two can never drift.
///
/// # Errors
///
/// Returns [`BlurNetError::BadConfig`] when a required artifact is
/// missing; propagates evaluation errors.
pub(crate) fn execute_cell(
    kind: &CellKind,
    scale: Scale,
    images: &[Tensor],
    model: &mut DefendedModel,
    transfer: Option<&TransferSet>,
    sticker: Option<&Rp2Result>,
) -> Result<CellOutput> {
    let missing = |what: &str| BlurNetError::BadConfig(format!("missing {what} artifact"));
    Ok(match kind {
        CellKind::Table1(victim) => {
            let set = transfer.ok_or_else(|| missing("transfer-set"))?;
            CellOutput::Table1(table1::victim_row(victim, model, set)?)
        }
        CellKind::Table2(_) => CellOutput::Table2(table2::row_for_model(scale, model, images)?),
        CellKind::Table3(_) => CellOutput::Table3(table3::row_for_model(scale, model, images)?),
        CellKind::Table4(_) => CellOutput::Table4(table4::row_for_model(scale, model, images)?),
        CellKind::Table5(attack) => {
            CellOutput::Table5(table5::row_for_model(scale, model, images, *attack)?)
        }
        CellKind::Figure1 => {
            let result = sticker.ok_or_else(|| missing("sticker"))?;
            let image = images
                .first()
                .ok_or_else(|| BlurNetError::BadConfig("no stop-sign image available".into()))?;
            CellOutput::Figure1(figures::figure1_from_parts(image, result)?)
        }
        CellKind::Figure2 { max_channels } => {
            let result = sticker.ok_or_else(|| missing("sticker"))?;
            let image = images
                .first()
                .cloned()
                .ok_or_else(|| BlurNetError::BadConfig("no stop-sign image available".into()))?;
            CellOutput::Figure2(figures::figure2_from_parts(
                model,
                &image,
                &result.adversarial,
                *max_channels,
            )?)
        }
        CellKind::Figure3 { dims } => {
            CellOutput::Figure3(figures::figure3_for_model(scale, model, images, dims)?)
        }
        CellKind::Figure4 => {
            let image = images
                .first()
                .cloned()
                .ok_or_else(|| BlurNetError::BadConfig("no stop-sign image available".into()))?;
            CellOutput::Figure4(figures::figure4_for_model(model, &image)?)
        }
        CellKind::Scatter { .. } => {
            CellOutput::Scatter(figures::scatter_series_for_model(scale, model, images)?)
        }
    })
}

/// An ordered set of cell specs — the declarative form of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentGrid {
    cells: Vec<CellSpec>,
}

impl ExperimentGrid {
    /// A grid from explicit cells.
    pub fn custom(cells: Vec<CellSpec>) -> Self {
        ExperimentGrid { cells }
    }

    /// The cells, in report order.
    pub fn cells(&self) -> &[CellSpec] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The full paper grid: every row of Tables I–V plus the Figure 1–6
    /// analyses and sweeps.
    pub fn full(scale: Scale) -> Self {
        let mut cells = Self::tables(scale).cells;
        cells.push(CellSpec {
            experiment: "figure1",
            label: "input spectrum".into(),
            kind: CellKind::Figure1,
        });
        cells.push(CellSpec {
            experiment: "figure2",
            label: "feature-map spectra".into(),
            kind: CellKind::Figure2 {
                max_channels: figures::FIGURE2_CHANNELS,
            },
        });
        cells.push(CellSpec {
            experiment: "figure3",
            label: "DCT sweep (7x7 depthwise)".into(),
            kind: CellKind::Figure3 {
                dims: figures::FIGURE3_DIMS.to_vec(),
            },
        });
        cells.push(CellSpec {
            experiment: "figure4",
            label: "second-layer spectra".into(),
            kind: CellKind::Figure4,
        });
        for defense in figures::figure5_defenses() {
            cells.push(CellSpec {
                experiment: "figure5",
                label: defense.label(),
                kind: CellKind::Scatter { defense },
            });
        }
        for defense in figures::figure6_defenses() {
            cells.push(CellSpec {
                experiment: "figure6",
                label: defense.label(),
                kind: CellKind::Scatter { defense },
            });
        }
        ExperimentGrid { cells }
    }

    /// The table-only grid: every row of Tables I–V.
    pub fn tables(scale: Scale) -> Self {
        let mut cells = Vec::new();
        for victim in Table1Victim::roster() {
            cells.push(CellSpec {
                experiment: "table1",
                label: victim.label(),
                kind: CellKind::Table1(victim),
            });
        }
        for defense in super::table2_defenses(scale) {
            cells.push(CellSpec {
                experiment: "table2",
                label: defense.label(),
                kind: CellKind::Table2(defense),
            });
        }
        for defense in super::blurnet_defenses(scale) {
            cells.push(CellSpec {
                experiment: "table3",
                label: defense.label(),
                kind: CellKind::Table3(defense),
            });
        }
        cells.push(CellSpec {
            experiment: "table4",
            label: DefenseKind::Baseline.label(),
            kind: CellKind::Table4(DefenseKind::Baseline),
        });
        for defense in super::blurnet_defenses(scale) {
            cells.push(CellSpec {
                experiment: "table4",
                label: defense.label(),
                kind: CellKind::Table4(defense),
            });
        }
        for attack in Table5Attack::roster() {
            cells.push(CellSpec {
                experiment: "table5",
                label: attack.label().to_string(),
                kind: CellKind::Table5(attack),
            });
        }
        ExperimentGrid { cells }
    }

    /// The seeded micro-grid the golden reproduction tests pin: 2 defenses
    /// (5×5 depthwise, TV 1e-4) × 2 attacks (white-box RP2 via Table II,
    /// PGD via Table IV).
    pub fn micro() -> Self {
        let defenses = [
            DefenseKind::DepthwiseLinf {
                kernel: 5,
                alpha: 0.1,
            },
            DefenseKind::TotalVariation { alpha: 1e-4 },
        ];
        let mut cells = Vec::new();
        for defense in &defenses {
            cells.push(CellSpec {
                experiment: "table2",
                label: defense.label(),
                kind: CellKind::Table2(defense.clone()),
            });
        }
        for defense in &defenses {
            cells.push(CellSpec {
                experiment: "table4",
                label: defense.label(),
                kind: CellKind::Table4(defense.clone()),
            });
        }
        ExperimentGrid { cells }
    }

    /// Executes the grid sequentially — the reference path: one
    /// [`ModelZoo`] trains variants on demand, cells run one after another
    /// in grid order through the same per-cell functions the scheduler
    /// uses, and the shared attack artifacts (the Table I transfer set,
    /// the Figure 1/2 sticker) are each generated once per run, exactly
    /// like the scheduler's artifact nodes.
    ///
    /// # Errors
    ///
    /// Unlike the scheduler (which isolates per-cell failures into the
    /// report), the sequential path fails fast on the first error —
    /// matching the old `table*::run` behavior.
    pub fn run_sequential(&self, zoo: &mut ModelZoo) -> Result<RunReport> {
        let scale = zoo.scale();
        let images = super::attack_images(zoo);
        let mut transfer: Option<TransferSet> = None;
        let mut sticker: Option<Rp2Result> = None;
        let mut cells = Vec::with_capacity(self.cells.len());
        for spec in &self.cells {
            let mut model = zoo.get_or_train(&spec.required_defense(scale))?;
            if spec.needs_transfer_set() && transfer.is_none() {
                let baseline = zoo.get_or_train(&DefenseKind::Baseline)?;
                transfer = Some(table1::transfer_set(scale, &baseline, &images)?);
            }
            // Generated once per run, like the scheduler's artifact node
            // (generation is deterministic, so sharing vs regenerating per
            // consumer cannot change a single byte of the report).
            if spec.needs_sticker_artifact() && sticker.is_none() {
                let baseline = zoo.get_or_train(&DefenseKind::Baseline)?;
                sticker = Some(figures::sticker_artifact(scale, &baseline, &images)?);
            }
            let output = execute_cell(
                &spec.kind,
                scale,
                &images,
                &mut model,
                transfer.as_ref(),
                sticker.as_ref(),
            )?;
            cells.push(CellReport {
                experiment: spec.experiment.to_string(),
                label: spec.label.clone(),
                status: CellStatus::Ok,
                output: Some(output),
            });
        }
        Ok(RunReport {
            schema: RESULTS_SCHEMA.to_string(),
            scale: scale.to_string(),
            seed: zoo.seed(),
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_covers_every_table_row_and_figure() {
        let grid = ExperimentGrid::full(Scale::Smoke);
        // 5 (t1) + 15 (t2) + 7 (t3) + 8 (t4) + 3 (t5) = 38 table cells,
        // plus 4 figure analyses and 10 scatter series.
        assert_eq!(grid.len(), 38 + 4 + 10);
        assert_eq!(
            grid.cells()
                .iter()
                .filter(|c| c.experiment == "table2")
                .count(),
            15
        );
        assert_eq!(
            grid.cells()
                .iter()
                .filter(|c| c.experiment == "figure5")
                .count(),
            5
        );
        assert!(!grid.is_empty());
    }

    #[test]
    fn micro_grid_is_two_defenses_by_two_attacks() {
        let grid = ExperimentGrid::micro();
        assert_eq!(grid.len(), 4);
        let experiments: Vec<&str> = grid.cells().iter().map(|c| c.experiment).collect();
        assert_eq!(experiments, ["table2", "table2", "table4", "table4"]);
    }

    #[test]
    fn required_defenses_dedup_to_the_zoo_roster() {
        let grid = ExperimentGrid::full(Scale::Smoke);
        let mut labels: Vec<String> = grid
            .cells()
            .iter()
            .map(|c| c.required_defense(Scale::Smoke).label())
            .collect();
        labels.sort();
        labels.dedup();
        // The full grid trains exactly the Table II roster (which includes
        // the baseline and the adversarial-training model).
        assert_eq!(labels.len(), 15);
    }

    #[test]
    fn artifact_needs_are_limited_to_their_consumers() {
        let grid = ExperimentGrid::full(Scale::Smoke);
        assert_eq!(
            grid.cells()
                .iter()
                .filter(|c| c.needs_transfer_set())
                .count(),
            5
        );
        assert_eq!(
            grid.cells()
                .iter()
                .filter(|c| c.needs_sticker_artifact())
                .count(),
            2
        );
    }
}
