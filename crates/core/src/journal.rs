//! The crash-safe run journal: an append-only, per-record-checksummed
//! write-ahead log of completed experiment cells.
//!
//! PR 8's `--resume` assumes the prior run lived long enough to write a
//! complete `results.json`; a SIGKILL/OOM halfway through the grid throws
//! away every finished cell. The journal closes that gap: the scheduler
//! writes one **header record** (schema/scale/seed/grid size) when a run
//! starts and one **cell record** per successfully completed cell as
//! cells finish — each record fsynced before the run proceeds — so a run
//! interrupted *anywhere* leaves a durable, verifiable prefix of its
//! work that `--resume` replays.
//!
//! # Format (`BNJL`, version 1)
//!
//! A journal is a sequence of [`frame_record`] records:
//!
//! ```text
//! magic      4 bytes   b"BNJL"
//! version    u16 LE    1
//! kind       u8        0 = header, 1 = cell
//! len        u64 LE    payload byte count
//! payload    len bytes (JSON: a JournalHeader / a CellReport)
//! checksum   u64 LE    FNV-1a over magic..payload
//! ```
//!
//! # Reader contract
//!
//! The reader is **torn-tail-tolerant**: a record that is truncated,
//! bit-rotted or otherwise malformed ends the journal at the last valid
//! record before it — a crash mid-append loses at most the record being
//! appended, never the prefix, and never panics the reader. Structural
//! violations that no crash can produce (a cell record before the
//! header, a second header, a checksummed-but-unparseable payload) are
//! **typed errors** ([`JournalError`]) instead: they mean a foreign or
//! corrupted-by-software file, which must not be silently half-trusted.
//!
//! # Durability contract
//!
//! * [`JournalWriter::create`] truncates, writes the header record, and
//!   fsyncs both the file and its parent directory.
//! * [`JournalWriter::append_cell`] writes one record and fsyncs the file
//!   data before returning — when a cell's record is observed by the run,
//!   it survives a crash.
//! * Appends are **best-effort**: an I/O failure retires the journal
//!   (removing the file so a later `--resume` never sees a journal that
//!   silently disagrees with `results.json`) and the run continues.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use blurnet_tensor::persist::{frame_record, read_record};
use serde::{Deserialize, Serialize};

use crate::report::{CellReport, RunReport};
use crate::{BlurNetError, Result};

/// Magic bytes opening every journal record.
pub const JOURNAL_MAGIC: [u8; 4] = *b"BNJL";
/// Newest journal format version this build reads and writes.
pub const JOURNAL_VERSION: u16 = 1;
/// Conventional journal file name, a sibling of `results.json`.
pub const JOURNAL_FILE: &str = "run.journal";
/// Record kind: the run header (first record of every journal).
pub const KIND_HEADER: u8 = 0;
/// Record kind: one successfully completed cell.
pub const KIND_CELL: u8 = 1;

/// Typed failure modes of the journal layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The journal has no readable header record (empty, torn before the
    /// first record completed, or not a journal at all).
    NoHeader(String),
    /// A structurally valid cell record appeared before any header — an
    /// ordering no crash of our writer can produce.
    CellBeforeHeader,
    /// A second header record appeared mid-journal.
    DuplicateHeader {
        /// Byte offset of the offending record.
        offset: usize,
    },
    /// A record whose checksum validates but whose content is
    /// meaningless (unknown kind byte, unparseable JSON payload).
    BadRecord {
        /// Byte offset of the offending record.
        offset: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// A filesystem failure reading or writing the journal.
    Io(String),
    /// `results.json` and the journal disagree about the run.
    Mismatch(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::NoHeader(detail) => write!(f, "journal has no header record: {detail}"),
            JournalError::CellBeforeHeader => {
                write!(f, "journal starts with a cell record instead of a header")
            }
            JournalError::DuplicateHeader { offset } => {
                write!(f, "second header record at byte {offset}")
            }
            JournalError::BadRecord { offset, detail } => {
                write!(f, "malformed record at byte {offset}: {detail}")
            }
            JournalError::Io(detail) => write!(f, "journal I/O failure: {detail}"),
            JournalError::Mismatch(detail) => {
                write!(f, "journal and results.json disagree: {detail}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<JournalError> for BlurNetError {
    fn from(e: JournalError) -> Self {
        BlurNetError::Journal(e)
    }
}

/// The journal's first record: the identity of the run being journaled,
/// so recovery can refuse to merge incompatible runs exactly as
/// [`crate::plan_resume`] does for prior reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Results schema tag ([`crate::report::RESULTS_SCHEMA`]).
    pub schema: String,
    /// Scale profile of the run (`"smoke"`, `"quick"`, `"paper"`).
    pub scale: String,
    /// Dataset/zoo seed of the run.
    pub seed: u64,
    /// Number of cells in the run's grid.
    pub cells: usize,
}

/// The append side of the journal. Clone-free and thread-safe: the
/// scheduler's workers append through one shared writer behind a mutex
/// (appends are rare — one per completed cell — and tiny).
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    /// `None` once the writer has retired itself after an append failure.
    file: Mutex<Option<std::fs::File>>,
}

impl JournalWriter {
    /// Creates (truncating) the journal at `path`, writes the header
    /// record and fsyncs it — returning only once the header is durable.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] (as [`BlurNetError::Journal`]) when
    /// the journal cannot be created; a journal the caller asked for that
    /// cannot exist is a hard error, unlike per-append failures.
    pub fn create(path: impl Into<PathBuf>, header: &JournalHeader) -> Result<Self> {
        use std::io::Write;
        let path = path.into();
        let io = |e: std::io::Error| {
            BlurNetError::Journal(JournalError::Io(format!("{}: {e}", path.display())))
        };
        let payload = serde_json::to_string(header).map_err(|e| JournalError::Io(e.to_string()))?;
        let mut file = std::fs::File::create(&path).map_err(io)?;
        file.write_all(&frame_record(
            JOURNAL_MAGIC,
            JOURNAL_VERSION,
            KIND_HEADER,
            payload.as_bytes(),
        ))
        .map_err(io)?;
        file.sync_all().map_err(io)?;
        // The journal file itself must survive a crash, not just its
        // contents: fsync the directory entry too.
        if let Some(dir) = path.parent() {
            let dir = if dir.as_os_str().is_empty() {
                Path::new(".")
            } else {
                dir
            };
            if let Ok(handle) = std::fs::File::open(dir) {
                let _ = handle.sync_all();
            }
        }
        Ok(JournalWriter {
            path,
            file: Mutex::new(Some(file)),
        })
    }

    /// Appends one completed-cell record and fsyncs it. Best-effort: an
    /// I/O failure retires the journal (see [`JournalWriter`] docs) and
    /// is reported on stderr, never to the caller — durability degrades,
    /// the run does not.
    pub fn append_cell(&self, cell: &CellReport) {
        use std::io::Write;
        // Fault site `core.journal.append`: Error kind models a failed
        // append (the journal must retire, the run must survive); Abort
        // kind at hit n is the kill-after-(n−1)-cells point.
        #[cfg(feature = "fault-injection")]
        let injected_failure = crate::fault::fire(crate::fault::sites::JOURNAL_APPEND);
        #[cfg(not(feature = "fault-injection"))]
        let injected_failure = false;

        let payload = match serde_json::to_string(cell) {
            Ok(p) => p,
            Err(e) => {
                self.retire(&format!("cell record does not serialize: {e}"));
                return;
            }
        };
        let record = frame_record(
            JOURNAL_MAGIC,
            JOURNAL_VERSION,
            KIND_CELL,
            payload.as_bytes(),
        );

        // Fault site `core.journal.torn`: write a torn prefix of the
        // record, push it to disk, and die — a genuine kill-mid-append.
        // Subprocess harness only (this aborts the whole process).
        #[cfg(feature = "fault-injection")]
        if crate::fault::fire(crate::fault::sites::JOURNAL_TORN) {
            let mut guard = self.file.lock().expect("journal writer poisoned");
            if let Some(file) = guard.as_mut() {
                let _ = file.write_all(&record[..record.len() / 2]);
                let _ = file.sync_data();
            }
            eprintln!(
                "{}: torn append + abort at {}",
                crate::fault::MARKER,
                crate::fault::sites::JOURNAL_TORN
            );
            std::process::abort();
        }

        let outcome = {
            let mut guard = self.file.lock().expect("journal writer poisoned");
            match guard.as_mut() {
                None => return, // already retired
                Some(_) if injected_failure => {
                    Err(std::io::Error::other("injected append failure"))
                }
                Some(file) => file.write_all(&record).and_then(|()| file.sync_data()),
            }
        };
        if let Err(e) = outcome {
            self.retire(&e.to_string());
        }
    }

    /// Drops the file handle and removes the journal file: a journal that
    /// lost an append would disagree with the `results.json` the run goes
    /// on to write, and a later `--resume` must never face that silently.
    fn retire(&self, cause: &str) {
        let mut guard = self.file.lock().expect("journal writer poisoned");
        if guard.take().is_some() {
            let _ = std::fs::remove_file(&self.path);
            eprintln!(
                "[journal] append to {} failed ({cause}); journal retired",
                self.path.display()
            );
        }
    }
}

/// What [`recover_journal`] salvages from a (possibly torn) journal.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJournal {
    /// The run identity from the header record.
    pub header: JournalHeader,
    /// Every fully durable completed-cell record, in append order.
    pub cells: Vec<CellReport>,
    /// Bytes of torn/corrupt tail discarded after the last valid record
    /// (zero for a cleanly closed journal).
    pub dropped_bytes: usize,
}

impl RecoveredJournal {
    /// Reshapes the recovered cells as a [`RunReport`] so the ordinary
    /// resume planner ([`crate::plan_resume`]) can replay them — the
    /// journal-recovered report of an interrupted run is simply a prior
    /// report that covers part of the grid.
    pub fn into_report(self) -> RunReport {
        RunReport {
            schema: self.header.schema,
            scale: self.header.scale,
            seed: self.header.seed,
            cells: self.cells,
        }
    }
}

/// Recovers a journal from its raw bytes: the torn-tail-tolerant,
/// never-panicking reader (see the module docs for the exact contract).
///
/// # Errors
///
/// Returns a typed [`JournalError`] (as [`BlurNetError::Journal`]) for a
/// missing/unreadable header and for structural violations; a torn or
/// corrupt **tail** is not an error — it truncates the journal at the
/// last valid record and is reported via
/// [`RecoveredJournal::dropped_bytes`].
pub fn recover_journal(bytes: &[u8]) -> Result<RecoveredJournal> {
    if bytes.is_empty() {
        return Err(JournalError::NoHeader("empty file".into()).into());
    }
    let (kind, payload, mut offset) = match read_record(bytes, JOURNAL_MAGIC, JOURNAL_VERSION) {
        Ok(first) => first,
        Err(e) => return Err(JournalError::NoHeader(e.to_string()).into()),
    };
    let header: JournalHeader = match kind {
        KIND_HEADER => serde_json::from_str(
            std::str::from_utf8(payload)
                .map_err(|e| JournalError::NoHeader(format!("header is not UTF-8: {e}")))?,
        )
        .map_err(|e| JournalError::NoHeader(format!("header does not parse: {e}")))?,
        KIND_CELL => return Err(JournalError::CellBeforeHeader.into()),
        other => {
            return Err(JournalError::BadRecord {
                offset: 0,
                detail: format!("unknown record kind {other}"),
            }
            .into())
        }
    };

    let mut cells = Vec::new();
    while offset < bytes.len() {
        let (kind, payload, consumed) =
            match read_record(&bytes[offset..], JOURNAL_MAGIC, JOURNAL_VERSION) {
                Ok(record) => record,
                // A malformed record here is the torn tail a crash
                // mid-append leaves: keep the valid prefix, drop the rest.
                Err(_) => {
                    return Ok(RecoveredJournal {
                        header,
                        cells,
                        dropped_bytes: bytes.len() - offset,
                    })
                }
            };
        match kind {
            KIND_CELL => {
                let cell: CellReport = std::str::from_utf8(payload)
                    .map_err(|e| JournalError::BadRecord {
                        offset,
                        detail: format!("cell record is not UTF-8: {e}"),
                    })
                    .and_then(|text| {
                        serde_json::from_str(text).map_err(|e| JournalError::BadRecord {
                            offset,
                            detail: format!("cell record does not parse: {e}"),
                        })
                    })?;
                cells.push(cell);
            }
            KIND_HEADER => return Err(JournalError::DuplicateHeader { offset }.into()),
            other => {
                return Err(JournalError::BadRecord {
                    offset,
                    detail: format!("unknown record kind {other}"),
                }
                .into())
            }
        }
        offset += consumed;
    }
    Ok(RecoveredJournal {
        header,
        cells,
        dropped_bytes: 0,
    })
}

/// Reads and recovers the journal at `path` (see [`recover_journal`]).
///
/// # Errors
///
/// Returns [`JournalError::Io`] when the file cannot be read, plus every
/// [`recover_journal`] error.
pub fn read_journal(path: &Path) -> Result<RecoveredJournal> {
    let bytes = std::fs::read(path)
        .map_err(|e| JournalError::Io(format!("reading {}: {e}", path.display())))?;
    recover_journal(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CellStatus, RESULTS_SCHEMA};

    fn header() -> JournalHeader {
        JournalHeader {
            schema: RESULTS_SCHEMA.to_string(),
            scale: "smoke".to_string(),
            seed: 7,
            cells: 4,
        }
    }

    fn cell(label: &str) -> CellReport {
        CellReport {
            experiment: "table2".to_string(),
            label: label.to_string(),
            status: CellStatus::Ok,
            output: None,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("blurnet-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_recover_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join(JOURNAL_FILE);
        let writer = JournalWriter::create(&path, &header()).unwrap();
        writer.append_cell(&cell("a"));
        writer.append_cell(&cell("b"));

        let recovered = read_journal(&path).unwrap();
        assert_eq!(recovered.header, header());
        assert_eq!(recovered.cells, vec![cell("a"), cell("b")]);
        assert_eq!(recovered.dropped_bytes, 0);
        let report = recovered.into_report();
        assert_eq!(report.schema, RESULTS_SCHEMA);
        assert_eq!(report.cells.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_torn_tail_keeps_the_valid_prefix() {
        let dir = tmp_dir("torn");
        let path = dir.join(JOURNAL_FILE);
        let writer = JournalWriter::create(&path, &header()).unwrap();
        writer.append_cell(&cell("a"));
        writer.append_cell(&cell("b"));
        let full = std::fs::read(&path).unwrap();
        // Chop 5 bytes off the last record — a crash mid-append.
        let torn = &full[..full.len() - 5];
        let recovered = recover_journal(torn).unwrap();
        assert_eq!(recovered.cells, vec![cell("a")]);
        assert!(recovered.dropped_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ordering_violations_are_typed() {
        use blurnet_tensor::persist::frame_record;
        let head = frame_record(
            JOURNAL_MAGIC,
            JOURNAL_VERSION,
            KIND_HEADER,
            serde_json::to_string(&header()).unwrap().as_bytes(),
        );
        let cell_rec = frame_record(
            JOURNAL_MAGIC,
            JOURNAL_VERSION,
            KIND_CELL,
            serde_json::to_string(&cell("a")).unwrap().as_bytes(),
        );

        // Cell before header.
        assert!(matches!(
            recover_journal(&cell_rec),
            Err(BlurNetError::Journal(JournalError::CellBeforeHeader))
        ));
        // Duplicate header.
        let mut dup = head.clone();
        dup.extend_from_slice(&head);
        assert!(matches!(
            recover_journal(&dup),
            Err(BlurNetError::Journal(JournalError::DuplicateHeader { .. }))
        ));
        // Empty / headerless files.
        assert!(matches!(
            recover_journal(&[]),
            Err(BlurNetError::Journal(JournalError::NoHeader(_)))
        ));
        // Unknown kind with a valid checksum.
        let alien = frame_record(JOURNAL_MAGIC, JOURNAL_VERSION, 9, b"{}");
        assert!(matches!(
            recover_journal(&alien),
            Err(BlurNetError::Journal(JournalError::BadRecord { .. }))
        ));
    }
}
