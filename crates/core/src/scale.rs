//! Experiment scale profiles.
//!
//! The paper trains each classifier for 2000 epochs and attacks 40 stop
//! signs with 300 RP2 iterations per target across 17 targets — far beyond
//! a single-core CI budget. The [`Scale`] profiles keep the experiment
//! *structure* identical while shrinking the dataset, training epochs,
//! attack iterations and target sweeps. `Scale::Paper` approaches the
//! paper's effort and is intended for long offline runs.

use blurnet_attacks::{PgdConfig, Rp2Config};
use blurnet_data::{DatasetConfig, NUM_CLASSES, STOP_CLASS_ID};
use blurnet_defenses::TrainConfig;
use serde::{Deserialize, Serialize};

/// How much compute an experiment run spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds per experiment — used by tests and CI.
    Smoke,
    /// Minutes per experiment — the default for the bench binaries.
    Quick,
    /// The closest practical approximation of the paper's effort.
    Paper,
}

impl Scale {
    /// Reads the scale from the `BLURNET_SCALE` environment variable
    /// (`smoke`, `quick` or `paper`), defaulting to `Smoke`.
    pub fn from_env() -> Scale {
        match std::env::var("BLURNET_SCALE")
            .unwrap_or_default()
            .to_ascii_lowercase()
            .as_str()
        {
            "paper" => Scale::Paper,
            "quick" => Scale::Quick,
            _ => Scale::Smoke,
        }
    }

    /// Dataset size for this scale.
    pub fn dataset_config(&self) -> DatasetConfig {
        match self {
            Scale::Smoke => DatasetConfig {
                stop_eval_count: 4,
                ..DatasetConfig::smoke()
            },
            Scale::Quick => DatasetConfig {
                train_per_class: 24,
                test_per_class: 6,
                stop_eval_count: 10,
                ..DatasetConfig::standard()
            },
            Scale::Paper => DatasetConfig::standard(),
        }
    }

    /// Training recipe for this scale.
    pub fn train_config(&self) -> TrainConfig {
        match self {
            Scale::Smoke => TrainConfig {
                epochs: 3,
                batch_size: 16,
                learning_rate: 2e-3,
                seed: 7,
            },
            Scale::Quick => TrainConfig {
                epochs: 8,
                batch_size: 32,
                learning_rate: 1.5e-3,
                seed: 7,
            },
            Scale::Paper => TrainConfig {
                epochs: 20,
                batch_size: 32,
                learning_rate: 1.5e-3,
                seed: 7,
            },
        }
    }

    /// RP2 configuration (λ = 0.002 as in the paper's black-box runs).
    pub fn rp2_config(&self) -> Rp2Config {
        let iterations = match self {
            Scale::Smoke => 30,
            Scale::Quick => 80,
            Scale::Paper => 300,
        };
        Rp2Config {
            iterations,
            num_transforms: match self {
                Scale::Smoke => 2,
                _ => 4,
            },
            ..Rp2Config::default()
        }
    }

    /// PGD configuration (ε = 8/255, α = 0.01, 10 steps as in Table IV).
    pub fn pgd_config(&self) -> PgdConfig {
        PgdConfig {
            steps: match self {
                Scale::Smoke => 5,
                _ => 10,
            },
            ..PgdConfig::default()
        }
    }

    /// Number of stop-sign images attacked per evaluation.
    pub fn attack_image_count(&self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Quick => 8,
            Scale::Paper => 40,
        }
    }

    /// The attack targets swept in the white-box and adaptive evaluations
    /// (the paper sweeps all 17 non-stop classes).
    pub fn attack_targets(&self) -> Vec<usize> {
        let all: Vec<usize> = (0..NUM_CLASSES).filter(|&c| c != STOP_CLASS_ID).collect();
        match self {
            Scale::Smoke => all.into_iter().step_by(8).collect(),
            Scale::Quick => all.into_iter().step_by(4).collect(),
            Scale::Paper => all,
        }
    }

    /// Monte-Carlo samples for randomized smoothing (100 in the paper).
    pub fn smoothing_samples(&self) -> usize {
        match self {
            Scale::Smoke => 8,
            Scale::Quick => 24,
            Scale::Paper => 100,
        }
    }

    /// Number of adversarial-training PGD steps (7 in the paper).
    pub fn adv_train_steps(&self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Quick => 4,
            Scale::Paper => 7,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_effort() {
        assert!(Scale::Smoke.rp2_config().iterations < Scale::Quick.rp2_config().iterations);
        assert!(Scale::Quick.rp2_config().iterations < Scale::Paper.rp2_config().iterations);
        assert!(Scale::Smoke.attack_image_count() < Scale::Paper.attack_image_count());
        assert!(Scale::Smoke.train_config().epochs < Scale::Paper.train_config().epochs);
        assert!(Scale::Smoke.attack_targets().len() < Scale::Paper.attack_targets().len());
    }

    #[test]
    fn paper_scale_matches_paper_constants() {
        assert_eq!(Scale::Paper.rp2_config().iterations, 300);
        assert!((Scale::Paper.rp2_config().lambda - 0.002).abs() < 1e-9);
        assert_eq!(Scale::Paper.attack_targets().len(), 17);
        assert_eq!(Scale::Paper.smoothing_samples(), 100);
        assert_eq!(Scale::Paper.adv_train_steps(), 7);
        assert_eq!(Scale::Paper.dataset_config().stop_eval_count, 40);
        assert_eq!(Scale::Paper.pgd_config().steps, 10);
    }

    #[test]
    fn targets_never_include_the_stop_class() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Paper] {
            assert!(!scale.attack_targets().contains(&STOP_CLASS_ID));
            assert!(!scale.attack_targets().is_empty());
        }
    }

    #[test]
    fn display_and_env_parsing() {
        assert_eq!(Scale::Smoke.to_string(), "smoke");
        assert_eq!(Scale::Paper.to_string(), "paper");
        // Without the env var set, the default is smoke.
        std::env::remove_var("BLURNET_SCALE");
        assert_eq!(Scale::from_env(), Scale::Smoke);
    }
}
