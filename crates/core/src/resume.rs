//! `--resume`: replay completed cells from a prior `results.json` and
//! schedule only the delta.
//!
//! A resumed run must be **indistinguishable** from a cold run of the same
//! grid: replayed cells are copied verbatim from the prior report, delta
//! cells are re-executed through the ordinary [`ExperimentScheduler`]
//! (which regenerates — or loads from the disk cache — every artifact the
//! delta needs), and the merged report lists cells in grid order exactly
//! as a cold run would. Because every cell's bytes are deterministic in
//! (grid, scale, seed), the merged `results.json` is **byte-identical** to
//! the cold run's — pinned by `tests/golden_resume.rs`.
//!
//! Only [`CellStatus::Ok`] cells replay; failed or skipped prior cells are
//! rescheduled, so `--resume` doubles as a retry of a partially failed
//! run. A prior report whose schema, scale or seed disagrees with the
//! requested run is rejected outright — silently merging incompatible
//! results would fabricate a run that never happened.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use crate::experiments::grid::ExperimentGrid;
use crate::journal::{read_journal, JournalError, JournalHeader, JournalWriter, JOURNAL_FILE};
use crate::report::{CellReport, CellStatus, RunReport, RESULTS_SCHEMA};
use crate::scheduler::{ExperimentScheduler, RunProfile, ScheduledRun};
use crate::{BlurNetError, Result};

/// Which grid cells replay from the prior report and which must run.
#[derive(Debug)]
pub struct ResumePlan {
    /// For each grid cell (grid order): the index into the prior report's
    /// cells to replay, or `None` if the cell must be executed.
    sources: Vec<Option<usize>>,
}

impl ResumePlan {
    /// Number of cells that replay from the prior report.
    pub fn replayed(&self) -> usize {
        self.sources.iter().flatten().count()
    }

    /// Number of cells that must be (re-)executed.
    pub fn delta(&self) -> usize {
        self.sources.iter().filter(|s| s.is_none()).count()
    }
}

/// A finished resumed run.
#[derive(Debug)]
pub struct ResumedRun {
    /// The merged deterministic report (byte-identical to a cold run).
    pub report: RunReport,
    /// Cells copied verbatim from the prior report.
    pub replayed: usize,
    /// Cells executed by the scheduler this run.
    pub executed: usize,
    /// The delta run's timing profile (`None` when nothing ran).
    pub profile: Option<RunProfile>,
}

/// Matches a prior report against a grid: every grid cell whose
/// (experiment, label) appears in the prior report with
/// [`CellStatus::Ok`] replays; everything else is delta.
///
/// # Errors
///
/// Returns [`BlurNetError::BadConfig`] when the prior report's schema,
/// scale or seed does not match the requested run.
pub fn plan_resume(
    grid: &ExperimentGrid,
    prior: &RunReport,
    scale: &str,
    seed: u64,
) -> Result<ResumePlan> {
    if prior.schema != RESULTS_SCHEMA {
        return Err(BlurNetError::BadConfig(format!(
            "cannot resume: prior report schema '{}' does not match '{RESULTS_SCHEMA}'",
            prior.schema
        )));
    }
    if prior.scale != scale {
        return Err(BlurNetError::BadConfig(format!(
            "cannot resume: prior report ran at scale '{}', this run is '{scale}'",
            prior.scale
        )));
    }
    if prior.seed != seed {
        return Err(BlurNetError::BadConfig(format!(
            "cannot resume: prior report used seed {}, this run uses {seed}",
            prior.seed
        )));
    }
    let sources = grid
        .cells()
        .iter()
        .map(|spec| {
            prior.cells.iter().position(|c| {
                c.experiment == spec.experiment
                    && c.label == spec.label
                    && c.status == CellStatus::Ok
            })
        })
        .collect();
    Ok(ResumePlan { sources })
}

/// Resumes `grid` from `prior`: replays every completed cell and runs
/// only the delta through `scheduler`. When the prior report covers the
/// whole grid, **no node executes at all** — the scheduler is never
/// invoked.
///
/// # Errors
///
/// Returns [`BlurNetError::BadConfig`] for an incompatible prior report,
/// plus any structural scheduler error from the delta run.
pub fn resume_run(
    scheduler: &ExperimentScheduler,
    grid: &ExperimentGrid,
    prior: &RunReport,
) -> Result<ResumedRun> {
    resume_inner(scheduler, grid, prior, None)
}

/// [`resume_run`] with write-ahead journaling of the resumed run itself:
/// a fresh journal at `journal_path` is seeded with a full-grid header
/// plus every replayed cell (they are known good), and the delta run
/// appends its cells as they complete — so a crash *during the resume*
/// leaves a journal from which a second resume recovers everything, and
/// resumes chain arbitrarily deep.
///
/// # Errors
///
/// Everything [`resume_run`] returns, plus [`JournalError::Io`] when the
/// fresh journal cannot be created.
pub fn resume_run_with_journal(
    scheduler: &ExperimentScheduler,
    grid: &ExperimentGrid,
    prior: &RunReport,
    journal_path: &Path,
) -> Result<ResumedRun> {
    resume_inner(scheduler, grid, prior, Some(journal_path))
}

fn resume_inner(
    scheduler: &ExperimentScheduler,
    grid: &ExperimentGrid,
    prior: &RunReport,
    journal_path: Option<&Path>,
) -> Result<ResumedRun> {
    let plan = plan_resume(
        grid,
        prior,
        &scheduler.scale().to_string(),
        scheduler.seed(),
    )?;
    let journal = match journal_path {
        Some(path) => {
            let writer = Arc::new(JournalWriter::create(
                path,
                &JournalHeader {
                    schema: RESULTS_SCHEMA.to_string(),
                    scale: scheduler.scale().to_string(),
                    seed: scheduler.seed(),
                    cells: grid.len(),
                },
            )?);
            // Re-seed the fresh journal with the replayed cells (grid
            // order) before the delta runs: the journal stays a complete
            // record of every known-good cell at all times.
            for source in plan.sources.iter().flatten() {
                writer.append_cell(&prior.cells[*source]);
            }
            Some(writer)
        }
        None => None,
    };
    let delta_specs: Vec<_> = grid
        .cells()
        .iter()
        .zip(&plan.sources)
        .filter(|(_, source)| source.is_none())
        .map(|(spec, _)| spec.clone())
        .collect();
    let delta_run: Option<ScheduledRun> = if delta_specs.is_empty() {
        None
    } else {
        let delta_grid = ExperimentGrid::custom(delta_specs);
        Some(match &journal {
            Some(writer) => scheduler.run_with_journal(&delta_grid, Arc::clone(writer))?,
            None => scheduler.run(&delta_grid)?,
        })
    };

    let mut delta_cells = delta_run
        .as_ref()
        .map(|run| run.report.cells.iter())
        .unwrap_or_default();
    let cells =
        plan.sources
            .iter()
            .map(|source| match source {
                Some(prior_idx) => Ok(prior.cells[*prior_idx].clone()),
                None => delta_cells.next().cloned().ok_or_else(|| {
                    BlurNetError::BadConfig("delta run returned too few cells".into())
                }),
            })
            .collect::<Result<Vec<_>>>()?;

    Ok(ResumedRun {
        report: RunReport {
            schema: RESULTS_SCHEMA.to_string(),
            scale: scheduler.scale().to_string(),
            seed: scheduler.seed(),
            cells,
        },
        replayed: plan.replayed(),
        executed: plan.delta(),
        profile: delta_run.map(|run| run.profile),
    })
}

/// Where [`recover_prior`] found the prior run's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorSource {
    /// `results.json` alone — the PR 8 path.
    Report,
    /// The journal alone — the prior run died before writing its report.
    Journal,
    /// Both were present and the journal confirmed every completed cell
    /// of the report.
    Verified,
}

impl fmt::Display for PriorSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorSource::Report => write!(f, "results.json"),
            PriorSource::Journal => write!(f, "run.journal"),
            PriorSource::Verified => write!(f, "results.json (journal-verified)"),
        }
    }
}

/// Recovers the prior run's state from a `--resume` directory, whatever
/// the prior run lived to write:
///
/// * both `results.json` and `run.journal` → the report, after verifying
///   the journal **agrees** with it (same run identity, every completed
///   report cell present verbatim in the journal) — disagreement is a
///   typed [`JournalError::Mismatch`], never a silent preference;
/// * only `results.json` → the report (the PR 8 behavior);
/// * only `run.journal` → the journal's recovered prefix, reshaped as a
///   report — the crash-recovery path;
/// * a file path instead of a directory → that file, parsed as a report.
///
/// # Errors
///
/// [`BlurNetError::BadConfig`] when nothing recoverable exists or the
/// report does not parse; [`BlurNetError::Journal`] for journal
/// recovery failures and report/journal disagreement.
pub fn recover_prior(dir: &Path) -> Result<(RunReport, PriorSource)> {
    if dir.is_file() {
        return Ok((parse_report(dir)?, PriorSource::Report));
    }
    let report_path = dir.join("results.json");
    let journal_path = dir.join(JOURNAL_FILE);
    match (report_path.is_file(), journal_path.is_file()) {
        (true, true) => {
            let report = parse_report(&report_path)?;
            let recovered = read_journal(&journal_path)?;
            verify_agreement(&report, &recovered.header, &recovered.cells)?;
            Ok((report, PriorSource::Verified))
        }
        (true, false) => Ok((parse_report(&report_path)?, PriorSource::Report)),
        (false, true) => Ok((
            read_journal(&journal_path)?.into_report(),
            PriorSource::Journal,
        )),
        (false, false) => Err(BlurNetError::BadConfig(format!(
            "nothing to resume from: neither results.json nor {JOURNAL_FILE} in {}",
            dir.display()
        ))),
    }
}

/// Parses a prior `results.json`.
fn parse_report(path: &Path) -> Result<RunReport> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        BlurNetError::BadConfig(format!(
            "failed to read prior report {}: {e}",
            path.display()
        ))
    })?;
    serde_json::from_str(&text).map_err(|e| {
        BlurNetError::BadConfig(format!(
            "failed to parse prior report {}: {e}",
            path.display()
        ))
    })
}

/// The agreement check behind [`PriorSource::Verified`]: the journal must
/// describe the same run and contain every completed cell of the report
/// **verbatim** (journal cells ⊇ report's `Ok` cells — the journal may
/// hold more, e.g. cells completed after the report was last written).
fn verify_agreement(
    report: &RunReport,
    header: &JournalHeader,
    journal_cells: &[CellReport],
) -> Result<()> {
    let mismatch = |detail: String| -> BlurNetError { JournalError::Mismatch(detail).into() };
    if header.schema != report.schema || header.scale != report.scale || header.seed != report.seed
    {
        return Err(mismatch(format!(
            "journal header ({}/{}/seed {}) vs report ({}/{}/seed {})",
            header.schema, header.scale, header.seed, report.schema, report.scale, report.seed
        )));
    }
    for cell in &report.cells {
        if cell.status != CellStatus::Ok {
            continue;
        }
        if !journal_cells.contains(cell) {
            return Err(mismatch(format!(
                "report cell {}/{} is marked completed but the journal has no \
                 identical record of it",
                cell.experiment, cell.label
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CellReport;
    use crate::Scale;

    fn fake_report(scale: &str, seed: u64, labels: &[(&str, &str, CellStatus)]) -> RunReport {
        RunReport {
            schema: RESULTS_SCHEMA.to_string(),
            scale: scale.to_string(),
            seed,
            cells: labels
                .iter()
                .map(|(experiment, label, status)| CellReport {
                    experiment: experiment.to_string(),
                    label: label.to_string(),
                    status: status.clone(),
                    output: None,
                })
                .collect(),
        }
    }

    #[test]
    fn mismatched_runs_are_rejected() {
        let grid = ExperimentGrid::micro();
        let scale = Scale::Smoke.to_string();
        let mut wrong_schema = fake_report(&scale, 7, &[]);
        wrong_schema.schema = "blurnet-results/v999".to_string();
        assert!(plan_resume(&grid, &wrong_schema, &scale, 7).is_err());
        let wrong_scale = fake_report("paper", 7, &[]);
        assert!(plan_resume(&grid, &wrong_scale, &scale, 7).is_err());
        let wrong_seed = fake_report(&scale, 8, &[]);
        assert!(plan_resume(&grid, &wrong_seed, &scale, 7).is_err());
    }

    #[test]
    fn only_ok_cells_replay() {
        let grid = ExperimentGrid::micro();
        let scale = Scale::Smoke.to_string();
        let specs = grid.cells();
        // Prior report: first cell Ok, second Failed, rest absent.
        let prior = fake_report(
            &scale,
            7,
            &[
                (specs[0].experiment, &specs[0].label, CellStatus::Ok),
                (
                    specs[1].experiment,
                    &specs[1].label,
                    CellStatus::Failed {
                        error: "boom".into(),
                    },
                ),
            ],
        );
        let plan = plan_resume(&grid, &prior, &scale, 7).unwrap();
        assert_eq!(plan.replayed(), 1);
        assert_eq!(plan.delta(), grid.len() - 1);
    }

    fn recover_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("blurnet-recover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_journal_for(dir: &Path, report: &RunReport) {
        let writer = JournalWriter::create(
            dir.join(JOURNAL_FILE),
            &JournalHeader {
                schema: report.schema.clone(),
                scale: report.scale.clone(),
                seed: report.seed,
                cells: report.cells.len(),
            },
        )
        .unwrap();
        for cell in &report.cells {
            if cell.status == CellStatus::Ok {
                writer.append_cell(cell);
            }
        }
    }

    #[test]
    fn recover_prior_uses_whatever_survived() {
        let scale = Scale::Smoke.to_string();
        let report = fake_report(&scale, 7, &[("table2", "a", CellStatus::Ok)]);

        // Neither file: typed refusal.
        let dir = recover_dir("neither");
        assert!(recover_prior(&dir).is_err());

        // Report alone.
        report.write_json(&dir.join("results.json")).unwrap();
        let (got, source) = recover_prior(&dir).unwrap();
        assert_eq!(source, PriorSource::Report);
        assert_eq!(got, report);

        // Both, agreeing: verified.
        write_journal_for(&dir, &report);
        let (got, source) = recover_prior(&dir).unwrap();
        assert_eq!(source, PriorSource::Verified);
        assert_eq!(got, report);

        // Journal alone: the crash-recovery path.
        std::fs::remove_file(dir.join("results.json")).unwrap();
        let (got, source) = recover_prior(&dir).unwrap();
        assert_eq!(source, PriorSource::Journal);
        assert_eq!(got.cells, report.cells);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disagreeing_report_and_journal_are_a_typed_mismatch() {
        let scale = Scale::Smoke.to_string();
        let report = fake_report(
            &scale,
            7,
            &[
                ("table2", "a", CellStatus::Ok),
                ("table2", "b", CellStatus::Ok),
            ],
        );
        // The journal only knows about cell "a" — the report claims "b"
        // completed too.
        let mut journal_view = report.clone();
        journal_view.cells.truncate(1);
        let dir = recover_dir("mismatch");
        report.write_json(&dir.join("results.json")).unwrap();
        write_journal_for(&dir, &journal_view);
        assert!(matches!(
            recover_prior(&dir),
            Err(BlurNetError::Journal(JournalError::Mismatch(_)))
        ));

        // Run identity disagreement is also a mismatch.
        let mut alien = report.clone();
        alien.seed = 8;
        write_journal_for(&dir, &alien);
        assert!(matches!(
            recover_prior(&dir),
            Err(BlurNetError::Journal(JournalError::Mismatch(_)))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fully_covered_grids_schedule_nothing() {
        let grid = ExperimentGrid::micro();
        let scale = Scale::Smoke.to_string();
        let all_ok: Vec<_> = grid
            .cells()
            .iter()
            .map(|s| (s.experiment, s.label.as_str(), CellStatus::Ok))
            .collect();
        let entries: Vec<(&str, &str, CellStatus)> =
            all_ok.iter().map(|(e, l, s)| (*e, *l, s.clone())).collect();
        let prior = fake_report(&scale, 7, &entries);
        let plan = plan_resume(&grid, &prior, &scale, 7).unwrap();
        assert_eq!(plan.replayed(), grid.len());
        assert_eq!(plan.delta(), 0);
    }
}
