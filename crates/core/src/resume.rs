//! `--resume`: replay completed cells from a prior `results.json` and
//! schedule only the delta.
//!
//! A resumed run must be **indistinguishable** from a cold run of the same
//! grid: replayed cells are copied verbatim from the prior report, delta
//! cells are re-executed through the ordinary [`ExperimentScheduler`]
//! (which regenerates — or loads from the disk cache — every artifact the
//! delta needs), and the merged report lists cells in grid order exactly
//! as a cold run would. Because every cell's bytes are deterministic in
//! (grid, scale, seed), the merged `results.json` is **byte-identical** to
//! the cold run's — pinned by `tests/golden_resume.rs`.
//!
//! Only [`CellStatus::Ok`] cells replay; failed or skipped prior cells are
//! rescheduled, so `--resume` doubles as a retry of a partially failed
//! run. A prior report whose schema, scale or seed disagrees with the
//! requested run is rejected outright — silently merging incompatible
//! results would fabricate a run that never happened.

use crate::experiments::grid::ExperimentGrid;
use crate::report::{CellStatus, RunReport, RESULTS_SCHEMA};
use crate::scheduler::{ExperimentScheduler, RunProfile};
use crate::{BlurNetError, Result};

/// Which grid cells replay from the prior report and which must run.
#[derive(Debug)]
pub struct ResumePlan {
    /// For each grid cell (grid order): the index into the prior report's
    /// cells to replay, or `None` if the cell must be executed.
    sources: Vec<Option<usize>>,
}

impl ResumePlan {
    /// Number of cells that replay from the prior report.
    pub fn replayed(&self) -> usize {
        self.sources.iter().flatten().count()
    }

    /// Number of cells that must be (re-)executed.
    pub fn delta(&self) -> usize {
        self.sources.iter().filter(|s| s.is_none()).count()
    }
}

/// A finished resumed run.
#[derive(Debug)]
pub struct ResumedRun {
    /// The merged deterministic report (byte-identical to a cold run).
    pub report: RunReport,
    /// Cells copied verbatim from the prior report.
    pub replayed: usize,
    /// Cells executed by the scheduler this run.
    pub executed: usize,
    /// The delta run's timing profile (`None` when nothing ran).
    pub profile: Option<RunProfile>,
}

/// Matches a prior report against a grid: every grid cell whose
/// (experiment, label) appears in the prior report with
/// [`CellStatus::Ok`] replays; everything else is delta.
///
/// # Errors
///
/// Returns [`BlurNetError::BadConfig`] when the prior report's schema,
/// scale or seed does not match the requested run.
pub fn plan_resume(
    grid: &ExperimentGrid,
    prior: &RunReport,
    scale: &str,
    seed: u64,
) -> Result<ResumePlan> {
    if prior.schema != RESULTS_SCHEMA {
        return Err(BlurNetError::BadConfig(format!(
            "cannot resume: prior report schema '{}' does not match '{RESULTS_SCHEMA}'",
            prior.schema
        )));
    }
    if prior.scale != scale {
        return Err(BlurNetError::BadConfig(format!(
            "cannot resume: prior report ran at scale '{}', this run is '{scale}'",
            prior.scale
        )));
    }
    if prior.seed != seed {
        return Err(BlurNetError::BadConfig(format!(
            "cannot resume: prior report used seed {}, this run uses {seed}",
            prior.seed
        )));
    }
    let sources = grid
        .cells()
        .iter()
        .map(|spec| {
            prior.cells.iter().position(|c| {
                c.experiment == spec.experiment
                    && c.label == spec.label
                    && c.status == CellStatus::Ok
            })
        })
        .collect();
    Ok(ResumePlan { sources })
}

/// Resumes `grid` from `prior`: replays every completed cell and runs
/// only the delta through `scheduler`. When the prior report covers the
/// whole grid, **no node executes at all** — the scheduler is never
/// invoked.
///
/// # Errors
///
/// Returns [`BlurNetError::BadConfig`] for an incompatible prior report,
/// plus any structural scheduler error from the delta run.
pub fn resume_run(
    scheduler: &ExperimentScheduler,
    grid: &ExperimentGrid,
    prior: &RunReport,
) -> Result<ResumedRun> {
    let plan = plan_resume(
        grid,
        prior,
        &scheduler.scale().to_string(),
        scheduler.seed(),
    )?;
    let delta_specs: Vec<_> = grid
        .cells()
        .iter()
        .zip(&plan.sources)
        .filter(|(_, source)| source.is_none())
        .map(|(spec, _)| spec.clone())
        .collect();
    let delta_run = if delta_specs.is_empty() {
        None
    } else {
        Some(scheduler.run(&ExperimentGrid::custom(delta_specs))?)
    };

    let mut delta_cells = delta_run
        .as_ref()
        .map(|run| run.report.cells.iter())
        .unwrap_or_default();
    let cells =
        plan.sources
            .iter()
            .map(|source| match source {
                Some(prior_idx) => Ok(prior.cells[*prior_idx].clone()),
                None => delta_cells.next().cloned().ok_or_else(|| {
                    BlurNetError::BadConfig("delta run returned too few cells".into())
                }),
            })
            .collect::<Result<Vec<_>>>()?;

    Ok(ResumedRun {
        report: RunReport {
            schema: RESULTS_SCHEMA.to_string(),
            scale: scheduler.scale().to_string(),
            seed: scheduler.seed(),
            cells,
        },
        replayed: plan.replayed(),
        executed: plan.delta(),
        profile: delta_run.map(|run| run.profile),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CellReport;
    use crate::Scale;

    fn fake_report(scale: &str, seed: u64, labels: &[(&str, &str, CellStatus)]) -> RunReport {
        RunReport {
            schema: RESULTS_SCHEMA.to_string(),
            scale: scale.to_string(),
            seed,
            cells: labels
                .iter()
                .map(|(experiment, label, status)| CellReport {
                    experiment: experiment.to_string(),
                    label: label.to_string(),
                    status: status.clone(),
                    output: None,
                })
                .collect(),
        }
    }

    #[test]
    fn mismatched_runs_are_rejected() {
        let grid = ExperimentGrid::micro();
        let scale = Scale::Smoke.to_string();
        let mut wrong_schema = fake_report(&scale, 7, &[]);
        wrong_schema.schema = "blurnet-results/v999".to_string();
        assert!(plan_resume(&grid, &wrong_schema, &scale, 7).is_err());
        let wrong_scale = fake_report("paper", 7, &[]);
        assert!(plan_resume(&grid, &wrong_scale, &scale, 7).is_err());
        let wrong_seed = fake_report(&scale, 8, &[]);
        assert!(plan_resume(&grid, &wrong_seed, &scale, 7).is_err());
    }

    #[test]
    fn only_ok_cells_replay() {
        let grid = ExperimentGrid::micro();
        let scale = Scale::Smoke.to_string();
        let specs = grid.cells();
        // Prior report: first cell Ok, second Failed, rest absent.
        let prior = fake_report(
            &scale,
            7,
            &[
                (specs[0].experiment, &specs[0].label, CellStatus::Ok),
                (
                    specs[1].experiment,
                    &specs[1].label,
                    CellStatus::Failed {
                        error: "boom".into(),
                    },
                ),
            ],
        );
        let plan = plan_resume(&grid, &prior, &scale, 7).unwrap();
        assert_eq!(plan.replayed(), 1);
        assert_eq!(plan.delta(), grid.len() - 1);
    }

    #[test]
    fn fully_covered_grids_schedule_nothing() {
        let grid = ExperimentGrid::micro();
        let scale = Scale::Smoke.to_string();
        let all_ok: Vec<_> = grid
            .cells()
            .iter()
            .map(|s| (s.experiment, s.label.as_str(), CellStatus::Ok))
            .collect();
        let entries: Vec<(&str, &str, CellStatus)> =
            all_ok.iter().map(|(e, l, s)| (*e, *l, s.clone())).collect();
        let prior = fake_report(&scale, 7, &entries);
        let plan = plan_resume(&grid, &prior, &scale, 7).unwrap();
        assert_eq!(plan.replayed(), grid.len());
        assert_eq!(plan.delta(), 0);
    }
}
