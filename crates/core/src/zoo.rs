//! The model zoo: a dataset plus a cache of trained defended models.
//!
//! Table II alone requires fifteen trained variants, and the adaptive and
//! PGD evaluations reuse most of them. The zoo trains each
//! [`DefenseKind`] at most once per process and hands out clones.

use std::sync::Arc;

use blurnet_data::SignDataset;
use blurnet_defenses::{train_defended_model, DefendedModel, DefenseKind, VariantCache};

use crate::{Result, Scale};

/// Dataset plus trained-model cache shared by the experiment modules.
///
/// The cache is a [`VariantCache`] — the same store the experiment
/// scheduler shares across concurrent evaluation cells — so a zoo can be
/// pre-seeded from (or hand its variants to) a scheduler run without
/// retraining.
#[derive(Debug)]
pub struct ModelZoo {
    scale: Scale,
    seed: u64,
    dataset: SignDataset,
    cache: VariantCache,
}

impl ModelZoo {
    /// Generates the dataset for `scale` and an empty model cache.
    ///
    /// # Errors
    ///
    /// Propagates dataset-generation errors.
    pub fn new(scale: Scale, seed: u64) -> Result<Self> {
        let dataset = SignDataset::generate(&scale.dataset_config(), seed)?;
        Ok(ModelZoo {
            scale,
            seed,
            dataset,
            cache: VariantCache::new(),
        })
    }

    /// The scale profile this zoo was built for.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The dataset seed this zoo was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared dataset.
    pub fn dataset(&self) -> &SignDataset {
        &self.dataset
    }

    /// Number of trained models currently cached.
    pub fn cached_models(&self) -> usize {
        self.cache.len()
    }

    /// Returns a trained model for the defense, training it on first use.
    ///
    /// The returned model is a clone; callers may freely mutate it (attacks
    /// need mutable access to the network) without invalidating the cache.
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn get_or_train(&mut self, defense: &DefenseKind) -> Result<DefendedModel> {
        Ok((*self.get_or_train_shared(defense)?).clone())
    }

    /// Like [`ModelZoo::get_or_train`] but returns the shared (read-only)
    /// cache handle instead of a deep clone.
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn get_or_train_shared(&mut self, defense: &DefenseKind) -> Result<Arc<DefendedModel>> {
        if let Some(model) = self.cache.get(&defense.label()) {
            return Ok(model);
        }
        let model = train_defended_model(defense, &self.dataset, &self.scale.train_config())?;
        Ok(self.cache.insert(model))
    }

    /// Inserts an externally-built model (used by Table I, whose filtered
    /// victims share the baseline's weights rather than being retrained).
    ///
    /// Like [`VariantCache::insert`], the **first** variant stored under a
    /// defense label wins: inserting a model whose label is already cached
    /// is a no-op, so a trained variant can never be silently swapped out
    /// mid-run.
    pub fn insert(&mut self, model: DefendedModel) {
        self.cache.insert(model);
    }

    /// The underlying variant cache (shared with scheduler runs).
    pub fn variants(&self) -> &VariantCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_is_cached_per_defense() {
        let mut zoo = ModelZoo::new(Scale::Smoke, 3).unwrap();
        assert_eq!(zoo.cached_models(), 0);
        let a = zoo.get_or_train(&DefenseKind::Baseline).unwrap();
        assert_eq!(zoo.cached_models(), 1);
        let b = zoo.get_or_train(&DefenseKind::Baseline).unwrap();
        assert_eq!(zoo.cached_models(), 1);
        // Cached copies share the same weights.
        assert_eq!(
            a.network().to_bytes().unwrap(),
            b.network().to_bytes().unwrap()
        );
        assert_eq!(zoo.scale(), Scale::Smoke);
        assert!(zoo.dataset().train_len() > 0);
    }

    #[test]
    fn insert_registers_external_models() {
        let mut zoo = ModelZoo::new(Scale::Smoke, 3).unwrap();
        let baseline = zoo.get_or_train(&DefenseKind::Baseline).unwrap();
        let reused = DefendedModel::new(
            baseline.network().clone(),
            DefenseKind::InputFilter { kernel: 3 },
            baseline.arch().clone(),
            baseline.training_report().clone(),
        );
        zoo.insert(reused);
        assert_eq!(zoo.cached_models(), 2);
        let fetched = zoo
            .get_or_train(&DefenseKind::InputFilter { kernel: 3 })
            .unwrap();
        assert_eq!(
            fetched.network().to_bytes().unwrap(),
            baseline.network().to_bytes().unwrap()
        );
    }
}
