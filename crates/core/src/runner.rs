//! The [`BatchRunner`]: one evaluation driver for every experiment.
//!
//! Each paper table is a grid of attack × defense evaluations, and each
//! cell boils down to the same operations: classify a set of images
//! through a defended model, or run an attack over a set and judge the
//! results. `BatchRunner` funnels all of them through the batch-parallel
//! inference engine ([`blurnet_nn::BatchEngine`]) so every experiment —
//! Tables I–V and the figures — rides the same sharded, deterministic
//! forward path instead of per-image loops.

use blurnet_attacks::rp2::TargetSweep;
use blurnet_attacks::{
    evaluate_transfer, l2_dissimilarity, targeted_success_rate, AttackEvaluation, PgdAttack,
    Rp2Attack, TransferReport, TransferSet,
};
use blurnet_data::Batch;
use blurnet_defenses::DefendedModel;
use blurnet_tensor::Tensor;

use crate::{BlurNetError, Result};

/// Drives attack and accuracy evaluations for one defended model through
/// the batch-parallel inference path.
///
/// The runner borrows the model mutably for its lifetime: white-box
/// attacks need gradient access to the underlying network, and the
/// defended prediction path may consume randomness (smoothing).
///
/// ```
/// use blurnet::BatchRunner;
/// use blurnet_defenses::{DefendedModel, DefenseKind};
/// use blurnet_defenses::model::TrainingReport;
/// use blurnet_nn::LisaCnn;
/// use blurnet_tensor::Tensor;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let builder = LisaCnn::new(18).input_size(16).conv1_filters(4);
/// let net = builder.build(&mut rng)?;
/// let mut model = DefendedModel::new(
///     net,
///     DefenseKind::Baseline,
///     builder.config().clone(),
///     TrainingReport { epoch_losses: vec![], test_accuracy: 0.0 },
/// );
/// let mut runner = BatchRunner::new(&mut model);
/// let images = vec![Tensor::zeros(&[3, 16, 16]); 4];
/// // One sharded forward pass classifies the whole set.
/// let predictions = runner.classify(&images)?;
/// assert_eq!(predictions.len(), 4);
/// # Ok::<(), blurnet::BlurNetError>(())
/// ```
#[derive(Debug)]
pub struct BatchRunner<'m> {
    model: &'m mut DefendedModel,
}

impl<'m> BatchRunner<'m> {
    /// Wraps a defended model for batched evaluation.
    pub fn new(model: &'m mut DefendedModel) -> Self {
        BatchRunner { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &DefendedModel {
        self.model
    }

    /// Mutable access to the wrapped model (attack generation needs the
    /// underlying network's gradients).
    pub fn model_mut(&mut self) -> &mut DefendedModel {
        self.model
    }

    /// Classifies a set of images through the defended prediction path in
    /// one batch-parallel pass (randomized smoothing falls back to
    /// per-image voting).
    ///
    /// # Errors
    ///
    /// Propagates preprocessing and network errors.
    pub fn classify(&mut self, images: &[Tensor]) -> Result<Vec<usize>> {
        Ok(self.model.classify_set(images)?)
    }

    /// Accuracy of the defended prediction path on a labelled batch.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty batch.
    pub fn accuracy(&mut self, batch: &Batch) -> Result<f32> {
        Ok(self.model.accuracy(batch)?)
    }

    /// Runs a targeted RP2 sweep: adversarial examples are generated
    /// white-box on the underlying network — the whole image set optimized
    /// at once through the batched gradient engine, the network staying
    /// immutable — while success is judged through the model's **defended**
    /// prediction path (input filters and randomized smoothing included),
    /// one batched classification per target.
    ///
    /// # Errors
    ///
    /// Returns [`BlurNetError::BadConfig`] for empty image or target sets;
    /// propagates attack errors.
    pub fn rp2_sweep(
        &mut self,
        attack: &Rp2Attack,
        images: &[Tensor],
        targets: &[usize],
    ) -> Result<TargetSweep> {
        if images.is_empty() || targets.is_empty() {
            return Err(BlurNetError::BadConfig(
                "sweep needs at least one image and one target".into(),
            ));
        }
        let mut per_target = Vec::with_capacity(targets.len());
        for &target in targets {
            let adversarial = attack.generate_set(self.model.network(), images, target)?;
            let preds = self.classify(&adversarial)?;
            let mut dissims = Vec::with_capacity(images.len());
            for (clean, adv) in images.iter().zip(adversarial.iter()) {
                dissims.push(l2_dissimilarity(clean, adv)?);
            }
            per_target.push((
                target,
                AttackEvaluation {
                    success_rate: targeted_success_rate(&preds, target)?,
                    l2_dissimilarity: dissims.iter().sum::<f32>() / dissims.len() as f32,
                    count: images.len(),
                },
            ));
        }
        Ok(TargetSweep { per_target })
    }

    /// Runs the ε-bounded PGD evaluation against the underlying network
    /// (Table IV judges through the plain network, as the paper does):
    /// generation runs every PGD step on the whole batch through the
    /// batched gradient engine, and clean and adversarial sets are each
    /// judged with one batched pass.
    ///
    /// # Errors
    ///
    /// Propagates attack errors.
    pub fn pgd_evaluate(
        &mut self,
        attack: &PgdAttack,
        images: &[Tensor],
        labels: &[usize],
    ) -> Result<AttackEvaluation> {
        Ok(attack.evaluate(self.model.network(), images, labels)?)
    }

    /// Evaluates transferred adversarial examples against this model as
    /// the black-box victim (Table I), classifying both sets batched.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn transfer(
        &mut self,
        clean: &[Tensor],
        adversarial: &[Tensor],
        labels: &[usize],
    ) -> Result<TransferReport> {
        Ok(evaluate_transfer(self.model, clean, adversarial, labels)?)
    }

    /// Evaluates a pre-generated [`TransferSet`] artifact against this
    /// model as the black-box victim — the per-victim half of a Table I
    /// cell, reused across every victim sharing the artifact.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn transfer_set(&mut self, set: &TransferSet) -> Result<TransferReport> {
        Ok(set.evaluate(self.model)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_defenses::model::TrainingReport;
    use blurnet_defenses::DefenseKind;
    use blurnet_nn::LisaCnn;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn untrained(defense: DefenseKind) -> DefendedModel {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let builder = LisaCnn::new(18).input_size(16).conv1_filters(4);
        let net = builder.build(&mut rng).unwrap();
        DefendedModel::new(
            net,
            defense,
            builder.config().clone(),
            TrainingReport {
                epoch_losses: vec![],
                test_accuracy: 0.0,
            },
        )
    }

    #[test]
    fn classify_matches_per_image_path() {
        let mut model = untrained(DefenseKind::InputFilter { kernel: 3 });
        let images: Vec<Tensor> = (0..3)
            .map(|i| Tensor::full(&[3, 16, 16], 0.3 + 0.2 * i as f32))
            .collect();
        let singles: Vec<usize> = images
            .iter()
            .map(|i| model.classify_one(i).unwrap())
            .collect();
        let mut runner = BatchRunner::new(&mut model);
        assert_eq!(runner.classify(&images).unwrap(), singles);
        assert!(runner.model().network().parameter_count() > 0);
    }

    #[test]
    fn rp2_sweep_validates_inputs() {
        let mut model = untrained(DefenseKind::Baseline);
        let mut runner = BatchRunner::new(&mut model);
        let attack = Rp2Attack::new(Default::default()).unwrap();
        assert!(runner.rp2_sweep(&attack, &[], &[1]).is_err());
        assert!(runner
            .rp2_sweep(&attack, &[Tensor::zeros(&[3, 16, 16])], &[])
            .is_err());
    }
}
