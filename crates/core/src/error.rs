use std::fmt;

use blurnet_attacks::AttackError;
use blurnet_data::DataError;
use blurnet_defenses::DefenseError;
use blurnet_nn::NnError;
use blurnet_signal::SignalError;
use blurnet_tensor::TensorError;

/// Top-level error type of the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub enum BlurNetError {
    /// An experiment configuration was invalid.
    BadConfig(String),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A signal-processing operation failed.
    Signal(SignalError),
    /// A network operation failed.
    Network(NnError),
    /// A dataset operation failed.
    Data(DataError),
    /// An attack failed.
    Attack(AttackError),
    /// A defense failed to build or train.
    Defense(DefenseError),
    /// The run journal could not be written or recovered.
    Journal(crate::journal::JournalError),
}

impl fmt::Display for BlurNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlurNetError::BadConfig(msg) => write!(f, "bad experiment configuration: {msg}"),
            BlurNetError::Tensor(e) => write!(f, "tensor error: {e}"),
            BlurNetError::Signal(e) => write!(f, "signal error: {e}"),
            BlurNetError::Network(e) => write!(f, "network error: {e}"),
            BlurNetError::Data(e) => write!(f, "data error: {e}"),
            BlurNetError::Attack(e) => write!(f, "attack error: {e}"),
            BlurNetError::Defense(e) => write!(f, "defense error: {e}"),
            BlurNetError::Journal(e) => write!(f, "journal error: {e}"),
        }
    }
}

impl std::error::Error for BlurNetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlurNetError::Tensor(e) => Some(e),
            BlurNetError::Signal(e) => Some(e),
            BlurNetError::Network(e) => Some(e),
            BlurNetError::Data(e) => Some(e),
            BlurNetError::Attack(e) => Some(e),
            BlurNetError::Defense(e) => Some(e),
            BlurNetError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for BlurNetError {
            fn from(e: $ty) -> Self {
                BlurNetError::$variant(e)
            }
        }
    };
}

from_err!(Tensor, TensorError);
from_err!(Signal, SignalError);
from_err!(Network, NnError);
from_err!(Data, DataError);
from_err!(Attack, AttackError);
from_err!(Defense, DefenseError);
