//! # BlurNet: defense by filtering the feature maps
//!
//! A from-scratch Rust reproduction of *BlurNet: Defense by Filtering the
//! Feature Maps* (Raju & Lipasti, DSN Workshops 2020).
//!
//! The crate is the public facade of the workspace: it re-exports the
//! substrates (tensor math, signal processing, the CNN framework, the
//! synthetic LISA dataset, the attacks and the defenses) and adds the
//! experiment harness that regenerates every table and figure of the
//! paper's evaluation:
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`experiments::table1`] | Table I — black-box transfer: input vs feature-map filtering |
//! | [`experiments::table2`] | Table II — white-box evaluation of all defenses |
//! | [`experiments::table3`] | Table III — adaptive attacks per defense |
//! | [`experiments::table4`] | Table IV — PGD breaks every defense |
//! | [`experiments::table5`] | Table V — adversarial training vs adaptive attacks |
//! | [`experiments::figures`] | Figures 1–6 — spectra, DCT sweep, ASR/L2 scatters |
//!
//! # Quick start
//!
//! ```no_run
//! use blurnet::{ModelZoo, Scale};
//! use blurnet_defenses::DefenseKind;
//!
//! let mut zoo = ModelZoo::new(Scale::Smoke, 7)?;
//! let mut model = zoo.get_or_train(&DefenseKind::TotalVariation { alpha: 1e-4 })?;
//! let accuracy = model.accuracy(&zoo.dataset().test_batch()?)?;
//! println!("legitimate accuracy: {accuracy:.3}");
//! # Ok::<(), blurnet::BlurNetError>(())
//! ```

#![warn(missing_docs)]

mod error;
pub mod experiments;
pub mod queue;
pub mod report;
pub mod runner;
pub mod scale;
pub mod scheduler;
pub mod zoo;

pub use error::BlurNetError;
pub use queue::{run_workers, BoundedQueue, PopTimeout};
pub use report::{CellOutput, CellReport, CellStatus, RunReport, Table};
pub use runner::BatchRunner;
pub use scale::Scale;
pub use scheduler::{ExperimentScheduler, RunProfile, ScheduledRun};
pub use zoo::ModelZoo;

pub use blurnet_attacks as attacks;
pub use blurnet_data as data;
pub use blurnet_defenses as defenses;
pub use blurnet_nn as nn;
pub use blurnet_signal as signal;
pub use blurnet_tensor as tensor;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, BlurNetError>;
