//! # BlurNet: defense by filtering the feature maps
//!
//! A from-scratch Rust reproduction of *BlurNet: Defense by Filtering the
//! Feature Maps* (Raju & Lipasti, DSN Workshops 2020).
//!
//! The crate is the public facade of the workspace: it re-exports the
//! substrates (tensor math, signal processing, the CNN framework, the
//! synthetic LISA dataset, the attacks and the defenses) and adds the
//! experiment harness that regenerates every table and figure of the
//! paper's evaluation:
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`experiments::table1`] | Table I — black-box transfer: input vs feature-map filtering |
//! | [`experiments::table2`] | Table II — white-box evaluation of all defenses |
//! | [`experiments::table3`] | Table III — adaptive attacks per defense |
//! | [`experiments::table4`] | Table IV — PGD breaks every defense |
//! | [`experiments::table5`] | Table V — adversarial training vs adaptive attacks |
//! | [`experiments::figures`] | Figures 1–6 — spectra, DCT sweep, ASR/L2 scatters |
//!
//! # Quick start
//!
//! ```no_run
//! use blurnet::{ModelZoo, Scale};
//! use blurnet_defenses::DefenseKind;
//!
//! let mut zoo = ModelZoo::new(Scale::Smoke, 7)?;
//! let mut model = zoo.get_or_train(&DefenseKind::TotalVariation { alpha: 1e-4 })?;
//! let accuracy = model.accuracy(&zoo.dataset().test_batch()?)?;
//! println!("legitimate accuracy: {accuracy:.3}");
//! # Ok::<(), blurnet::BlurNetError>(())
//! ```

#![warn(missing_docs)]

mod error;
pub mod experiments;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod journal;
pub mod queue;
pub mod report;
pub mod resume;
pub mod runner;
pub mod scale;
pub mod scheduler;
pub mod zoo;

pub use error::BlurNetError;
pub use journal::{JournalError, JournalHeader, JournalWriter, RecoveredJournal};
pub use queue::{run_workers, BoundedQueue, PopTimeout, TryPush};
pub use report::{CellOutput, CellReport, CellStatus, RunReport, Table};
pub use resume::{
    plan_resume, recover_prior, resume_run, resume_run_with_journal, PriorSource, ResumePlan,
    ResumedRun,
};
pub use runner::BatchRunner;
pub use scale::Scale;
pub use scheduler::{ExperimentScheduler, RunProfile, ScheduledRun};
pub use zoo::ModelZoo;

pub use blurnet_attacks as attacks;
pub use blurnet_data as data;
pub use blurnet_defenses as defenses;
pub use blurnet_nn as nn;
pub use blurnet_signal as signal;
pub use blurnet_tensor as tensor;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, BlurNetError>;

/// Evaluates a registered fault point (see the `fault` module, present
/// only with the `fault-injection` feature) — and expands to
/// **nothing** when the invoking crate's `fault-injection` feature is off,
/// so production builds carry neither the branch nor the site-name string.
///
/// Three forms:
///
/// * `fault_point!(site)` — statement form: executes `Panic`/`Delay`
///   faults, ignores `Error` faults (the site has no error path).
/// * `fault_point!(site, tag = expr)` — like the statement form, but the
///   invocation carries a tag for `fault::FaultSpec::tagged` filters.
/// * `fault_point!(site, err = expr)` — executes `Panic`/`Delay` faults
///   and `return`s `Err(expr)` from the enclosing function when an
///   `Error` fault fires.
///
/// Downstream crates (e.g. `blurnet-serve`) must declare their own
/// `fault-injection` feature forwarding to `blurnet/fault-injection`; the
/// `cfg` inside the expansion is resolved against the *invoking* crate.
#[macro_export]
macro_rules! fault_point {
    ($site:expr) => {{
        #[cfg(feature = "fault-injection")]
        {
            let _ = $crate::fault::fire($site);
        }
    }};
    ($site:expr, tag = $tag:expr) => {{
        #[cfg(feature = "fault-injection")]
        {
            let _ = $crate::fault::fire_tagged($site, $tag);
        }
    }};
    ($site:expr, err = $err:expr) => {{
        #[cfg(feature = "fault-injection")]
        {
            if $crate::fault::fire($site) {
                return Err($err);
            }
        }
    }};
}
