//! Deterministic fault injection for the concurrency layers (compiled
//! only with the `fault-injection` feature).
//!
//! A **fault point** is a named site in the queue/scheduler/serving stack
//! where a controlled failure can be injected: a panic, a delay, or an
//! error the site maps to its own failure mode (a refused push, a spurious
//! timeout, an I/O error on the wire). Sites are compiled in through the
//! [`fault_point!`](crate::fault_point) macro, which expands to **nothing**
//! when the feature is off — release builds carry no fault symbols, no
//! site-name strings, and no branch on the hot paths (CI asserts this by
//! grepping the release binaries for [`MARKER`]).
//!
//! # Determinism
//!
//! Faults are armed programmatically ([`arm`]) with a [`FaultSpec`] that
//! decides *which hits* of a site fire:
//!
//! * [`FaultSpec::on_hit`] fires on exactly the n-th invocation (1-based)
//!   and the `max_fires` that follow it — fully deterministic given the
//!   site's invocation order;
//! * [`FaultSpec::seeded`] flips a seed-keyed coin per hit
//!   (`splitmix64(seed ⊕ fnv(site) ⊕ hit)`), so a chaos run replays the
//!   same firing pattern for the same seed and hit order;
//! * [`FaultSpec::tagged`] restricts firing to invocations carrying a
//!   matching tag (e.g. the content hash of a poisoned request), which is
//!   what keeps a poison stable across batch-bisection retries.
//!
//! Hit and fire counts are observable ([`hits`], [`fires`]) so tests can
//! assert a scenario actually exercised its site. The registry is global
//! (fault points are reached from arbitrary worker threads); chaos tests
//! serialize themselves around [`disarm_all`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Marker string embedded in every injected panic message. CI greps the
/// release binaries for this needle to prove the feature compiled out.
pub const MARKER: &str = "blurnet-fault-injection";

/// Canonical site names, one constant per registered fault point.
pub mod sites {
    /// [`BoundedQueue::push`](crate::queue::BoundedQueue::push) entry.
    /// Error kind: the push is spuriously refused (item returned).
    pub const QUEUE_PUSH: &str = "core.queue.push";
    /// [`BoundedQueue::pop`](crate::queue::BoundedQueue::pop) entry.
    /// Error kind: a spurious `None`, as if the queue had closed.
    pub const QUEUE_POP: &str = "core.queue.pop";
    /// [`BoundedQueue::pop_timeout`](crate::queue::BoundedQueue::pop_timeout)
    /// entry. Error kind: a spurious `TimedOut`.
    pub const QUEUE_POP_TIMEOUT: &str = "core.queue.pop_timeout";
    /// A scheduler training node. Error kind: the node fails.
    pub const SCHED_TRAIN: &str = "core.sched.train";
    /// A scheduler artifact node (transfer set / sticker). Error kind:
    /// the node fails.
    pub const SCHED_ARTIFACT: &str = "core.sched.artifact";
    /// A scheduler evaluation cell. Error kind: the cell fails.
    pub const SCHED_CELL: &str = "core.sched.cell";
    /// The serve batcher, after coalescing and before dispatching a
    /// batch. Panic kind kills the batcher thread mid-flight.
    pub const SERVE_BATCH_FLUSH: &str = "serve.batcher.flush";
    /// A serve batch worker, per popped batch, **outside** the per-batch
    /// recovery scope. Panic kind kills the worker thread mid-batch.
    pub const SERVE_WORKER_BATCH: &str = "serve.worker.batch";
    /// A serve batch worker, per request, **inside** the per-batch
    /// recovery scope — tag it with the request's content hash to model a
    /// poison request that panics the forward pass.
    pub const SERVE_WORKER_REQUEST: &str = "serve.worker.request";
    /// The TCP framing layer, per received request frame. Error kind: the
    /// request is answered with an error response.
    pub const SERVE_TCP_FRAME: &str = "serve.tcp.frame";
    /// A disk-cache load inside a scheduler train/artifact node. Error
    /// kind: the load reports corruption, forcing the fall-back path that
    /// regenerates the entry from scratch.
    pub const CACHE_LOAD: &str = "core.cache.load";
    /// The run journal, before appending a completed-cell record. Error
    /// kind: the append fails and the journal self-retires (best-effort
    /// durability never fails the run). [`Abort`](super::FaultKind::Abort)
    /// kind at hit *n* is the kill-after-*n−1*-cells point of the
    /// process-level chaos sweep.
    pub const JOURNAL_APPEND: &str = "core.journal.append";
    /// The run journal, mid-append: an Error-kind firing writes a torn
    /// prefix of the record and **aborts the process** — a genuine
    /// kill-mid-append. Never arm this in-process; it is exercised only
    /// by the subprocess chaos harness (`crates/bench/tests/crash_chaos.rs`).
    pub const JOURNAL_TORN: &str = "core.journal.torn";
}

/// Every registered fault site, in declaration order. The chaos suites
/// iterate this list and assert each site has a scenario.
pub fn all_sites() -> &'static [&'static str] {
    &[
        sites::QUEUE_PUSH,
        sites::QUEUE_POP,
        sites::QUEUE_POP_TIMEOUT,
        sites::SCHED_TRAIN,
        sites::SCHED_ARTIFACT,
        sites::SCHED_CELL,
        sites::SERVE_BATCH_FLUSH,
        sites::SERVE_WORKER_BATCH,
        sites::SERVE_WORKER_REQUEST,
        sites::SERVE_TCP_FRAME,
        sites::CACHE_LOAD,
        sites::JOURNAL_APPEND,
        sites::JOURNAL_TORN,
    ]
}

/// What an armed fault does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (message contains [`MARKER`] and the site name).
    Panic,
    /// Sleep at the site, then continue normally — widens race windows.
    Delay(Duration),
    /// Report "inject an error" to the site, which maps it to its own
    /// failure mode (refused push, spurious timeout, I/O error, …).
    Error,
    /// `std::process::abort()` at the site — the process dies on the spot
    /// with no unwinding, no destructors and no flushes, modelling a
    /// SIGKILL/OOM-kill at that exact point. Only meaningful from a
    /// subprocess harness (see [`arm_from_env`]).
    Abort,
}

/// When a fault fires, relative to the site's hit counter.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Trigger {
    /// Fire from the `first` hit (1-based) for `fires` consecutive hits.
    OnHit { first: u64, fires: u64 },
    /// Fire on hit `h` iff `splitmix64(seed ^ fnv(site) ^ h)` lands below
    /// `threshold` (a probability mapped onto the u64 range).
    Seeded { seed: u64, threshold: u64 },
}

/// One armed fault: kind + trigger + optional tag filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    kind: FaultKind,
    trigger: Trigger,
    tag: Option<u64>,
}

impl FaultSpec {
    /// Fires once, on the `hit`-th invocation (1-based) of the site.
    pub fn on_hit(kind: FaultKind, hit: u64) -> Self {
        FaultSpec {
            kind,
            trigger: Trigger::OnHit {
                first: hit.max(1),
                fires: 1,
            },
            tag: None,
        }
    }

    /// Fires on every invocation from the first.
    pub fn always(kind: FaultKind) -> Self {
        FaultSpec {
            kind,
            trigger: Trigger::OnHit {
                first: 1,
                fires: u64::MAX,
            },
            tag: None,
        }
    }

    /// Fires on each hit independently with probability `p`, keyed by
    /// `seed` — the same seed and hit order replay the same pattern.
    pub fn seeded(kind: FaultKind, seed: u64, p: f64) -> Self {
        let threshold = (p.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        FaultSpec {
            kind,
            trigger: Trigger::Seeded { seed, threshold },
            tag: None,
        }
    }

    /// Restricts firing to invocations whose tag equals `tag` (untagged
    /// invocations never fire). Tag-filtered hits still advance the
    /// site's hit counter, but the trigger is evaluated against the
    /// count of *matching* hits only.
    pub fn tagged(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }
}

/// Per-site live state: the armed spec plus counters.
struct SiteState {
    spec: FaultSpec,
    /// Hits evaluated against the trigger (tag-matching hits only).
    matched: u64,
    fires: u64,
}

/// Global registry: armed sites plus lifetime hit counters for every site
/// ever touched (armed or not).
struct Registry {
    armed: HashMap<&'static str, SiteState>,
}

static ARMED: Mutex<Option<Registry>> = Mutex::new(None);
/// Total invocations across all sites since the last [`disarm_all`] —
/// cheap liveness signal for tests.
static TOTAL_HITS: AtomicU64 = AtomicU64::new(0);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = ARMED.lock().expect("fault registry poisoned");
    let registry = guard.get_or_insert_with(|| Registry {
        armed: HashMap::new(),
    });
    f(registry)
}

/// FNV-1a over a byte slice — the site/tag hash everything here shares.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The splitmix64 finalizer — the seed-keyed coin behind
/// [`FaultSpec::seeded`].
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Content hash for tagging a poisoned request: FNV over the f32 bit
/// patterns, stable across clones and batch positions.
pub fn tag_f32s(values: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Arms `site` with `spec`, replacing any previous arming (and resetting
/// its counters). `site` must be one of [`all_sites`].
///
/// # Panics
///
/// Panics if `site` is not a registered fault point — a typo in a chaos
/// scenario should fail loudly, not silently never fire.
pub fn arm(site: &str, spec: FaultSpec) {
    let canonical = all_sites()
        .iter()
        .find(|&&s| s == site)
        .unwrap_or_else(|| panic!("{MARKER}: unknown fault site {site:?}"));
    with_registry(|reg| {
        reg.armed.insert(
            canonical,
            SiteState {
                spec,
                matched: 0,
                fires: 0,
            },
        );
    });
}

/// Disarms every site and resets all counters.
pub fn disarm_all() {
    *ARMED.lock().expect("fault registry poisoned") = None;
    TOTAL_HITS.store(0, Ordering::Relaxed);
}

/// Number of times `site`'s armed trigger was evaluated (tag-matching
/// invocations) since it was armed. Zero for unarmed sites.
pub fn hits(site: &str) -> u64 {
    with_registry(|reg| reg.armed.get(site).map_or(0, |s| s.matched))
}

/// Number of times `site` actually fired since it was armed.
pub fn fires(site: &str) -> u64 {
    with_registry(|reg| reg.armed.get(site).map_or(0, |s| s.fires))
}

/// Total fault-point invocations (all sites) since the last
/// [`disarm_all`].
pub fn total_hits() -> u64 {
    TOTAL_HITS.load(Ordering::Relaxed)
}

/// Evaluates the fault point `site` for an untagged invocation. Executes
/// `Panic`/`Delay` faults in place; returns `true` when an `Error` fault
/// fired and the site should inject its own failure mode.
pub fn fire(site: &str) -> bool {
    evaluate(site, None)
}

/// Evaluates the fault point `site` for an invocation carrying `tag`
/// (see [`FaultSpec::tagged`]).
pub fn fire_tagged(site: &str, tag: u64) -> bool {
    evaluate(site, Some(tag))
}

fn evaluate(site: &str, tag: Option<u64>) -> bool {
    TOTAL_HITS.fetch_add(1, Ordering::Relaxed);
    // Decide under the lock, act (panic/sleep) outside it.
    let action = with_registry(|reg| {
        let state = reg.armed.get_mut(site)?;
        if state.spec.tag.is_some() && state.spec.tag != tag {
            return None;
        }
        state.matched += 1;
        let hit = state.matched;
        let fires = match state.spec.trigger {
            Trigger::OnHit { first, fires } => hit >= first && (hit - first) < fires,
            Trigger::Seeded { seed, threshold } => {
                splitmix(seed ^ fnv(site.as_bytes()) ^ hit) < threshold
            }
        };
        if !fires {
            return None;
        }
        state.fires += 1;
        Some(state.spec.kind.clone())
    });
    match action {
        None => false,
        Some(FaultKind::Error) => true,
        Some(FaultKind::Delay(d)) => {
            std::thread::sleep(d);
            false
        }
        Some(FaultKind::Panic) => {
            panic!("{MARKER}: injected panic at fault site {site}");
        }
        Some(FaultKind::Abort) => {
            // The one observable trace before the process vanishes — the
            // chaos harness greps for it to confirm the kill point.
            eprintln!("{MARKER}: injected abort at fault site {site}");
            std::process::abort();
        }
    }
}

/// Environment variable [`arm_from_env`] reads: a comma-separated list of
/// `site:kind[@hit]` entries, e.g.
/// `BLURNET_FAULT=core.journal.append:abort@3,core.queue.pop:error`.
pub const FAULT_ENV: &str = "BLURNET_FAULT";

/// Arms fault sites from the [`FAULT_ENV`] environment variable — the
/// bridge that lets a chaos harness inject faults into a **subprocess**
/// it spawns (the registry is per-process). Each entry is
/// `site:kind[@hit]` with kind one of `panic`, `error`, `abort` or
/// `delay-<ms>`; `@hit` selects the 1-based invocation that fires
/// (default 1). Binaries compiled with the feature call this at startup;
/// an unset or empty variable arms nothing.
///
/// # Panics
///
/// Panics on an unknown site or malformed entry — a typo in a chaos
/// scenario should fail loudly, not silently never fire.
pub fn arm_from_env() {
    let Ok(value) = std::env::var(FAULT_ENV) else {
        return;
    };
    for entry in value.split(',').filter(|e| !e.trim().is_empty()) {
        let entry = entry.trim();
        let (site, rest) = entry
            .split_once(':')
            .unwrap_or_else(|| panic!("{MARKER}: malformed {FAULT_ENV} entry {entry:?}"));
        let (kind, hit) = match rest.split_once('@') {
            Some((kind, hit)) => (
                kind,
                hit.parse::<u64>()
                    .unwrap_or_else(|_| panic!("{MARKER}: bad hit in {FAULT_ENV} entry {entry:?}")),
            ),
            None => (rest, 1),
        };
        let kind = match kind {
            "panic" => FaultKind::Panic,
            "error" => FaultKind::Error,
            "abort" => FaultKind::Abort,
            _ => match kind.strip_prefix("delay-").and_then(|ms| ms.parse().ok()) {
                Some(ms) => FaultKind::Delay(Duration::from_millis(ms)),
                None => panic!("{MARKER}: unknown fault kind in {FAULT_ENV} entry {entry:?}"),
            },
        };
        arm(site, FaultSpec::on_hit(kind, hit));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is global; fault tests serialize around this lock.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn on_hit_fires_exactly_once_at_the_requested_hit() {
        let _guard = LOCK.lock().unwrap();
        disarm_all();
        arm(sites::QUEUE_PUSH, FaultSpec::on_hit(FaultKind::Error, 3));
        assert!(!fire(sites::QUEUE_PUSH));
        assert!(!fire(sites::QUEUE_PUSH));
        assert!(fire(sites::QUEUE_PUSH));
        assert!(!fire(sites::QUEUE_PUSH));
        assert_eq!(hits(sites::QUEUE_PUSH), 4);
        assert_eq!(fires(sites::QUEUE_PUSH), 1);
        disarm_all();
        assert!(!fire(sites::QUEUE_PUSH));
    }

    #[test]
    fn tagged_faults_ignore_other_tags() {
        let _guard = LOCK.lock().unwrap();
        disarm_all();
        let poison = tag_f32s(&[1.0, 2.0, 3.0]);
        arm(
            sites::SERVE_WORKER_REQUEST,
            FaultSpec::always(FaultKind::Error).tagged(poison),
        );
        assert!(!fire_tagged(sites::SERVE_WORKER_REQUEST, poison ^ 1));
        assert!(!fire(sites::SERVE_WORKER_REQUEST));
        assert!(fire_tagged(sites::SERVE_WORKER_REQUEST, poison));
        assert!(fire_tagged(sites::SERVE_WORKER_REQUEST, poison));
        assert_eq!(fires(sites::SERVE_WORKER_REQUEST), 2);
        disarm_all();
    }

    #[test]
    fn seeded_faults_replay_bit_identically() {
        let _guard = LOCK.lock().unwrap();
        let pattern = |seed: u64| -> Vec<bool> {
            disarm_all();
            arm(
                sites::SCHED_CELL,
                FaultSpec::seeded(FaultKind::Error, seed, 0.5),
            );
            let p = (0..64).map(|_| fire(sites::SCHED_CELL)).collect();
            disarm_all();
            p
        };
        let a = pattern(42);
        assert_eq!(a, pattern(42), "same seed must replay the same pattern");
        assert_ne!(a, pattern(43), "different seeds should diverge");
        assert!(a.iter().any(|&f| f) && !a.iter().all(|&f| f));
    }

    #[test]
    fn injected_panics_carry_the_marker() {
        let _guard = LOCK.lock().unwrap();
        disarm_all();
        arm(sites::SCHED_CELL, FaultSpec::always(FaultKind::Panic));
        let payload =
            std::panic::catch_unwind(|| fire(sites::SCHED_CELL)).expect_err("armed panic fires");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic message is a string");
        assert!(msg.contains(MARKER) && msg.contains(sites::SCHED_CELL));
        disarm_all();
    }

    #[test]
    fn delay_faults_pause_without_failing() {
        let _guard = LOCK.lock().unwrap();
        disarm_all();
        arm(
            sites::QUEUE_POP,
            FaultSpec::on_hit(FaultKind::Delay(Duration::from_millis(15)), 1),
        );
        let t0 = std::time::Instant::now();
        assert!(!fire(sites::QUEUE_POP));
        assert!(t0.elapsed() >= Duration::from_millis(15));
        disarm_all();
    }

    #[test]
    fn arm_from_env_parses_site_kind_and_hit() {
        let _guard = LOCK.lock().unwrap();
        disarm_all();
        std::env::set_var(FAULT_ENV, "core.queue.push:error@2, core.queue.pop:delay-5");
        arm_from_env();
        std::env::remove_var(FAULT_ENV);
        assert!(!fire(sites::QUEUE_PUSH));
        assert!(fire(sites::QUEUE_PUSH), "error kind fires on hit 2");
        let t0 = std::time::Instant::now();
        assert!(!fire(sites::QUEUE_POP), "delay kind pauses, never errors");
        assert!(t0.elapsed() >= Duration::from_millis(5));
        disarm_all();
        // Malformed entries fail loudly.
        for bad in [
            "no-colon",
            "core.queue.push:nope",
            "core.queue.push:error@x",
        ] {
            std::env::set_var(FAULT_ENV, bad);
            assert!(
                std::panic::catch_unwind(arm_from_env).is_err(),
                "{bad:?} should be rejected"
            );
            std::env::remove_var(FAULT_ENV);
        }
        disarm_all();
    }

    #[test]
    fn unknown_sites_are_rejected_at_arm_time() {
        let _guard = LOCK.lock().unwrap();
        disarm_all();
        assert!(std::panic::catch_unwind(|| {
            arm("core.queue.typo", FaultSpec::always(FaultKind::Error))
        })
        .is_err());
        disarm_all();
    }
}
