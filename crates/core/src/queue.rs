//! The bounded work queue + worker-fleet primitive shared by the
//! experiment scheduler and the serving subsystem.
//!
//! Both request paths in this workspace have the same shape: producers
//! enqueue units of work into a **bounded** queue, a fixed fleet of
//! workers drains it, and shutdown must wake every blocked party exactly
//! once. The [`ExperimentScheduler`](crate::ExperimentScheduler) streams
//! DAG nodes through one (capacity = node count, so pushes never block);
//! the `blurnet-serve` micro-batcher streams classification requests
//! through another (capacity = admission depth, so overload back-pressures
//! clients instead of growing an unbounded backlog).
//!
//! [`BoundedQueue`] is that shared substrate: a mutex-plus-condvar MPMC
//! channel with blocking [`push`](BoundedQueue::push),
//! blocking [`pop`](BoundedQueue::pop), deadline-aware
//! [`pop_timeout`](BoundedQueue::pop_timeout) (the serving flush window),
//! and [`close`](BoundedQueue::close) semantics — after a close, pending
//! items still drain, new pushes are refused, and every blocked consumer
//! wakes. [`run_workers`] is the companion fleet launcher: it runs one
//! worker body per id on a dedicated rayon pool (or inline for a single
//! worker, keeping the whole ambient rayon budget available to the work
//! itself).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use rayon::prelude::*;

/// Outcome of a [`BoundedQueue::pop_timeout`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum PopTimeout<T> {
    /// An item was dequeued before the deadline.
    Item(T),
    /// The deadline passed with the queue still empty (and open).
    TimedOut,
    /// The queue was closed and fully drained — no item will ever arrive.
    Closed,
}

/// Outcome of a [`BoundedQueue::try_push`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPush<T> {
    /// The item was enqueued.
    Pushed,
    /// The queue is at capacity; the item is returned. This is the
    /// admission-control signal: a shedding producer maps it to an
    /// explicit `queue_full` rejection instead of blocking.
    Full(T),
    /// The queue is closed; the item is returned.
    Closed(T),
}

/// Mutable queue state guarded by one mutex (never held while running
/// work).
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded, closeable MPMC work queue.
///
/// * [`push`](BoundedQueue::push) blocks while the queue is full and
///   refuses (returning the item) once the queue is closed — back-pressure
///   instead of unbounded growth.
/// * [`pop`](BoundedQueue::pop) blocks while the queue is empty and
///   returns `None` once the queue is closed **and** drained — items
///   enqueued before the close are always delivered.
/// * [`close`](BoundedQueue::close) wakes every blocked producer and
///   consumer.
///
/// ```
/// use blurnet::queue::BoundedQueue;
///
/// let queue = BoundedQueue::new(4);
/// queue.push(1).unwrap();
/// queue.push(2).unwrap();
/// queue.close();
/// assert_eq!(queue.push(3), Err(3)); // closed: refused, item returned
/// assert_eq!(queue.pop(), Some(1)); // pending items still drain
/// assert_eq!(queue.pop(), Some(2));
/// assert_eq!(queue.pop(), None); // closed and empty
/// ```
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](BoundedQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` if the queue is (or becomes, while waiting)
    /// closed — the caller gets its item back instead of losing it.
    pub fn push(&self, item: T) -> Result<(), T> {
        // Fault site `core.queue.push`: an `Error` fault refuses the push
        // exactly like a closed queue would (the item comes back to the
        // caller), so producers must tolerate spurious refusals —
        // re-check [`BoundedQueue::is_closed`] before treating a refusal
        // as terminal.
        #[cfg(feature = "fault-injection")]
        if crate::fault::fire(crate::fault::sites::QUEUE_PUSH) {
            return Err(item);
        }
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).expect("bounded queue lock poisoned");
        }
    }

    /// Enqueues `item` without blocking: [`TryPush::Full`] when the queue
    /// is at capacity, [`TryPush::Closed`] once closed. The item is
    /// returned in both refusal cases.
    pub fn try_push(&self, item: T) -> TryPush<T> {
        // Fault site `core.queue.push` (shared with the blocking path):
        // an `Error` fault reports a spuriously full queue.
        #[cfg(feature = "fault-injection")]
        if crate::fault::fire(crate::fault::sites::QUEUE_PUSH) {
            return TryPush::Full(item);
        }
        let mut st = self.lock();
        if st.closed {
            return TryPush::Closed(item);
        }
        if st.items.len() < self.capacity {
            st.items.push_back(item);
            self.not_empty.notify_one();
            TryPush::Pushed
        } else {
            TryPush::Full(item)
        }
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed and drained.
    ///
    /// Under fault injection, site `core.queue.pop` can return a
    /// *spurious* `None` from an open queue (a modeled lost-wakeup), so
    /// resilient consumers confirm with
    /// [`is_closed`](BoundedQueue::is_closed) before treating `None` as
    /// shutdown.
    pub fn pop(&self) -> Option<T> {
        #[cfg(feature = "fault-injection")]
        if crate::fault::fire(crate::fault::sites::QUEUE_POP) {
            return None;
        }
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .not_empty
                .wait(st)
                .expect("bounded queue lock poisoned");
        }
    }

    /// Dequeues the oldest item, waiting at most `timeout`.
    ///
    /// Already-queued items are returned immediately even with a zero (or
    /// elapsed) timeout, which is what lets a micro-batcher with a 0-width
    /// flush window still coalesce whatever is waiting in the queue.
    pub fn pop_timeout(&self, timeout: Duration) -> PopTimeout<T> {
        // Fault site `core.queue.pop_timeout`: an `Error` fault reports a
        // spurious timeout (consumers already handle real ones).
        #[cfg(feature = "fault-injection")]
        if crate::fault::fire(crate::fault::sites::QUEUE_POP_TIMEOUT) {
            return PopTimeout::TimedOut;
        }
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                self.not_full.notify_one();
                return PopTimeout::Item(item);
            }
            if st.closed {
                return PopTimeout::Closed;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return PopTimeout::TimedOut;
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(st, remaining)
                .expect("bounded queue lock poisoned");
            st = guard;
        }
    }

    /// Closes the queue: subsequent pushes are refused, already-queued
    /// items still drain, and every blocked producer/consumer wakes.
    /// Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().expect("bounded queue lock poisoned")
    }
}

/// Runs `body(worker_id)` once per worker id in `0..workers`,
/// concurrently.
///
/// A single worker runs inline on the calling thread — no pool is built,
/// so the whole ambient rayon budget stays available to the work itself
/// (the scheduler relies on this to give single-worker runs full
/// intra-cell parallelism). Multiple workers run on a dedicated rayon pool
/// of exactly `workers` threads; if that pool cannot be built the workers
/// run sequentially on the calling thread, which is always correct for
/// queue-draining fleets (a lone consumer still drains the queue to
/// completion).
pub fn run_workers<F>(workers: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    if workers <= 1 {
        body(0);
        return;
    }
    match rayon::ThreadPoolBuilder::new().num_threads(workers).build() {
        Ok(pool) => {
            let mut ids: Vec<usize> = (0..workers).collect();
            pool.install(|| {
                ids.par_chunks_mut(1).for_each(|id| body(id[0]));
            });
        }
        Err(_) => {
            for id in 0..workers {
                body(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip_in_fifo_order() {
        let queue = BoundedQueue::new(8);
        assert!(queue.is_empty());
        assert_eq!(queue.capacity(), 8);
        for i in 0..5 {
            queue.push(i).unwrap();
        }
        assert_eq!(queue.len(), 5);
        for i in 0..5 {
            assert_eq!(queue.pop(), Some(i));
        }
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let queue = BoundedQueue::new(0);
        assert_eq!(queue.capacity(), 1);
        queue.push(1).unwrap();
        assert_eq!(queue.pop(), Some(1));
    }

    #[test]
    fn close_refuses_new_items_but_drains_pending_ones() {
        let queue = BoundedQueue::new(4);
        queue.push("a").unwrap();
        queue.close();
        assert!(queue.is_closed());
        assert_eq!(queue.push("b"), Err("b"));
        assert_eq!(queue.pop(), Some("a"));
        assert_eq!(queue.pop(), None);
        // Idempotent.
        queue.close();
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn pop_timeout_returns_queued_items_even_with_zero_timeout() {
        let queue = BoundedQueue::new(2);
        queue.push(7).unwrap();
        assert_eq!(
            queue.pop_timeout(Duration::from_millis(0)),
            PopTimeout::Item(7)
        );
        assert_eq!(
            queue.pop_timeout(Duration::from_millis(0)),
            PopTimeout::TimedOut
        );
        queue.close();
        assert_eq!(
            queue.pop_timeout(Duration::from_millis(0)),
            PopTimeout::Closed
        );
    }

    #[test]
    fn full_queue_blocks_producers_until_a_consumer_drains() {
        let queue = Arc::new(BoundedQueue::new(1));
        queue.push(0u32).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(1).is_ok())
        };
        // The producer is blocked on the full queue; popping releases it.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(queue.pop(), Some(1));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let queue = Arc::new(BoundedQueue::<u32>::new(2));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn worker_fleet_drains_a_closed_queue_completely() {
        let queue = Arc::new(BoundedQueue::new(64));
        for i in 0..64u64 {
            queue.push(i).unwrap();
        }
        queue.close();
        let sum = Arc::new(AtomicUsize::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        run_workers(4, |_worker| {
            while let Some(v) = queue.pop() {
                sum.fetch_add(v as usize, Ordering::Relaxed);
                count.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
        assert_eq!(sum.load(Ordering::Relaxed), (0..64).sum::<usize>());
    }

    #[test]
    fn single_worker_runs_inline() {
        let main_thread = std::thread::current().id();
        let hits = AtomicUsize::new(0);
        run_workers(1, |id| {
            assert_eq!(id, 0);
            // One worker means no pool: the body runs on the caller.
            assert_eq!(std::thread::current().id(), main_thread);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
