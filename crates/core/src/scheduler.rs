//! The concurrent experiment scheduler: every table/figure cell as a node
//! in one dependency DAG, streamed through the shared engine substrate.
//!
//! # What it replaces
//!
//! Before this module, each paper table was a sequential loop: train a
//! model, run its attack cells, move to the next row. The persistent rayon
//! worker pool idled between cells, and independent cells (different
//! defenses, different attacks) never overlapped. The
//! [`ExperimentScheduler`] turns an [`ExperimentGrid`] — the declarative
//! list of (model variant × attack × metric) cells — into a DAG:
//!
//! * **Artifact nodes** produce shared prerequisites exactly once per run:
//!   one training node per distinct model variant (stored in the shared
//!   [`VariantCache`]), one node for the Table I transfer set, one node
//!   for the Figure 1/2 RP2 sticker artifact.
//! * **Cell nodes** evaluate one row/series each, depending only on the
//!   artifacts they consume.
//!
//! Ready nodes stream through a [`BoundedQueue`] (capacity = node count;
//! it can never grow past the DAG, so pushes never block) — the same
//! bounded-queue primitive the `blurnet-serve` micro-batcher admits
//! classification requests through — drained by a fixed fleet of
//! [`run_workers`] workers. When more than one worker runs, each cell pins its
//! nested (intra-cell) parallelism to one thread — the thread budget is
//! spent on the cell dimension exactly once, mirroring how the batch
//! engine spends it on the batch dimension.
//!
//! # Engine sharing and borrow model
//!
//! Trained variants live in the [`VariantCache`] as `Arc<DefendedModel>`
//! handles shared read-only across workers. A cell that needs the `&mut`
//! evaluation paths (white-box gradient access, smoothing RNG) deep-clones
//! its variant, so per-cell mutable state (e.g. the smoothing RNG) starts
//! from the exact state the sequential path's per-row clone would — one
//! reason the two paths agree bitwise. The underlying
//! [`blurnet_nn::BatchEngine`] is `Send + Sync` (asserted at compile time
//! in `blurnet_nn::engine`), so the engines cells build over those shared
//! weights are safe to drive from any worker.
//!
//! # Determinism
//!
//! The report is **bit-identical at every thread count** and to the
//! sequential reference path:
//!
//! * cell decomposition and reduction order depend only on the grid, never
//!   on completion order (results are written into per-cell slots indexed
//!   by grid position);
//! * every cell executes through the same per-cell function as
//!   [`ExperimentGrid::run_sequential`], on a fresh clone of the same
//!   trained variant, and every numeric kernel underneath is bit-identical
//!   at every thread count (the PR 3/4 engine guarantees);
//! * artifact generation (training, RP2 sets) is seeded and deterministic,
//!   so generating an artifact once and sharing it equals generating it at
//!   each consumer.
//!
//! Timing is captured **outside** the report (see [`RunProfile`]) so
//! `results.json` stays byte-stable.
//!
//! # Failure isolation
//!
//! A panic or error inside one cell must not poison sibling cells: each
//! node runs under `catch_unwind`, failures are recorded as
//! [`CellStatus::Failed`] in the report, and only the failed node's
//! *dependents* are marked [`CellStatus::Skipped`]. Every other cell runs
//! to completion.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use blurnet_attacks::persist::{
    rp2_result_from_bytes, rp2_result_to_bytes, transfer_set_from_bytes, transfer_set_to_bytes,
};
use blurnet_attacks::{Rp2Result, TransferSet};
use blurnet_data::SignDataset;
use blurnet_defenses::{
    train_defended_model, DefendedModel, DefenseKind, DiskVariantCache, VariantCache,
};
use blurnet_tensor::persist::{read_file_verified, write_file_atomic};
use blurnet_tensor::Tensor;

use crate::experiments::grid::{execute_cell, CellSpec, ExperimentGrid};
use crate::experiments::{figures, table1};
use crate::journal::{JournalHeader, JournalWriter};
use crate::queue::{run_workers, BoundedQueue};
use crate::report::{CellOutput, CellReport, CellStatus, RunReport, RESULTS_SCHEMA};
use crate::{BlurNetError, Result, Scale};

/// What one DAG node does.
#[derive(Debug, Clone, PartialEq)]
enum NodeKind {
    /// Trains (or fetches from a warm cache) one model variant.
    Train(DefenseKind),
    /// Generates the shared Table I transfer set (RP2 on the baseline).
    TransferSet,
    /// Generates the shared Figure 1/2 single-image sticker artifact.
    Sticker,
    /// Evaluates the grid cell at this index.
    Cell(usize),
}

/// One node of the scheduling DAG.
#[derive(Debug)]
struct Node {
    kind: NodeKind,
    name: String,
    deps: Vec<usize>,
}

/// Timing and placement of one completed node.
#[derive(Debug, Clone)]
pub struct NodeProfile {
    /// Human-readable node name (`train:<defense>`, `cell:<experiment>/<label>`, …).
    pub name: String,
    /// Nanoseconds from run start to node start.
    pub start_ns: u64,
    /// Node execution time in nanoseconds.
    pub duration_ns: u64,
    /// Which scheduler worker executed the node.
    pub worker: usize,
}

/// Non-deterministic run telemetry, kept **separate** from the
/// [`RunReport`] so the report stays byte-stable across thread counts.
#[derive(Debug, Clone)]
pub struct RunProfile {
    /// Scheduler workers used.
    pub workers: usize,
    /// Wall-clock nanoseconds for the whole run (artifacts + cells).
    pub wall_ns: u64,
    /// Per-node timings, in node-id order (artifacts first, then cells in
    /// grid order).
    pub nodes: Vec<NodeProfile>,
    /// Number of evaluation cells in the run.
    pub cell_count: usize,
}

impl RunProfile {
    /// Evaluation cells completed per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.cell_count as f64 * 1e9 / self.wall_ns as f64
    }

    /// Fraction of the `workers × wall` budget spent inside nodes — how
    /// busy the pool was kept (1.0 = perfectly packed).
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 || self.workers == 0 {
            return 0.0;
        }
        let busy: u64 = self.nodes.iter().map(|n| n.duration_ns).sum();
        busy as f64 / (self.wall_ns as f64 * self.workers as f64)
    }
}

/// A finished scheduler run: the deterministic report plus the timing
/// profile.
#[derive(Debug)]
pub struct ScheduledRun {
    /// The deterministic, serializable result (`results.json`).
    pub report: RunReport,
    /// Timing/placement telemetry (never serialized into the report).
    pub profile: RunProfile,
}

/// Concurrent executor for [`ExperimentGrid`]s over one shared engine
/// substrate.
///
/// ```no_run
/// use blurnet::experiments::grid::ExperimentGrid;
/// use blurnet::{ExperimentScheduler, Scale};
///
/// let scheduler = ExperimentScheduler::new(Scale::Smoke, 7).threads(4);
/// let run = scheduler.run(&ExperimentGrid::micro())?;
/// assert!(run.report.all_ok());
/// println!("{:.1} cells/s", run.profile.cells_per_sec());
/// # Ok::<(), blurnet::BlurNetError>(())
/// ```
#[derive(Debug)]
pub struct ExperimentScheduler {
    scale: Scale,
    seed: u64,
    threads: Option<usize>,
    verbose: bool,
    retry_failed: usize,
    warm_variants: Option<Arc<VariantCache>>,
    cache_dir: Option<PathBuf>,
    journal: Option<PathBuf>,
}

impl ExperimentScheduler {
    /// A scheduler for the given scale profile and dataset seed (the same
    /// pair a [`crate::ModelZoo`] is built from).
    pub fn new(scale: Scale, seed: u64) -> Self {
        ExperimentScheduler {
            scale,
            seed,
            threads: None,
            verbose: false,
            retry_failed: 0,
            warm_variants: None,
            cache_dir: None,
            journal: None,
        }
    }

    /// The scale profile this scheduler runs at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The dataset/zoo seed this scheduler runs with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Caps the number of scheduler workers (defaults to the ambient rayon
    /// thread budget, i.e. `RAYON_NUM_THREADS`).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Prints per-node progress lines to stderr.
    pub fn verbose(mut self, on: bool) -> Self {
        self.verbose = on;
        self
    }

    /// Re-runs a failed node up to `n` times before recording it as
    /// [`CellStatus::Failed`] and skipping its dependents. Every node's
    /// work is deterministic, so a retry only helps against *transient*
    /// faults (a poisoned thread, an injected fault, an OS-level hiccup) —
    /// a deterministic bug fails all `n + 1` attempts identically. A
    /// successful retry produces the same bytes a first-attempt success
    /// would, so the report stays bit-identical to an undisturbed run.
    pub fn retry_failed(mut self, n: usize) -> Self {
        self.retry_failed = n;
        self
    }

    /// Seeds the run with already-trained variants: training nodes whose
    /// label is present become cache hits. The cache is also where the
    /// run's own trained variants land, so it can warm a later run.
    pub fn with_variants(mut self, variants: Arc<VariantCache>) -> Self {
        self.warm_variants = Some(variants);
        self
    }

    /// Persists expensive artifacts under `dir` and reuses them on later
    /// runs: trained variants go through a [`DiskVariantCache`] (keyed by
    /// architecture + defense + trainer config + dataset seed, so a seed
    /// or hyper-parameter change is a clean miss), and the shared
    /// transfer-set / sticker artifacts are stored per `(scale, seed)`.
    /// Every entry rides the checksummed atomic file container; a
    /// missing, torn or bit-rotted entry falls back to regenerating from
    /// scratch — a warm cache can make a run faster, never different.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Write-ahead journals the run at `path` (see [`crate::journal`]): a
    /// header record when the run starts, one fsynced record per
    /// completed cell as cells finish, so an interrupted run leaves a
    /// durable prefix `--resume` can replay. Failing to *create* the
    /// journal fails the run (the caller asked for crash tolerance it
    /// would not get); failing one *append* retires the journal and lets
    /// the run continue.
    pub fn journal_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Runs the grid and returns the deterministic report plus profile.
    ///
    /// # Errors
    ///
    /// Returns an error for structural failures only (empty grid, dataset
    /// generation). Per-cell failures are isolated into the report as
    /// [`CellStatus::Failed`] / [`CellStatus::Skipped`].
    pub fn run(&self, grid: &ExperimentGrid) -> Result<ScheduledRun> {
        self.run_inner(grid, None, None)
    }

    /// Runs the grid appending completed cells to an already-created
    /// journal writer — the resume path uses this so the journal it
    /// re-seeded with replayed cells keeps accumulating the delta run's
    /// cells instead of being truncated by a fresh header.
    pub(crate) fn run_with_journal(
        &self,
        grid: &ExperimentGrid,
        journal: Arc<JournalWriter>,
    ) -> Result<ScheduledRun> {
        self.run_inner(grid, None, Some(journal))
    }

    /// Test hook: runs the grid with a panic injected into the cell at
    /// `panic_cell` (grid order), exercising the failure-isolation path.
    #[doc(hidden)]
    pub fn run_with_injected_panic(
        &self,
        grid: &ExperimentGrid,
        panic_cell: usize,
    ) -> Result<ScheduledRun> {
        self.run_inner(grid, Some(panic_cell), None)
    }

    /// The DAG the scheduler would execute, as `(name, dep names)` pairs
    /// in node-id order — used by tests to pin artifact deduplication
    /// without paying for a run.
    #[doc(hidden)]
    pub fn plan(&self, grid: &ExperimentGrid) -> Vec<(String, Vec<String>)> {
        let nodes = build_dag(grid, self.scale);
        nodes
            .iter()
            .map(|n| {
                (
                    n.name.clone(),
                    n.deps.iter().map(|&d| nodes[d].name.clone()).collect(),
                )
            })
            .collect()
    }

    fn run_inner(
        &self,
        grid: &ExperimentGrid,
        panic_cell: Option<usize>,
        journal: Option<Arc<JournalWriter>>,
    ) -> Result<ScheduledRun> {
        if grid.is_empty() {
            return Err(BlurNetError::BadConfig(
                "cannot schedule an empty experiment grid".into(),
            ));
        }
        let journal = match journal {
            Some(writer) => Some(writer),
            None => match &self.journal {
                Some(path) => Some(Arc::new(JournalWriter::create(
                    path,
                    &JournalHeader {
                        schema: RESULTS_SCHEMA.to_string(),
                        scale: self.scale.to_string(),
                        seed: self.seed,
                        cells: grid.len(),
                    },
                )?)),
                None => None,
            },
        };
        let dataset = SignDataset::generate(&self.scale.dataset_config(), self.seed)?;
        let images = crate::experiments::attack_images_for(&dataset, self.scale);
        let nodes = build_dag(grid, self.scale);
        let workers = self
            .threads
            .unwrap_or_else(rayon::current_num_threads)
            .clamp(1, nodes.len());
        let disk = match &self.cache_dir {
            Some(dir) => Some(DiskStore::open(dir, self.scale, self.seed)?),
            None => None,
        };

        let exec = Executor::new(
            nodes,
            grid,
            self.scale,
            dataset,
            images,
            self.warm_variants
                .clone()
                .unwrap_or_else(|| Arc::new(VariantCache::new())),
            disk,
            panic_cell,
            self.verbose,
            self.retry_failed,
            journal,
        );

        let started = Instant::now();
        // `run_workers` runs a single worker inline (keeping the whole
        // rayon budget available to the batch engine inside each cell) and
        // a multi-worker fleet on a dedicated pool.
        let pin_intra = workers > 1;
        run_workers(workers, |id| exec.worker_loop(id, pin_intra, &started));
        let wall_ns = started.elapsed().as_nanos() as u64;

        let (report, node_profiles) = exec.into_results(self.scale, self.seed, grid)?;
        Ok(ScheduledRun {
            report,
            profile: RunProfile {
                workers,
                wall_ns,
                nodes: node_profiles,
                cell_count: grid.len(),
            },
        })
    }
}

/// Builds the DAG for a grid: deduplicated artifact nodes first, then one
/// cell node per grid cell (in grid order — node ids are deterministic).
fn build_dag(grid: &ExperimentGrid, scale: Scale) -> Vec<Node> {
    let mut nodes: Vec<Node> = Vec::new();
    let mut train_ids: HashMap<String, usize> = HashMap::new();
    let mut train_node = |nodes: &mut Vec<Node>, defense: DefenseKind| -> usize {
        let label = defense.label();
        if let Some(&id) = train_ids.get(&label) {
            return id;
        }
        let id = nodes.len();
        nodes.push(Node {
            name: format!("train:{label}"),
            kind: NodeKind::Train(defense),
            deps: vec![],
        });
        train_ids.insert(label, id);
        id
    };

    // Shared attack artifacts depend on the trained baseline.
    let mut transfer_id: Option<usize> = None;
    let mut sticker_id: Option<usize> = None;
    for spec in grid.cells() {
        if spec.needs_transfer_set() && transfer_id.is_none() {
            let baseline = train_node(&mut nodes, DefenseKind::Baseline);
            let id = nodes.len();
            nodes.push(Node {
                name: "artifact:transfer-set".to_string(),
                kind: NodeKind::TransferSet,
                deps: vec![baseline],
            });
            transfer_id = Some(id);
        }
        if spec.needs_sticker_artifact() && sticker_id.is_none() {
            let baseline = train_node(&mut nodes, DefenseKind::Baseline);
            let id = nodes.len();
            nodes.push(Node {
                name: "artifact:sticker".to_string(),
                kind: NodeKind::Sticker,
                deps: vec![baseline],
            });
            sticker_id = Some(id);
        }
    }

    for (i, spec) in grid.cells().iter().enumerate() {
        let mut deps = vec![train_node(&mut nodes, spec.required_defense(scale))];
        if spec.needs_transfer_set() {
            deps.push(transfer_id.expect("transfer node created above"));
        }
        if spec.needs_sticker_artifact() {
            deps.push(sticker_id.expect("sticker node created above"));
        }
        nodes.push(Node {
            name: format!("cell:{}/{}", spec.experiment, spec.label),
            kind: NodeKind::Cell(i),
            deps,
        });
    }
    nodes
}

/// The on-disk side of a cached run: the model cache plus the per-
/// `(scale, seed)` artifact files, all under one directory.
struct DiskStore {
    models: DiskVariantCache,
    /// The dataset/zoo seed of this run — part of every model's cache
    /// identity, since it selects the generated training set.
    seed: u64,
    transfer_path: PathBuf,
    sticker_path: PathBuf,
}

impl DiskStore {
    fn open(dir: &Path, scale: Scale, seed: u64) -> Result<Self> {
        let models = DiskVariantCache::open(dir).map_err(BlurNetError::Defense)?;
        Ok(DiskStore {
            transfer_path: dir.join(format!("transfer-{scale}-{seed}.bnxs")),
            sticker_path: dir.join(format!("sticker-{scale}-{seed}.bnrp")),
            seed,
            models,
        })
    }
}

/// Mutable scheduling state guarded by one mutex (map operations only —
/// never node execution).
struct SchedState {
    /// Remaining unfinished dependencies per node.
    pending: Vec<usize>,
    /// Failure (or skip) reason per node, if any.
    failed: Vec<Option<String>>,
    /// Completed node count (success, failure or skip).
    completed: usize,
}

/// One cell's pending result: its status plus the output when it ran.
type CellSlot = Mutex<Option<(CellStatus, Option<CellOutput>)>>;

/// Shared execution context for one scheduler run.
struct Executor {
    nodes: Vec<Node>,
    dependents: Vec<Vec<usize>>,
    state: Mutex<SchedState>,
    /// The shared bounded ready queue (capacity = node count, so pushes
    /// never block; closed once every node has completed).
    ready: BoundedQueue<usize>,
    scale: Scale,
    dataset: SignDataset,
    images: Vec<Tensor>,
    variants: Arc<VariantCache>,
    disk: Option<DiskStore>,
    transfer: Mutex<Option<Arc<TransferSet>>>,
    sticker: Mutex<Option<Arc<Rp2Result>>>,
    cell_slots: Vec<CellSlot>,
    profiles: Mutex<Vec<Option<NodeProfile>>>,
    specs: Vec<CellSpec>,
    panic_cell: Option<usize>,
    verbose: bool,
    /// The run's write-ahead journal, when enabled: completed cells are
    /// appended (and fsynced) as they finish, in completion order.
    journal: Option<Arc<JournalWriter>>,
    /// Extra attempts granted to a failed node (`--retry-failed N`).
    retry_limit: usize,
    /// Failed attempts consumed per node, guarded by `state`'s lock
    /// discipline (only the worker holding the node mutates its slot).
    attempts: Mutex<Vec<usize>>,
}

impl Executor {
    #[allow(clippy::too_many_arguments)]
    fn new(
        nodes: Vec<Node>,
        grid: &ExperimentGrid,
        scale: Scale,
        dataset: SignDataset,
        images: Vec<Tensor>,
        variants: Arc<VariantCache>,
        disk: Option<DiskStore>,
        panic_cell: Option<usize>,
        verbose: bool,
        retry_limit: usize,
        journal: Option<Arc<JournalWriter>>,
    ) -> Self {
        let mut dependents = vec![Vec::new(); nodes.len()];
        let mut pending = vec![0usize; nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            pending[id] = node.deps.len();
            for &dep in &node.deps {
                dependents[dep].push(id);
            }
        }
        // Seed the bounded queue with every dependency-free node, in node
        // order. Capacity = node count, so no push can ever block, and the
        // freshly built queue cannot be closed — a refusal here can only
        // be a fault-injected spurious one, so ride it out.
        let ready = BoundedQueue::new(nodes.len());
        for (id, &p) in pending.iter().enumerate() {
            if p == 0 {
                let mut item = id;
                while let Err(back) = ready.push(item) {
                    item = back;
                }
            }
        }
        let cell_slots = (0..grid.len()).map(|_| Mutex::new(None)).collect();
        let profiles = Mutex::new(vec![None; nodes.len()]);
        let attempts = Mutex::new(vec![0usize; nodes.len()]);
        Executor {
            attempts,
            retry_limit,
            journal,
            dependents,
            state: Mutex::new(SchedState {
                pending,
                failed: vec![None; nodes.len()],
                completed: 0,
            }),
            ready,
            scale,
            dataset,
            images,
            variants,
            disk,
            transfer: Mutex::new(None),
            sticker: Mutex::new(None),
            cell_slots,
            profiles,
            specs: grid.cells().to_vec(),
            panic_cell,
            verbose,
            nodes,
        }
    }

    /// One scheduler worker: pull ready nodes from the bounded queue until
    /// it closes (which [`Executor::complete`] does once the whole DAG has
    /// completed). With `pin_intra` set, each node's nested rayon regions
    /// are pinned to one thread (the thread budget is already spent on the
    /// cell dimension).
    fn worker_loop(&self, worker: usize, pin_intra: bool, run_start: &Instant) {
        let inner = if pin_intra {
            rayon::ThreadPoolBuilder::new().num_threads(1).build().ok()
        } else {
            None
        };
        loop {
            let Some(id) = self.ready.pop() else {
                // A `None` from an open queue is spurious (a fault-injected
                // lost wakeup); only a genuinely closed queue ends the
                // worker — otherwise a lone worker would strand the DAG.
                if self.ready.is_closed() {
                    break;
                }
                continue;
            };
            let start_ns = run_start.elapsed().as_nanos() as u64;
            let node_start = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| match &inner {
                Some(pool) => pool.install(|| self.run_node(id)),
                None => self.run_node(id),
            }));
            let duration_ns = node_start.elapsed().as_nanos() as u64;

            let error = match outcome {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e.to_string()),
                Err(payload) => Some(panic_message(payload)),
            };
            if self.verbose {
                eprintln!(
                    "[sched] worker {worker} {} {} in {:.1} ms",
                    match error {
                        None => "finished",
                        Some(_) => "FAILED",
                    },
                    self.nodes[id].name,
                    duration_ns as f64 / 1e6
                );
            }
            self.profiles.lock().expect("profile slots poisoned")[id] = Some(NodeProfile {
                name: self.nodes[id].name.clone(),
                start_ns,
                duration_ns,
                worker,
            });
            if let Some(cause) = &error {
                if self.grant_retry(id) {
                    if self.verbose {
                        eprintln!(
                            "[sched] worker {worker} retrying {} after: {cause}",
                            self.nodes[id].name
                        );
                    }
                    // Re-queue the node instead of completing it; its
                    // dependents stay pending until an attempt succeeds
                    // or the retry budget is spent. The push cannot find
                    // the queue closed (this node has not completed).
                    self.requeue(id);
                    continue;
                }
            }
            self.complete(id, error);
        }
    }

    /// Consumes one retry attempt for `id` if any are left.
    fn grant_retry(&self, id: usize) -> bool {
        let mut attempts = self.attempts.lock().expect("attempt slots poisoned");
        if attempts[id] < self.retry_limit {
            attempts[id] += 1;
            true
        } else {
            false
        }
    }

    /// Pushes `id` back onto the ready queue, riding out spurious
    /// (fault-injected) refusals. The queue only closes after every node
    /// has completed, which cannot have happened while `id` is in hand.
    fn requeue(&self, id: usize) {
        let mut item = id;
        while let Err(back) = self.ready.push(item) {
            if self.ready.is_closed() {
                break;
            }
            item = back;
        }
    }

    /// Marks `id` complete (with an optional failure), releases newly
    /// ready dependents into the queue, and transitively skips dependents
    /// of failed nodes. Bookkeeping runs under the state lock; queue pushes
    /// happen after it is released (they can never block — the queue's
    /// capacity is the node count — but the queue owns its own lock and we
    /// never hold two).
    fn complete(&self, id: usize, error: Option<String>) {
        let mut newly_ready = Vec::new();
        let all_done = {
            let mut st = self.state.lock().expect("scheduler state poisoned");
            if let Some(error) = &error {
                if let NodeKind::Cell(cell) = self.nodes[id].kind {
                    *self.cell_slots[cell].lock().expect("cell slot poisoned") = Some((
                        CellStatus::Failed {
                            error: error.clone(),
                        },
                        None,
                    ));
                }
                st.failed[id] = Some(error.clone());
            }
            st.completed += 1;
            // Walk completions breadth-first: a failed prerequisite marks
            // its dependents skipped, which completes them, which may
            // cascade.
            let mut frontier = vec![id];
            while let Some(done) = frontier.pop() {
                for &dep in &self.dependents[done] {
                    st.pending[dep] -= 1;
                    if st.pending[dep] > 0 {
                        continue;
                    }
                    // Every dependency has completed: the node is runnable
                    // only if ALL of them succeeded. Checking the full dep
                    // list (not just `done`) matters when the failed
                    // dependency completed earlier than the one whose
                    // completion released the node.
                    let failed_dep = self.nodes[dep]
                        .deps
                        .iter()
                        .find(|&&d| st.failed[d].is_some())
                        .copied();
                    if let Some(bad) = failed_dep {
                        let cause = st.failed[bad].clone().expect("checked above");
                        let reason =
                            format!("prerequisite {} failed: {cause}", self.nodes[bad].name);
                        if let NodeKind::Cell(cell) = self.nodes[dep].kind {
                            *self.cell_slots[cell].lock().expect("cell slot poisoned") = Some((
                                CellStatus::Skipped {
                                    reason: reason.clone(),
                                },
                                None,
                            ));
                        }
                        st.failed[dep] = Some(reason);
                        st.completed += 1;
                        frontier.push(dep);
                    } else {
                        newly_ready.push(dep);
                    }
                }
            }
            st.completed == self.nodes.len()
        };
        for dep in newly_ready {
            // Cannot genuinely fail (the queue only closes below, after
            // every node — including `dep` — has completed), but a fault-
            // injected refusal must not strand the node.
            self.requeue(dep);
        }
        if all_done {
            // Wake every blocked worker for shutdown.
            self.ready.close();
        }
    }

    /// Executes one node's work.
    fn run_node(&self, id: usize) -> Result<()> {
        match &self.nodes[id].kind {
            NodeKind::Train(defense) => {
                // Fault site `core.sched.train`: an `Error` fault fails
                // the node before anything lands in the variant cache, so
                // a retry re-trains from scratch.
                #[cfg(feature = "fault-injection")]
                if crate::fault::fire(crate::fault::sites::SCHED_TRAIN) {
                    return Err(BlurNetError::BadConfig(format!(
                        "{}: injected failure at {}",
                        crate::fault::MARKER,
                        crate::fault::sites::SCHED_TRAIN
                    )));
                }
                if self.variants.get(&defense.label()).is_none() {
                    let model = match self.load_cached_model(defense) {
                        Some(model) => model,
                        None => {
                            let model = train_defended_model(
                                defense,
                                &self.dataset,
                                &self.scale.train_config(),
                            )?;
                            self.store_model(&model);
                            model
                        }
                    };
                    self.variants.insert(model);
                }
                Ok(())
            }
            NodeKind::TransferSet => {
                self.artifact_fault_point()?;
                let set = match self.load_cached_transfer() {
                    Some(set) => set,
                    None => {
                        let baseline = self.variant(&DefenseKind::Baseline)?;
                        let set = table1::transfer_set(self.scale, &baseline, &self.images)?;
                        if let Some(disk) = &self.disk {
                            self.store_artifact(&disk.transfer_path, &transfer_set_to_bytes(&set));
                        }
                        set
                    }
                };
                *self.transfer.lock().expect("transfer slot poisoned") = Some(Arc::new(set));
                Ok(())
            }
            NodeKind::Sticker => {
                self.artifact_fault_point()?;
                let result = match self.load_cached_sticker() {
                    Some(result) => result,
                    None => {
                        let baseline = self.variant(&DefenseKind::Baseline)?;
                        let result =
                            figures::sticker_artifact(self.scale, &baseline, &self.images)?;
                        if let Some(disk) = &self.disk {
                            self.store_artifact(&disk.sticker_path, &rp2_result_to_bytes(&result));
                        }
                        result
                    }
                };
                *self.sticker.lock().expect("sticker slot poisoned") = Some(Arc::new(result));
                Ok(())
            }
            NodeKind::Cell(cell) => {
                if self.panic_cell == Some(*cell) {
                    panic!("injected panic (scheduler isolation test)");
                }
                // Fault site `core.sched.cell`: panic kind exercises the
                // catch_unwind isolation, error kind the Failed/Skipped
                // bookkeeping; both are recoverable via `--retry-failed`.
                #[cfg(feature = "fault-injection")]
                if crate::fault::fire(crate::fault::sites::SCHED_CELL) {
                    return Err(BlurNetError::BadConfig(format!(
                        "{}: injected failure at {}",
                        crate::fault::MARKER,
                        crate::fault::sites::SCHED_CELL
                    )));
                }
                let spec = &self.specs[*cell];
                // Fresh deep clone per cell: mutable evaluation state
                // (smoothing RNG, forward caches) starts from the trained
                // snapshot, exactly like the sequential path's per-row
                // clone.
                let mut model = (*self.variant(&spec.required_defense(self.scale))?).clone();
                let transfer = self
                    .transfer
                    .lock()
                    .expect("transfer slot poisoned")
                    .clone();
                let sticker = self.sticker.lock().expect("sticker slot poisoned").clone();
                let output = execute_cell(
                    &spec.kind,
                    self.scale,
                    &self.images,
                    &mut model,
                    transfer.as_deref(),
                    sticker.as_deref(),
                )?;
                // Write-ahead: the cell's record is durable on disk
                // before the in-memory slot commits it to the report —
                // a crash from here on never loses this cell.
                if let Some(journal) = &self.journal {
                    journal.append_cell(&CellReport {
                        experiment: spec.experiment.to_string(),
                        label: spec.label.clone(),
                        status: CellStatus::Ok,
                        output: Some(output.clone()),
                    });
                }
                *self.cell_slots[*cell].lock().expect("cell slot poisoned") =
                    Some((CellStatus::Ok, Some(output)));
                Ok(())
            }
        }
    }

    /// Fault site `core.sched.artifact`, shared by the transfer-set and
    /// sticker nodes: an `Error` fault fails the node before the artifact
    /// slot is written, so a retry regenerates it deterministically.
    #[cfg(feature = "fault-injection")]
    fn artifact_fault_point(&self) -> Result<()> {
        if crate::fault::fire(crate::fault::sites::SCHED_ARTIFACT) {
            return Err(BlurNetError::BadConfig(format!(
                "{}: injected failure at {}",
                crate::fault::MARKER,
                crate::fault::sites::SCHED_ARTIFACT
            )));
        }
        Ok(())
    }

    /// No-op without the `fault-injection` feature.
    #[cfg(not(feature = "fault-injection"))]
    #[inline(always)]
    fn artifact_fault_point(&self) -> Result<()> {
        Ok(())
    }

    /// Fault site `core.cache.load`, evaluated once per disk-cache probe:
    /// an `Error` fault makes the probe report corruption, forcing the
    /// regenerate-from-scratch fall-back. Returns `true` when the probe
    /// should be treated as poisoned.
    #[cfg(feature = "fault-injection")]
    fn cache_load_poisoned(&self) -> bool {
        crate::fault::fire(crate::fault::sites::CACHE_LOAD)
    }

    /// No-op without the `fault-injection` feature.
    #[cfg(not(feature = "fault-injection"))]
    #[inline(always)]
    fn cache_load_poisoned(&self) -> bool {
        false
    }

    /// Probes the disk cache for a trained variant. Misses **and** damaged
    /// entries both come back `None` — corruption downgrades to a retrain,
    /// never a failed node — but damage is reported to stderr (a silent
    /// downgrade would hide bit-rot forever).
    fn load_cached_model(&self, defense: &DefenseKind) -> Option<DefendedModel> {
        let disk = self.disk.as_ref()?;
        if self.cache_load_poisoned() {
            eprintln!(
                "[sched] cache probe for {} poisoned (injected); retraining",
                defense.label()
            );
            return None;
        }
        match disk.models.load(
            defense,
            &self.scale.train_config(),
            self.dataset.image_size(),
            self.dataset.num_classes(),
            disk.seed,
        ) {
            Ok(found) => found,
            Err(e) => {
                eprintln!(
                    "[sched] cache entry for {} unreadable ({e}); retraining",
                    defense.label()
                );
                None
            }
        }
    }

    /// Writes a freshly trained variant to the disk cache (best-effort: a
    /// full disk must not fail the run that just paid for the training).
    fn store_model(&self, model: &DefendedModel) {
        if let Some(disk) = &self.disk {
            if let Err(e) = disk.models.store(
                model,
                &self.scale.train_config(),
                self.dataset.image_size(),
                self.dataset.num_classes(),
                disk.seed,
            ) {
                eprintln!(
                    "[sched] failed to cache trained {}: {e}",
                    model.defense().label()
                );
            }
        }
    }

    /// Probes the disk cache for the Table I transfer set (same
    /// miss/corruption semantics as [`Executor::load_cached_model`]).
    fn load_cached_transfer(&self) -> Option<TransferSet> {
        let disk = self.disk.as_ref()?;
        if !disk.transfer_path.exists() {
            return None;
        }
        if self.cache_load_poisoned() {
            eprintln!("[sched] transfer-set cache probe poisoned (injected); regenerating");
            return None;
        }
        read_file_verified(&disk.transfer_path)
            .map_err(|e| e.to_string())
            .and_then(|payload| transfer_set_from_bytes(&payload).map_err(|e| e.to_string()))
            .map_err(|e| eprintln!("[sched] cached transfer set unreadable ({e}); regenerating"))
            .ok()
    }

    /// Probes the disk cache for the Figure 1/2 sticker artifact.
    fn load_cached_sticker(&self) -> Option<Rp2Result> {
        let disk = self.disk.as_ref()?;
        if !disk.sticker_path.exists() {
            return None;
        }
        if self.cache_load_poisoned() {
            eprintln!("[sched] sticker cache probe poisoned (injected); regenerating");
            return None;
        }
        read_file_verified(&disk.sticker_path)
            .map_err(|e| e.to_string())
            .and_then(|payload| rp2_result_from_bytes(&payload).map_err(|e| e.to_string()))
            .map_err(|e| eprintln!("[sched] cached sticker unreadable ({e}); regenerating"))
            .ok()
    }

    /// Writes a freshly generated artifact to its cache file
    /// (best-effort, like [`Executor::store_model`]).
    fn store_artifact(&self, path: &Path, payload: &[u8]) {
        if let Err(e) = write_file_atomic(path, payload) {
            eprintln!("[sched] failed to cache artifact {}: {e}", path.display());
        }
    }

    /// The trained variant for a defense (must have been produced by a
    /// completed train node).
    fn variant(&self, defense: &DefenseKind) -> Result<Arc<DefendedModel>> {
        self.variants.get(&defense.label()).ok_or_else(|| {
            BlurNetError::BadConfig(format!(
                "variant {} missing from the cache (train node did not run?)",
                defense.label()
            ))
        })
    }

    /// Collapses the execution state into the deterministic report (cells
    /// in grid order) and the per-node profiles (node-id order).
    fn into_results(
        self,
        scale: Scale,
        seed: u64,
        grid: &ExperimentGrid,
    ) -> Result<(RunReport, Vec<NodeProfile>)> {
        let mut cells = Vec::with_capacity(grid.len());
        for (i, spec) in grid.cells().iter().enumerate() {
            let (status, output) = self.cell_slots[i]
                .lock()
                .expect("cell slot poisoned")
                .take()
                .unwrap_or((
                    CellStatus::Failed {
                        error: "cell never executed".into(),
                    },
                    None,
                ));
            cells.push(CellReport {
                experiment: spec.experiment.to_string(),
                label: spec.label.clone(),
                status,
                output,
            });
        }
        let profiles = self
            .profiles
            .lock()
            .expect("profile slots poisoned")
            .iter()
            .flatten()
            .cloned()
            .collect();
        Ok((
            RunReport {
                schema: RESULTS_SCHEMA.to_string(),
                scale: scale.to_string(),
                seed,
                cells,
            },
            profiles,
        ))
    }
}

/// Renders a panic payload as a readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_dedups_artifacts_in_the_full_grid() {
        let scheduler = ExperimentScheduler::new(Scale::Smoke, 7);
        let plan = scheduler.plan(&ExperimentGrid::full(Scale::Smoke));
        let train_nodes: Vec<&String> = plan
            .iter()
            .map(|(name, _)| name)
            .filter(|n| n.starts_with("train:"))
            .collect();
        // Exactly one train node per distinct variant (the Table II
        // roster), regardless of how many cells consume each.
        assert_eq!(train_nodes.len(), 15);
        let mut unique = train_nodes.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), train_nodes.len());
        // Exactly one transfer-set node and one sticker node.
        assert_eq!(
            plan.iter()
                .filter(|(n, _)| n == "artifact:transfer-set")
                .count(),
            1
        );
        assert_eq!(
            plan.iter().filter(|(n, _)| n == "artifact:sticker").count(),
            1
        );
        // Every Table I cell depends on both the baseline and the
        // transfer artifact.
        for (name, deps) in &plan {
            if name.starts_with("cell:table1/") {
                assert!(deps.contains(&"train:Baseline".to_string()), "{name}");
                assert!(
                    deps.contains(&"artifact:transfer-set".to_string()),
                    "{name}"
                );
            }
        }
    }

    #[test]
    fn empty_grids_are_rejected() {
        let scheduler = ExperimentScheduler::new(Scale::Smoke, 7);
        assert!(scheduler.run(&ExperimentGrid::custom(vec![])).is_err());
    }

    #[test]
    fn micro_grid_runs_and_matches_the_sequential_path() {
        let grid = ExperimentGrid::micro();
        let run = ExperimentScheduler::new(Scale::Smoke, 7)
            .threads(2)
            .run(&grid)
            .unwrap();
        assert!(run.report.all_ok());
        assert_eq!(run.report.cells.len(), 4);
        assert_eq!(run.profile.cell_count, 4);
        assert!(run.profile.cells_per_sec() > 0.0);
        assert!(run.profile.utilization() > 0.0 && run.profile.utilization() <= 1.0);

        let mut zoo = crate::ModelZoo::new(Scale::Smoke, 7).unwrap();
        let sequential = grid.run_sequential(&mut zoo).unwrap();
        assert_eq!(run.report, sequential, "scheduler diverged from sequential");
    }
}
