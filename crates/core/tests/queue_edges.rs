//! Edge-case coverage for [`BoundedQueue`]: shutdown races (close while
//! producers/consumers are blocked), zero-window `pop_timeout` under
//! contention, drain ordering after close, and a seeded multi-producer /
//! multi-consumer stress run. The queue is the substrate under both the
//! experiment scheduler and the serving admission path, so these are the
//! races both subsystems implicitly rely on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use blurnet::queue::{run_workers, BoundedQueue, PopTimeout, TryPush};

#[test]
fn close_wakes_every_blocked_producer_with_its_item_back() {
    let queue = Arc::new(BoundedQueue::new(1));
    queue.push(0u32).expect("first push fills the queue");
    let producers: Vec<_> = (1..=4u32)
        .map(|v| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(v))
        })
        .collect();
    // Give every producer time to block on the full queue, then close.
    std::thread::sleep(Duration::from_millis(30));
    queue.close();
    for (i, producer) in producers.into_iter().enumerate() {
        let refused = producer.join().expect("producer thread");
        assert_eq!(
            refused,
            Err(i as u32 + 1),
            "a blocked producer must get exactly its own item back"
        );
    }
    // The item admitted before the close still drains.
    assert_eq!(queue.pop(), Some(0));
    assert_eq!(queue.pop(), None);
}

#[test]
fn close_wakes_every_blocked_consumer_exactly_once() {
    let queue = Arc::new(BoundedQueue::<u32>::new(4));
    let consumers: Vec<_> = (0..4)
        .map(|_| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    queue.close();
    for consumer in consumers {
        assert_eq!(consumer.join().expect("consumer thread"), None);
    }
}

#[test]
fn zero_window_pop_timeout_drains_everything_under_contention() {
    // The serve batcher's zero-width flush window degenerates to exactly
    // this pattern: consumers polling `pop_timeout(0)` in a loop must
    // still collectively drain every item producers push, with TimedOut
    // only ever meaning "empty right now", never "item lost".
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 256;
    let queue = Arc::new(BoundedQueue::new(8));
    let drained = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let queue = Arc::clone(&queue);
            scope.spawn(move || {
                for i in 0..PER_PRODUCER {
                    queue.push(p * PER_PRODUCER + i).expect("queue stays open");
                }
            });
        }
        for _ in 0..3 {
            let queue = Arc::clone(&queue);
            let drained = Arc::clone(&drained);
            scope.spawn(move || loop {
                match queue.pop_timeout(Duration::ZERO) {
                    PopTimeout::Item(_) => {
                        drained.fetch_add(1, Ordering::Relaxed);
                    }
                    PopTimeout::TimedOut => {
                        if drained.load(Ordering::Relaxed) == PRODUCERS * PER_PRODUCER {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    PopTimeout::Closed => break,
                }
            });
        }
    });
    assert_eq!(drained.load(Ordering::Relaxed), PRODUCERS * PER_PRODUCER);
}

#[test]
fn drain_after_close_preserves_fifo_order() {
    let queue = BoundedQueue::new(16);
    for i in 0..10 {
        queue.push(i).expect("open queue accepts");
    }
    queue.close();
    // New items are refused in every admission mode...
    assert_eq!(queue.push(99), Err(99));
    assert_eq!(queue.try_push(98), TryPush::Closed(98));
    // ...but the backlog drains completely, oldest first.
    for i in 0..10 {
        assert_eq!(queue.pop(), Some(i));
    }
    assert_eq!(queue.pop(), None);
    assert_eq!(queue.pop_timeout(Duration::ZERO), PopTimeout::Closed);
}

#[test]
fn try_push_reports_full_without_blocking_and_closed_after_close() {
    let queue = BoundedQueue::new(2);
    assert_eq!(queue.try_push(1), TryPush::Pushed);
    assert_eq!(queue.try_push(2), TryPush::Pushed);
    // At capacity: the item comes back immediately — this is the signal a
    // shedding admission path maps to `queue_full`.
    assert_eq!(queue.try_push(3), TryPush::Full(3));
    assert_eq!(queue.pop(), Some(1));
    assert_eq!(queue.try_push(3), TryPush::Pushed);
    queue.close();
    assert_eq!(queue.try_push(4), TryPush::Closed(4));
}

#[test]
fn seeded_multi_producer_stress_delivers_every_item_in_per_producer_order() {
    // 4 producers × 4 consumers through a deliberately tiny queue, so
    // both the not_full and not_empty waits are exercised constantly.
    // MPMC FIFO guarantees: nothing lost, nothing duplicated, and each
    // producer's items are observed in their production order.
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: u64 = 500;
    let queue = Arc::new(BoundedQueue::new(3));
    let received: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let queue = Arc::clone(&queue);
                scope.spawn(move || {
                    // Mix producer pacing deterministically (seeded by the
                    // producer id) so interleavings vary across producers
                    // without depending on wall-clock randomness.
                    let mut state = 0x9e37_79b9u64 ^ p;
                    for i in 0..PER_PRODUCER {
                        queue.push((p << 32) | i).expect("queue stays open");
                        state ^= state << 13;
                        state ^= state >> 7;
                        if state.is_multiple_of(7) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        scope.spawn(|| {
            run_workers(4, |_worker| {
                while let Some(v) = queue.pop() {
                    received.lock().expect("result lock").push(v);
                }
            });
        });
        for handle in handles {
            handle.join().expect("producer thread");
        }
        queue.close();
    });

    let received = received.into_inner().expect("result lock");
    assert_eq!(received.len(), (PRODUCERS * PER_PRODUCER) as usize);
    let mut last_seen = vec![None::<u64>; PRODUCERS as usize];
    for v in &received {
        let (p, i) = ((v >> 32) as usize, v & 0xffff_ffff);
        if let Some(prev) = last_seen[p] {
            assert!(i > prev, "producer {p} items observed out of order");
        }
        last_seen[p] = Some(i);
    }
    for (p, last) in last_seen.iter().enumerate() {
        assert_eq!(*last, Some(PER_PRODUCER - 1), "producer {p} items missing");
    }
}
