//! Regenerates Table IV — PGD (ε = 8/255) breaks every defense.

use blurnet::experiments::table4;

fn main() {
    let (_, mut zoo) = blurnet_bench::zoo_from_env();
    let result = table4::run(&mut zoo).expect("table IV experiment failed");
    blurnet_bench::print_result(&result.table(), Some(&table4::Table4::paper_reference()));
}
