//! Regenerates Table V — adversarial training vs adaptive adversaries.

use blurnet::experiments::table5;

fn main() {
    let (_, mut zoo) = blurnet_bench::zoo_from_env();
    let result = table5::run(&mut zoo).expect("table V experiment failed");
    blurnet_bench::print_result(&result.table(), Some(&table5::Table5::paper_reference()));
}
