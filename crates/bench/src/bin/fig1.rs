//! Regenerates Figure 1 — input-space spectra of clean vs perturbed stop
//! signs.

use blurnet::experiments::figures;

fn main() {
    let (_, mut zoo) = blurnet_bench::zoo_from_env();
    let fig = figures::figure1(&mut zoo).expect("figure 1 experiment failed");
    blurnet_bench::print_result(&fig.table(), None);
    if !blurnet_bench::json_requested() {
        println!(
            "Interpretation: the paper's Figure 1 shows the two input spectra are visually \
             near-identical; correspondingly the measured high-frequency fractions above differ \
             only slightly, which is why input-space filtering is a weak defense."
        );
    }
}
