//! Regenerates Figures 5–6 — per-target ASR vs L2 dissimilarity scatters.

use blurnet::experiments::figures;

fn main() {
    let (_, mut zoo) = blurnet_bench::zoo_from_env();
    let fig = figures::figure5_and_6(&mut zoo).expect("figures 5-6 experiment failed");
    blurnet_bench::print_result(&fig.table(), None);
}
