//! Regenerates Table III — adaptive attack evaluation.

use blurnet::experiments::table3;

fn main() {
    let (_, mut zoo) = blurnet_bench::zoo_from_env();
    let result = table3::run(&mut zoo).expect("table III experiment failed");
    blurnet_bench::print_result(&result.table(), Some(&table3::Table3::paper_reference()));
}
