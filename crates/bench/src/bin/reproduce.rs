//! Reproduces the paper's tables and figures through the concurrent
//! experiment scheduler and writes a machine-readable `results.json`.
//!
//! ```bash
//! # Full table1–5 + figure grid, worker count from RAYON_NUM_THREADS:
//! cargo run --release -p blurnet-bench --bin reproduce
//! # Four scheduler workers, tables only, custom output path:
//! cargo run --release -p blurnet-bench --bin reproduce -- \
//!     --threads 4 --grid tables --out results.json
//! ```
//!
//! `BLURNET_SCALE` (smoke/quick/paper) selects the effort, exactly as for
//! the per-table binaries. Pass `--json` to print the report JSON to
//! stdout instead of rendered tables. The emitted `results.json` is
//! bit-identical at every `--threads` value and to the sequential
//! reference path (`--sequential`).
//!
//! `--cache-dir DIR` persists trained variants and shared attack
//! artifacts under `DIR` and reuses them on later runs. `--resume DIR`
//! replays every completed cell from `DIR/results.json` — or, when the
//! prior run died before writing its report, from the crash-safe
//! `run.journal` beside it — and schedules only the delta; a resume of a
//! fully completed run executes zero nodes and re-emits the
//! byte-identical report.
//!
//! Scheduler runs write-ahead journal every completed cell to
//! `run.journal` next to `--out` (fsynced per cell), so a run killed at
//! *any* point — SIGKILL, OOM, power loss — resumes from its last
//! completed cell. `--journal PATH` moves the journal, `--no-journal`
//! disables it.

use blurnet::experiments::grid::ExperimentGrid;
use blurnet::journal::JOURNAL_FILE;
use blurnet::{
    recover_prior, resume_run, resume_run_with_journal, ExperimentScheduler, ModelZoo, RunReport,
    Scale,
};

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [--threads N] [--grid full|tables|micro] [--out PATH] \
         [--retry-failed N] [--cache-dir DIR] [--resume DIR] [--journal PATH] \
         [--no-journal] [--json] [--sequential] [--verbose]"
    );
    std::process::exit(2)
}

struct Args {
    threads: Option<usize>,
    retry_failed: usize,
    grid: String,
    out: Option<std::path::PathBuf>,
    cache_dir: Option<std::path::PathBuf>,
    resume: Option<std::path::PathBuf>,
    journal: Option<std::path::PathBuf>,
    no_journal: bool,
    json: bool,
    sequential: bool,
    verbose: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: None,
        retry_failed: 0,
        grid: "full".to_string(),
        out: Some(std::path::PathBuf::from("results.json")),
        cache_dir: None,
        resume: None,
        journal: None,
        no_journal: false,
        json: false,
        sequential: false,
        verbose: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => {
                let value = iter.next().unwrap_or_else(|| usage());
                args.threads = Some(value.parse().unwrap_or_else(|_| usage()));
            }
            "--retry-failed" => {
                let value = iter.next().unwrap_or_else(|| usage());
                args.retry_failed = value.parse().unwrap_or_else(|_| usage());
            }
            "--grid" => args.grid = iter.next().unwrap_or_else(|| usage()),
            "--out" => args.out = Some(iter.next().unwrap_or_else(|| usage()).into()),
            "--no-out" => args.out = None,
            "--cache-dir" => args.cache_dir = Some(iter.next().unwrap_or_else(|| usage()).into()),
            "--resume" => args.resume = Some(iter.next().unwrap_or_else(|| usage()).into()),
            "--journal" => args.journal = Some(iter.next().unwrap_or_else(|| usage()).into()),
            "--no-journal" => args.no_journal = true,
            "--json" => args.json = true,
            "--sequential" => args.sequential = true,
            "--verbose" => args.verbose = true,
            _ => usage(),
        }
    }
    if args.sequential
        && (args.resume.is_some() || args.cache_dir.is_some() || args.journal.is_some())
    {
        eprintln!(
            "error: --resume/--cache-dir/--journal require the scheduler path (drop --sequential)"
        );
        std::process::exit(2);
    }
    args
}

/// Where this run journals completed cells: an explicit `--journal PATH`
/// wins, otherwise `run.journal` beside `--out`; `--no-journal` (or
/// `--no-out` without an explicit journal path, or `--sequential`)
/// disables journaling.
fn journal_path(args: &Args) -> Option<std::path::PathBuf> {
    if args.sequential || args.no_journal {
        return None;
    }
    if let Some(path) = &args.journal {
        return Some(path.clone());
    }
    args.out.as_ref().map(|out| {
        out.parent()
            .unwrap_or_else(|| std::path::Path::new(""))
            .join(JOURNAL_FILE)
    })
}

fn main() {
    // Deterministic fault injection, armed from `BLURNET_FAULT`
    // (`site:kind[@hit]`, comma-separated) so the process-level chaos
    // harness can place aborts inside a real subprocess run.
    #[cfg(feature = "fault-injection")]
    blurnet::fault::arm_from_env();

    let args = parse_args();
    let scale = Scale::from_env();
    let grid = match args.grid.as_str() {
        "full" => ExperimentGrid::full(scale),
        "tables" => ExperimentGrid::tables(scale),
        "micro" => ExperimentGrid::micro(),
        _ => usage(),
    };
    eprintln!(
        "# BlurNet reproduction — scale: {scale}, grid: {} ({} cells), engine: {}",
        args.grid,
        grid.len(),
        if args.sequential {
            "sequential BatchRunner".to_string()
        } else {
            format!(
                "scheduler ({} workers)",
                args.threads.unwrap_or_else(rayon::current_num_threads)
            )
        }
    );

    let report: RunReport = if args.sequential {
        let mut zoo = ModelZoo::new(scale, blurnet_bench::EXPERIMENT_SEED)
            .unwrap_or_else(|e| panic!("failed to build the model zoo: {e}"));
        grid.run_sequential(&mut zoo)
            .unwrap_or_else(|e| panic!("sequential run failed: {e}"))
    } else {
        let mut scheduler = ExperimentScheduler::new(scale, blurnet_bench::EXPERIMENT_SEED)
            .verbose(args.verbose)
            .retry_failed(args.retry_failed);
        if let Some(threads) = args.threads {
            scheduler = scheduler.threads(threads);
        }
        if let Some(dir) = &args.cache_dir {
            scheduler = scheduler.cache_dir(dir.clone());
        }
        if let Some(resume_dir) = &args.resume {
            let (prior, source) = recover_prior(resume_dir).unwrap_or_else(|e| {
                eprintln!("reproduce: cannot recover the prior run: {e}");
                std::process::exit(1);
            });
            eprintln!("# resume source: {source}");
            let resumed = match journal_path(&args) {
                Some(journal) => resume_run_with_journal(&scheduler, &grid, &prior, &journal),
                None => resume_run(&scheduler, &grid, &prior),
            }
            .unwrap_or_else(|e| {
                eprintln!("reproduce: resume failed: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "# resume: replayed {} cells, scheduling {}",
                resumed.replayed, resumed.executed
            );
            if let Some(profile) = &resumed.profile {
                eprintln!(
                    "# {} cells in {:.1}s — {:.2} cells/s, pool utilization {:.0}% ({} workers)",
                    profile.cell_count,
                    profile.wall_ns as f64 / 1e9,
                    profile.cells_per_sec(),
                    profile.utilization() * 100.0,
                    profile.workers
                );
            }
            resumed.report
        } else {
            if let Some(journal) = journal_path(&args) {
                scheduler = scheduler.journal_path(journal);
            }
            let run = scheduler
                .run(&grid)
                .unwrap_or_else(|e| panic!("scheduler run failed: {e}"));
            eprintln!(
                "# {} cells in {:.1}s — {:.2} cells/s, pool utilization {:.0}% ({} workers)",
                run.profile.cell_count,
                run.profile.wall_ns as f64 / 1e9,
                run.profile.cells_per_sec(),
                run.profile.utilization() * 100.0,
                run.profile.workers
            );
            run.report
        }
    };

    if args.json {
        println!("{}", report.to_json());
    } else {
        for table in report.tables() {
            println!("{table}");
        }
    }
    if let Some(path) = &args.out {
        report
            .write_json(path)
            .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
        eprintln!("# wrote {}", path.display());
    }
    if !report.all_ok() {
        eprintln!("# WARNING: some cells failed or were skipped (see the report)");
        std::process::exit(1);
    }
}
