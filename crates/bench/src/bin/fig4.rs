//! Regenerates Figure 4 — second-layer feature maps carry more
//! high-frequency content than first-layer maps.

use blurnet::experiments::figures;

fn main() {
    let (_, mut zoo) = blurnet_bench::zoo_from_env();
    let fig = figures::figure4(&mut zoo).expect("figure 4 experiment failed");
    blurnet_bench::print_result(&fig.table(), None);
}
