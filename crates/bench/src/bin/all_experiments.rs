//! Runs every table and figure reproduction in one process, sharing the
//! trained model cache across experiments. This is the binary used to fill
//! in `EXPERIMENTS.md`.

use blurnet::experiments::{figures, table1, table2, table3, table4, table5};

fn main() {
    let (scale, mut zoo) = blurnet_bench::zoo_from_env();
    println!("## BlurNet reproduction — all experiments (scale: {scale})\n");

    let t1 = table1::run(&mut zoo).expect("table I failed");
    blurnet_bench::print_result(&t1.table(), Some(&table1::Table1::paper_reference()));

    let t2 = table2::run(&mut zoo).expect("table II failed");
    blurnet_bench::print_result(&t2.table(), Some(&table2::Table2::paper_reference()));

    let t3 = table3::run(&mut zoo).expect("table III failed");
    blurnet_bench::print_result(&t3.table(), Some(&table3::Table3::paper_reference()));

    let t4 = table4::run(&mut zoo).expect("table IV failed");
    blurnet_bench::print_result(&t4.table(), Some(&table4::Table4::paper_reference()));

    let t5 = table5::run(&mut zoo).expect("table V failed");
    blurnet_bench::print_result(&t5.table(), Some(&table5::Table5::paper_reference()));

    let f1 = figures::figure1(&mut zoo).expect("figure 1 failed");
    blurnet_bench::print_result(&f1.table(), None);

    let f2 = figures::figure2(&mut zoo, 4).expect("figure 2 failed");
    blurnet_bench::print_result(&f2.table(), None);

    let f3 = figures::figure3(&mut zoo, &[4, 8, 16, 32]).expect("figure 3 failed");
    blurnet_bench::print_result(&f3.table(), None);

    let f4 = figures::figure4(&mut zoo).expect("figure 4 failed");
    blurnet_bench::print_result(&f4.table(), None);

    let f56 = figures::figure5_and_6(&mut zoo).expect("figures 5-6 failed");
    blurnet_bench::print_result(&f56.table(), None);

    eprintln!("# trained models cached: {}", zoo.cached_models());
}
