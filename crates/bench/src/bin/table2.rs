//! Regenerates Table II — white-box evaluation of every defense.

use blurnet::experiments::table2;

fn main() {
    let (_, mut zoo) = blurnet_bench::zoo_from_env();
    let result = table2::run(&mut zoo).expect("table II experiment failed");
    blurnet_bench::print_result(&result.table(), Some(&table2::Table2::paper_reference()));
}
