//! Regenerates Figure 2 — first-layer feature-map spectra (clean,
//! adversarial, difference, blurred difference).

use blurnet::experiments::figures;

fn main() {
    let (_, mut zoo) = blurnet_bench::zoo_from_env();
    let fig = figures::figure2(&mut zoo, 4).expect("figure 2 experiment failed");
    blurnet_bench::print_result(&fig.table(), None);
    if !blurnet_bench::json_requested() {
        println!(
            "Mean difference-map high-frequency fraction: {:.3} -> {:.3} after a 5x5 blur \
             (the paper's fourth column: blurring removes the attack's high-frequency artefacts).",
            fig.mean_difference_fraction(),
            fig.mean_blurred_difference_fraction()
        );
    }
}
