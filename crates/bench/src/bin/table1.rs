//! Regenerates Table I — black-box transfer: input vs feature-map
//! filtering.

use blurnet::experiments::table1;

fn main() {
    let (_, mut zoo) = blurnet_bench::zoo_from_env();
    let result = table1::run(&mut zoo).expect("table I experiment failed");
    blurnet_bench::print_result(&result.table(), Some(&table1::Table1::paper_reference()));
}
