//! Regenerates Figure 3 — adaptive attack success rate vs DCT mask
//! dimension for the 7×7 depthwise defense.

use blurnet::experiments::figures;

fn main() {
    let (_, mut zoo) = blurnet_bench::zoo_from_env();
    let fig = figures::figure3(&mut zoo, &[4, 8, 16, 32]).expect("figure 3 experiment failed");
    blurnet_bench::print_result(&fig.table(), None);
}
