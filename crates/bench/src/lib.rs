//! Shared helpers for the table/figure reproduction binaries.
//!
//! Every binary follows the same shape: pick the [`Scale`] from
//! `BLURNET_SCALE` (smoke/quick/paper), build a [`ModelZoo`], run one
//! experiment, and print the measured table next to the paper's reference
//! values. Pass `--json` to emit machine-readable output instead.

use blurnet::{ModelZoo, Scale, Table};

/// Seed shared by all experiment binaries so tables are mutually
/// consistent within one run.
pub const EXPERIMENT_SEED: u64 = 7;

/// Builds the model zoo for the scale selected via `BLURNET_SCALE`.
///
/// # Panics
///
/// Panics (with a readable message) if dataset generation fails — these
/// binaries are leaf programs where unwinding to `main` is the only
/// sensible handling.
pub fn zoo_from_env() -> (Scale, ModelZoo) {
    let scale = Scale::from_env();
    eprintln!("# BlurNet reproduction — scale: {scale} (set BLURNET_SCALE=smoke|quick|paper)");
    let zoo = ModelZoo::new(scale, EXPERIMENT_SEED)
        .unwrap_or_else(|e| panic!("failed to build the model zoo: {e}"));
    (scale, zoo)
}

/// Whether `--json` was passed on the command line.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Prints a measured table and, unless `--json` was requested, the paper's
/// reference values beneath it.
pub fn print_result(measured: &Table, paper: Option<&Table>) {
    if json_requested() {
        println!("{}", measured.to_json());
        return;
    }
    println!("{measured}");
    if let Some(paper) = paper {
        println!("{paper}");
    }
}
