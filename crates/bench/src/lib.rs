//! Shared helpers for the table/figure reproduction binaries.
//!
//! Every binary follows the same shape: pick the [`Scale`] from
//! `BLURNET_SCALE` (smoke/quick/paper), build a [`ModelZoo`], run one
//! experiment, and print the measured table next to the paper's reference
//! values. Pass `--json` to emit machine-readable output instead.

use blurnet::{ModelZoo, Scale, Table};
use serde::Value;

/// Seed shared by all experiment binaries so tables are mutually
/// consistent within one run.
pub const EXPERIMENT_SEED: u64 = 7;

/// Thread counts every multi-core-aware `BENCH_*.json` records timings
/// at, so numbers are comparable across benches and across hosts.
pub const BENCH_THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Logical CPUs of the machine running the bench. Recorded in every
/// `BENCH_*.json` so a reader can tell whether multi-thread numbers had
/// real cores behind them.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Warns (on stderr) when the bench is running on a single-core host,
/// where every thread count beyond 1 measures oversubscription rather
/// than parallel speedup. Returns whether the warning fired.
pub fn warn_if_single_core(bench: &str) -> bool {
    let single = host_cpus() == 1;
    if single {
        eprintln!(
            "# WARNING [{bench}]: host has 1 CPU — multi-thread timings measure \
             oversubscription, not speedup; re-run on a multi-core host for scaling numbers"
        );
    }
    single
}

/// The host-description entries (`host_cpus`, `single_core_warning`)
/// every `BENCH_*.json` starts with, emitting the stderr warning as a
/// side effect.
pub fn host_entries(bench: &str) -> Vec<(String, Value)> {
    vec![
        ("host_cpus".into(), Value::Int(host_cpus() as i64)),
        (
            "single_core_warning".into(),
            Value::Bool(warn_if_single_core(bench)),
        ),
    ]
}

/// Runs `f` with the persistent rayon pool's effective parallelism pinned
/// to `threads` — the helper the benches use to record per-thread-count
/// timings.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("thread pool");
    pool.install(f)
}

/// Builds the model zoo for the scale selected via `BLURNET_SCALE`.
///
/// # Panics
///
/// Panics (with a readable message) if dataset generation fails — these
/// binaries are leaf programs where unwinding to `main` is the only
/// sensible handling.
pub fn zoo_from_env() -> (Scale, ModelZoo) {
    let scale = Scale::from_env();
    eprintln!("# BlurNet reproduction — scale: {scale} (set BLURNET_SCALE=smoke|quick|paper)");
    let zoo = ModelZoo::new(scale, EXPERIMENT_SEED)
        .unwrap_or_else(|e| panic!("failed to build the model zoo: {e}"));
    (scale, zoo)
}

/// Whether `--json` was passed on the command line.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Prints a measured table and, unless `--json` was requested, the paper's
/// reference values beneath it.
pub fn print_result(measured: &Table, paper: Option<&Table>) {
    if json_requested() {
        println!("{}", measured.to_json());
        return;
    }
    println!("{measured}");
    if let Some(paper) = paper {
        println!("{paper}");
    }
}
