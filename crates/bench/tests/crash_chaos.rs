//! Process-level chaos: kill `reproduce` anywhere, resume, demand the
//! bytes of an uninterrupted run.
//!
//! The in-process chaos suite (`tests/chaos.rs` at the workspace root)
//! proves the scheduler survives faults that stay *inside* the process.
//! This suite proves the journal makes the process itself expendable: it
//! re-execs the real `reproduce` binary as a subprocess, arms the
//! deterministic fault layer (via `BLURNET_FAULT`) to
//! `std::process::abort()` at a registered fault site — including
//! kill-after-N-cells points and a genuine torn write flushed mid-append
//! — then runs `reproduce --resume` over the wreckage and asserts the
//! recovered `results.json` is **byte-identical** to a cold run's.
//!
//! Everything runs on the smoke-scale micro grid (4 cells, 2 variants)
//! over one shared `--cache-dir`, so only the reference run pays for
//! training; each killed/resumed run is cache-warm. Work lands under
//! `target/crash-chaos/` so CI can upload the journals on failure.

#![cfg(feature = "fault-injection")]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::OnceLock;

/// The workspace `target/` directory, derived from the binary path cargo
/// hands us (`target/<profile>/reproduce`).
fn work_root() -> PathBuf {
    let exe = PathBuf::from(env!("CARGO_BIN_EXE_reproduce"));
    exe.parent()
        .and_then(Path::parent)
        .expect("binary lives under target/<profile>/")
        .join("crash-chaos")
}

/// Runs `reproduce` on the smoke micro grid with results under `dir`,
/// the shared warm cache, and optional fault arming / resume source.
fn run_reproduce(dir: &Path, fault: Option<&str>, resume: Option<&Path>) -> Output {
    std::fs::create_dir_all(dir).expect("scenario dir");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_reproduce"));
    cmd.arg("--grid")
        .arg("micro")
        .arg("--out")
        .arg(dir.join("results.json"))
        .arg("--cache-dir")
        .arg(work_root().join("cache"))
        .env("BLURNET_SCALE", "smoke")
        .env_remove("BLURNET_FAULT");
    if let Some(spec) = fault {
        cmd.env("BLURNET_FAULT", spec);
    }
    if let Some(prior) = resume {
        cmd.arg("--resume").arg(prior);
    }
    cmd.output().expect("spawn reproduce")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// The uninterrupted cold run every scenario's recovery is compared
/// against, produced once per process (it also warms the model cache).
fn reference_bytes() -> &'static [u8] {
    static REF: OnceLock<Vec<u8>> = OnceLock::new();
    REF.get_or_init(|| {
        let dir = work_root().join("reference");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run_reproduce(&dir, None, None);
        assert!(
            out.status.success(),
            "reference run failed:\n{}",
            stderr_of(&out)
        );
        std::fs::read(dir.join("results.json")).expect("reference results.json")
    })
}

/// Kills a run at `fault`, asserts it died without a report, resumes it,
/// and asserts byte-identity with the cold reference.
fn kill_and_resume(name: &str, fault: &str) {
    let reference = reference_bytes();
    let dir = work_root().join(name);
    let _ = std::fs::remove_dir_all(&dir);

    let killed = run_reproduce(&dir, Some(fault), None);
    assert!(
        !killed.status.success(),
        "{name}: armed {fault} but the run survived:\n{}",
        stderr_of(&killed)
    );
    assert!(
        !dir.join("results.json").exists(),
        "{name}: a killed run must not have written its report"
    );

    let resumed = run_reproduce(&dir, None, Some(&dir));
    assert!(
        resumed.status.success(),
        "{name}: resume after {fault} failed:\n{}",
        stderr_of(&resumed)
    );
    let recovered = std::fs::read(dir.join("results.json")).expect("recovered results.json");
    assert_eq!(
        recovered, reference,
        "{name}: resumed report differs from the cold run"
    );
}

#[test]
fn every_abort_site_recovers_byte_identically() {
    // One abort per registered fault site reachable in a micro-grid run:
    // before training, during the cache probe, inside a cell, and inside
    // the journal append itself.
    for (name, fault) in [
        ("abort-train", "core.sched.train:abort@1"),
        ("abort-cache-load", "core.cache.load:abort@1"),
        ("abort-cell-first", "core.sched.cell:abort@1"),
        ("abort-cell-third", "core.sched.cell:abort@3"),
    ] {
        kill_and_resume(name, fault);
    }
}

#[test]
fn every_kill_after_n_cells_point_recovers_byte_identically() {
    // `core.journal.append` abort at hit N dies after N-1 cells made it
    // into the journal — sweeping N covers every between-cells kill
    // point of the 4-cell grid.
    for hit in 1..=4u32 {
        kill_and_resume(
            &format!("kill-after-{}-cells", hit - 1),
            &format!("core.journal.append:abort@{hit}"),
        );
    }
}

#[test]
fn a_torn_append_flushed_mid_write_recovers_byte_identically() {
    // `core.journal.torn` fsyncs a *prefix* of a record and aborts — the
    // torn-tail case a power cut mid-append leaves on disk.
    kill_and_resume("torn-first-append", "core.journal.torn:error@1");
    kill_and_resume("torn-third-append", "core.journal.torn:error@3");
}

#[test]
fn a_killed_resume_resumes_again() {
    // Crash during the original run, then crash during the *resume*, then
    // resume once more: journals must chain.
    let reference = reference_bytes();
    let dir = work_root().join("double-crash");
    let _ = std::fs::remove_dir_all(&dir);

    let first = run_reproduce(&dir, Some("core.journal.append:abort@2"), None);
    assert!(!first.status.success(), "first kill did not kill");

    // The resume re-journals the 1 replayed cell, so its append hits 1-2
    // land during replay and hit 3 lands inside the delta run.
    let second = run_reproduce(&dir, Some("core.journal.append:abort@3"), Some(&dir));
    assert!(!second.status.success(), "second kill did not kill");

    let final_run = run_reproduce(&dir, None, Some(&dir));
    assert!(
        final_run.status.success(),
        "resume after a killed resume failed:\n{}",
        stderr_of(&final_run)
    );
    let recovered = std::fs::read(dir.join("results.json")).expect("recovered results.json");
    assert_eq!(recovered, reference, "chained resume diverged");
}

#[test]
fn a_failed_append_retires_the_journal_but_not_the_run() {
    // Error kind (not abort): the append fails, the journal self-retires
    // so it can never disagree with the report, and the run completes
    // with the reference bytes regardless.
    let reference = reference_bytes();
    let dir = work_root().join("append-error");
    let _ = std::fs::remove_dir_all(&dir);

    let out = run_reproduce(&dir, Some("core.journal.append:error@2"), None);
    assert!(
        out.status.success(),
        "an append failure must not fail the run:\n{}",
        stderr_of(&out)
    );
    assert!(
        !dir.join("run.journal").exists(),
        "a journal that lost an append must retire (delete) itself"
    );
    let report = std::fs::read(dir.join("results.json")).expect("results.json");
    assert_eq!(report, reference, "journal retirement changed the report");

    // The retired journal leaves results.json alone as the resume source.
    let resumed = run_reproduce(&dir, None, Some(&dir));
    assert!(resumed.status.success(), "{}", stderr_of(&resumed));
    let stderr = stderr_of(&resumed);
    assert!(
        stderr.contains("# resume: replayed 4 cells, scheduling 0"),
        "expected a full replay from results.json, got:\n{stderr}"
    );
}
