//! Benchmarks the Figure 2 kernel: extracting first-layer feature maps and
//! computing their spectra before and after blurring.

use blurnet_data::{DatasetConfig, SignDataset};
use blurnet_nn::LisaCnn;
use blurnet_signal::{blur_image, box_kernel, fft2d_magnitude};
use blurnet_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_fig2(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut net = LisaCnn::new(18).build(&mut rng).unwrap();
    let data = SignDataset::generate(&DatasetConfig::tiny(), 7).unwrap();
    let image = data.stop_eval_images()[0].clone();
    let batch = Tensor::stack(&[image]).unwrap();

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("collect_feature_maps", |b| {
        b.iter(|| net.forward_collect(&batch, false).unwrap());
    });
    let (_, acts) = net.forward_collect(&batch, false).unwrap();
    let features = acts[0].batch_item(0).unwrap();
    let kernel = box_kernel(5);
    group.bench_function("feature_map_spectra_all_channels", |b| {
        b.iter(|| {
            for ch in 0..features.dims()[0] {
                fft2d_magnitude(&features.channel(ch).unwrap()).unwrap();
            }
        });
    });
    group.bench_function("blur_feature_maps_5x5", |b| {
        b.iter(|| blur_image(&features, &kernel).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
