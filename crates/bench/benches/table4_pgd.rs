//! Benchmarks the Table IV kernel: the PGD adversary (ε = 8/255, 10 steps)
//! against a reduced model.

use blurnet_attacks::{PgdAttack, PgdConfig};
use blurnet_data::{DatasetConfig, SignDataset, STOP_CLASS_ID};
use blurnet_nn::LisaCnn;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_table4(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let net = LisaCnn::new(18)
        .input_size(16)
        .conv1_filters(4)
        .build(&mut rng)
        .unwrap();
    let mut cfg = DatasetConfig::tiny();
    cfg.image_size = 16;
    let data = SignDataset::generate(&cfg, 4).unwrap();
    let image = data.stop_eval_images()[0].clone();
    let attack = PgdAttack::new(PgdConfig::default()).unwrap();

    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("pgd_10_steps_single_image", |b| {
        b.iter(|| attack.generate(&net, &image, STOP_CLASS_ID).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
