//! Benchmarks the Table III kernel: adaptive RP2 attacks (TV-aware and
//! low-frequency DCT) on a reduced model.

use blurnet_attacks::adaptive::{low_frequency_attack, tv_aware_attack};
use blurnet_attacks::Rp2Config;
use blurnet_data::{DatasetConfig, SignDataset};
use blurnet_nn::LisaCnn;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_table3(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let builder = LisaCnn::new(18).input_size(16).conv1_filters(4);
    let net = builder.build(&mut rng).unwrap();
    let mut cfg = DatasetConfig::tiny();
    cfg.image_size = 16;
    let data = SignDataset::generate(&cfg, 3).unwrap();
    let image = data.stop_eval_images()[0].clone();
    let base = Rp2Config {
        iterations: 5,
        num_transforms: 2,
        ..Rp2Config::default()
    };

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    let tv_attack = tv_aware_attack(base.clone(), builder.config().feature_layer_index()).unwrap();
    group.bench_function("tv_aware_rp2", |b| {
        b.iter(|| tv_attack.generate(&net, &image, 2).unwrap());
    });
    let lf_attack = low_frequency_attack(base, 8).unwrap();
    group.bench_function("low_frequency_rp2", |b| {
        b.iter(|| lf_attack.generate(&net, &image, 2).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
