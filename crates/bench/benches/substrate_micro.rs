//! Micro-benchmarks for the numeric substrates every experiment rests on:
//! convolution, matrix multiply, FFT/DCT, blurring and the regularizer
//! kernels.

use blurnet_nn::LisaCnn;
use blurnet_signal::{box_kernel, dct2d, fft2d_magnitude, total_variation_batch, OperatorPenalty};
use blurnet_signal::blur_batch;
use blurnet_tensor::{conv2d, matmul, ConvSpec, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_substrates(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);

    let a = Tensor::rand_uniform(&[64, 64], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform(&[64, 64], -1.0, 1.0, &mut rng);
    group.bench_function("matmul_64x64", |bench| {
        bench.iter(|| matmul(&a, &b).unwrap());
    });

    let input = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform(&[8, 3, 5, 5], -0.5, 0.5, &mut rng);
    group.bench_function("conv2d_32x32_8f", |bench| {
        bench.iter(|| conv2d(&input, &weight, None, ConvSpec::new(2, 2).unwrap()).unwrap());
    });

    let image = Tensor::rand_uniform(&[32, 32], 0.0, 1.0, &mut rng);
    group.bench_function("fft2d_32x32", |bench| {
        bench.iter(|| fft2d_magnitude(&image).unwrap());
    });
    group.bench_function("dct2d_32x32", |bench| {
        bench.iter(|| dct2d(&image).unwrap());
    });

    let feature_maps = Tensor::rand_uniform(&[1, 8, 16, 16], 0.0, 1.0, &mut rng);
    group.bench_function("tv_batch_8x16x16", |bench| {
        bench.iter(|| total_variation_batch(&feature_maps).unwrap());
    });
    let penalty = OperatorPenalty::high_frequency(16, 3).unwrap();
    group.bench_function("tikhonov_hf_batch_8x16x16", |bench| {
        bench.iter(|| penalty.value_batch(&feature_maps).unwrap());
    });
    let kernel = box_kernel(5);
    group.bench_function("blur5x5_batch_8x16x16", |bench| {
        bench.iter(|| blur_batch(&feature_maps, &kernel).unwrap());
    });

    let mut net = LisaCnn::new(18).build(&mut rng).unwrap();
    let batch = Tensor::rand_uniform(&[4, 3, 32, 32], 0.0, 1.0, &mut rng);
    group.bench_function("lisacnn_forward_batch4", |bench| {
        bench.iter(|| net.forward(&batch, false).unwrap());
    });
    group.bench_function("lisacnn_forward_backward_batch4", |bench| {
        bench.iter(|| {
            let out = net.forward(&batch, true).unwrap();
            net.zero_grads();
            net.backward(&Tensor::ones(out.dims())).unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
