//! Micro-benchmarks for the numeric substrates every experiment rests on:
//! convolution, matrix multiply, FFT/DCT, blurring and the regularizer
//! kernels — plus head-to-head comparisons of the blocked/parallel fast
//! paths against the seed implementations they replaced.
//!
//! Besides the human-readable criterion output, the run writes
//! `BENCH_substrate.json` at the repository root: a machine-readable record
//! (schema `blurnet-substrate-bench/v3`) of median ns/iter for every probe
//! and the fast-vs-seed speedups, so future PRs can track the perf
//! trajectory. The `simd_tier` entry records which kernel tier the backend
//! dispatched to (`avx2_fma` or `scalar`), so numbers from different hosts
//! or `BLURNET_FORCE_SCALAR=1` runs are never compared apples-to-oranges.
//! Single-thread numbers are measured through a 1-thread rayon
//! pool; `_mt` entries use the ambient `RAYON_NUM_THREADS`; the
//! `median_ns_per_iter_by_threads` section sweeps the shared
//! [`blurnet_bench::BENCH_THREAD_COUNTS`] on representative probes, with
//! `host_cpus`/`single_core_warning` recording whether real cores backed
//! the sweep.

use std::time::Duration;

use blurnet_bench::{host_entries, BENCH_THREAD_COUNTS};
use blurnet_nn::LisaCnn;
use blurnet_signal::{
    blur_batch, blur_batch_2d, box_kernel, dct2d, depthwise_weights, fft2d_magnitude,
    total_variation_batch, OperatorPenalty,
};
use blurnet_tensor::{default_backend, reference, ConvSpec, Scratch, SimdTier, Tensor};
use criterion::{criterion_group, criterion_main, measure_median_ns, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Value;

/// Samples per probe for the JSON record.
const JSON_SAMPLES: usize = 15;
/// Minimum batch duration per sample for the JSON record.
const MIN_BATCH: Duration = Duration::from_millis(4);

fn median_ns<O>(mut f: impl FnMut() -> O) -> f64 {
    measure_median_ns(&mut f, JSON_SAMPLES, MIN_BATCH)
}

/// Runs `f` under a single-thread rayon pool (the "st" numbers).
fn single_thread_ns<O>(mut f: impl FnMut() -> O) -> f64 {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("1-thread pool");
    pool.install(|| median_ns(&mut f))
}

struct Record {
    entries: Vec<(String, f64)>,
    speedups: Vec<(String, f64)>,
    per_thread: Vec<(String, f64)>,
}

impl Record {
    fn new() -> Self {
        Record {
            entries: Vec::new(),
            speedups: Vec::new(),
            per_thread: Vec::new(),
        }
    }

    fn push(&mut self, name: &str, ns: f64) {
        println!("json-probe {name:<40} {:12.1} ns/iter", ns);
        self.entries.push((name.to_string(), ns));
    }

    fn push_threads(&mut self, name: &str, threads: usize, ns: f64) {
        let key = format!("{name}_t{threads}");
        println!("json-probe {key:<40} {:12.1} ns/iter", ns);
        self.per_thread.push((key, ns));
    }

    fn speedup(&mut self, name: &str, seed_ns: f64, fast_ns: f64) {
        let ratio = seed_ns / fast_ns;
        println!("json-speedup {name:<38} {ratio:6.2}x");
        self.speedups.push((name.to_string(), ratio));
    }

    fn to_json(&self) -> String {
        let entries = Value::Map(
            self.entries
                .iter()
                .map(|(k, v)| (k.clone(), Value::Float(*v)))
                .collect(),
        );
        let speedups = Value::Map(
            self.speedups
                .iter()
                .map(|(k, v)| (k.clone(), Value::Float((*v * 100.0).round() / 100.0)))
                .collect(),
        );
        let per_thread = Value::Map(
            self.per_thread
                .iter()
                .map(|(k, v)| (k.clone(), Value::Float(*v)))
                .collect(),
        );
        let mut root = vec![(
            "schema".to_string(),
            Value::Str("blurnet-substrate-bench/v3".to_string()),
        )];
        root.extend(host_entries("substrate_micro"));
        root.push((
            "simd_tier".to_string(),
            Value::Str(SimdTier::detect().as_str().to_string()),
        ));
        root.push((
            "rayon_threads".to_string(),
            Value::Int(rayon::current_num_threads() as i64),
        ));
        root.push(("median_ns_per_iter".to_string(), entries));
        root.push(("median_ns_per_iter_by_threads".to_string(), per_thread));
        root.push(("speedup_vs_seed".to_string(), speedups));
        let root = Value::Map(root);
        serde_json::to_string_pretty(&root).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Measures the fast-vs-seed comparisons and writes `BENCH_substrate.json`
/// at the workspace root.
fn write_bench_json() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut record = Record::new();
    let backend = default_backend();

    // GEMM: the acceptance-criteria sizes, single-thread fast vs seed, plus
    // the default-thread-count number for multicore machines.
    for &n in &[64usize, 128, 256] {
        let a = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut rng);
        let seed_ns = single_thread_ns(|| reference::matmul_naive(&a, &b).unwrap());
        let fast_st = single_thread_ns(|| backend.matmul(&a, &b).unwrap());
        let fast_mt = median_ns(|| backend.matmul(&a, &b).unwrap());
        record.push(&format!("gemm_{n}x{n}_seed"), seed_ns);
        record.push(&format!("gemm_{n}x{n}_fast_st"), fast_st);
        record.push(&format!("gemm_{n}x{n}_fast_mt"), fast_mt);
        record.speedup(&format!("gemm_{n}x{n}_st"), seed_ns, fast_st);
    }

    // Depthwise conv (the BlurNet filter layer): direct path vs seed gather
    // loop on first-layer-sized feature maps.
    let feature_maps = Tensor::rand_uniform(&[8, 16, 32, 32], 0.0, 1.0, &mut rng);
    for &k in &[3usize, 5] {
        let weight = Tensor::rand_uniform(&[16, k, k], -0.5, 0.5, &mut rng);
        let spec = ConvSpec::same(k).expect("odd kernel");
        let seed_ns = single_thread_ns(|| {
            reference::depthwise_conv2d_naive(&feature_maps, &weight, None, spec).unwrap()
        });
        let fast_st = single_thread_ns(|| {
            backend
                .depthwise_conv2d(&feature_maps, &weight, None, spec)
                .unwrap()
        });
        let fast_mt = median_ns(|| {
            backend
                .depthwise_conv2d(&feature_maps, &weight, None, spec)
                .unwrap()
        });
        record.push(&format!("depthwise_{k}x{k}_8x16x32x32_seed"), seed_ns);
        record.push(&format!("depthwise_{k}x{k}_8x16x32x32_fast_st"), fast_st);
        record.push(&format!("depthwise_{k}x{k}_8x16x32x32_fast_mt"), fast_mt);
        record.speedup(&format!("depthwise_{k}x{k}_st"), seed_ns, fast_st);
    }

    // Blur on the acceptance-criteria batch shape ([8, 16, 32, 32]):
    // separable two-pass vs (a) the current generic 2-D path and (b) the
    // true seed path — depthwise gather-loop convolution with per-channel
    // copies of the kernel, exactly what `blur_batch` compiled to before
    // this optimisation pass.
    for &k in &[3usize, 5] {
        let kernel = box_kernel(k);
        let dw = depthwise_weights(&kernel, feature_maps.dims()[1]).expect("square kernel");
        let spec = ConvSpec::same(k).expect("odd kernel");
        let seed_ns = single_thread_ns(|| {
            reference::depthwise_conv2d_naive(&feature_maps, &dw, None, spec).unwrap()
        });
        let two_d_ns = single_thread_ns(|| blur_batch_2d(&feature_maps, &kernel).unwrap());
        let fast_st = single_thread_ns(|| blur_batch(&feature_maps, &kernel).unwrap());
        let fast_mt = median_ns(|| blur_batch(&feature_maps, &kernel).unwrap());
        record.push(&format!("blur{k}x{k}_8x16x32x32_seed"), seed_ns);
        record.push(&format!("blur{k}x{k}_8x16x32x32_2d_fast"), two_d_ns);
        record.push(&format!("blur{k}x{k}_8x16x32x32_separable_st"), fast_st);
        record.push(&format!("blur{k}x{k}_8x16x32x32_separable_mt"), fast_mt);
        record.speedup(&format!("blur{k}x{k}_st"), seed_ns, fast_st);
        record.speedup(&format!("blur{k}x{k}_vs_2d_st"), two_d_ns, fast_st);
    }

    // Forward-path probes (no seed counterpart; tracked for trajectory).
    let input = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform(&[8, 3, 5, 5], -0.5, 0.5, &mut rng);
    let conv_spec = ConvSpec::new(2, 2).expect("valid spec");
    let mut conv_scratch = Scratch::new();
    record.push(
        "conv2d_32x32_8f",
        median_ns(|| {
            backend
                .conv2d(&input, &weight, None, conv_spec, &mut conv_scratch)
                .unwrap()
        }),
    );
    let mut net = LisaCnn::new(18).build(&mut rng).expect("default LisaCnn");
    let batch = Tensor::rand_uniform(&[4, 3, 32, 32], 0.0, 1.0, &mut rng);
    record.push(
        "lisacnn_forward_batch4",
        median_ns(|| net.forward(&batch, false).unwrap()),
    );
    record.push(
        "lisacnn_forward_backward_batch4",
        median_ns(|| {
            let out = net.forward(&batch, true).unwrap();
            net.zero_grads();
            net.backward(&Tensor::ones(out.dims())).unwrap();
        }),
    );

    // Multi-core sweep on representative probes (one per substrate
    // family), at the shared thread counts every bench records.
    let ga = Tensor::rand_uniform(&[256, 256], -1.0, 1.0, &mut rng);
    let gb = Tensor::rand_uniform(&[256, 256], -1.0, 1.0, &mut rng);
    let blur_kernel = box_kernel(3);
    for &threads in &BENCH_THREAD_COUNTS {
        record.push_threads(
            "gemm_256x256",
            threads,
            blurnet_bench::with_threads(threads, || {
                median_ns(|| backend.matmul(&ga, &gb).unwrap())
            }),
        );
        record.push_threads(
            "blur3x3_8x16x32x32_separable",
            threads,
            blurnet_bench::with_threads(threads, || {
                median_ns(|| blur_batch(&feature_maps, &blur_kernel).unwrap())
            }),
        );
        record.push_threads(
            "lisacnn_forward_batch4",
            threads,
            blurnet_bench::with_threads(threads, || {
                median_ns(|| net.forward(&batch, false).unwrap())
            }),
        );
    }

    // crates/bench/ -> workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_substrate.json");
    match std::fs::write(path, record.to_json()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn bench_substrates(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let backend = default_backend();
    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);

    for &n in &[64usize, 128, 256] {
        let a = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut rng);
        group.bench_function(format!("matmul_{n}x{n}"), |bench| {
            bench.iter(|| backend.matmul(&a, &b).unwrap());
        });
        group.bench_function(format!("matmul_{n}x{n}_seed"), |bench| {
            bench.iter(|| reference::matmul_naive(&a, &b).unwrap());
        });
    }

    let input = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform(&[8, 3, 5, 5], -0.5, 0.5, &mut rng);
    let mut conv_scratch = Scratch::new();
    group.bench_function("conv2d_32x32_8f", |bench| {
        bench.iter(|| {
            backend
                .conv2d(
                    &input,
                    &weight,
                    None,
                    ConvSpec::new(2, 2).unwrap(),
                    &mut conv_scratch,
                )
                .unwrap()
        });
    });

    let feature_maps_big = Tensor::rand_uniform(&[8, 16, 32, 32], 0.0, 1.0, &mut rng);
    let dw_weight = Tensor::rand_uniform(&[16, 5, 5], -0.5, 0.5, &mut rng);
    let dw_spec = ConvSpec::same(5).unwrap();
    group.bench_function("depthwise5x5_8x16x32x32", |bench| {
        bench.iter(|| {
            backend
                .depthwise_conv2d(&feature_maps_big, &dw_weight, None, dw_spec)
                .unwrap()
        });
    });
    group.bench_function("depthwise5x5_8x16x32x32_seed", |bench| {
        bench.iter(|| {
            reference::depthwise_conv2d_naive(&feature_maps_big, &dw_weight, None, dw_spec).unwrap()
        });
    });

    let image = Tensor::rand_uniform(&[32, 32], 0.0, 1.0, &mut rng);
    group.bench_function("fft2d_32x32", |bench| {
        bench.iter(|| fft2d_magnitude(&image).unwrap());
    });
    group.bench_function("dct2d_32x32", |bench| {
        bench.iter(|| dct2d(&image).unwrap());
    });

    let feature_maps = Tensor::rand_uniform(&[1, 8, 16, 16], 0.0, 1.0, &mut rng);
    group.bench_function("tv_batch_8x16x16", |bench| {
        bench.iter(|| total_variation_batch(&feature_maps).unwrap());
    });
    let penalty = OperatorPenalty::high_frequency(16, 3).unwrap();
    group.bench_function("tikhonov_hf_batch_8x16x16", |bench| {
        bench.iter(|| penalty.value_batch(&feature_maps).unwrap());
    });

    let kernel = box_kernel(5);
    group.bench_function("blur5x5_batch_8x16x32x32_separable", |bench| {
        bench.iter(|| blur_batch(&feature_maps_big, &kernel).unwrap());
    });
    group.bench_function("blur5x5_batch_8x16x32x32_2d", |bench| {
        bench.iter(|| blur_batch_2d(&feature_maps_big, &kernel).unwrap());
    });

    let mut net = LisaCnn::new(18).build(&mut rng).unwrap();
    let batch = Tensor::rand_uniform(&[4, 3, 32, 32], 0.0, 1.0, &mut rng);
    group.bench_function("lisacnn_forward_batch4", |bench| {
        bench.iter(|| net.forward(&batch, false).unwrap());
    });
    // The batch-parallel inference engine over the same workload: packed
    // weights reused across calls, batch sharded over rayon. The full
    // thread-scaling sweep lives in the `batch_engine` bench
    // (BENCH_batch.json).
    {
        let engine = net.batch_engine().unwrap();
        group.bench_function("lisacnn_forward_batch4_engine", |bench| {
            bench.iter(|| engine.forward(&batch).unwrap());
        });
    }
    group.bench_function("lisacnn_forward_batch4_engine_fresh_pack", |bench| {
        bench.iter(|| net.forward_batch(&batch).unwrap());
    });
    group.bench_function("lisacnn_forward_backward_batch4", |bench| {
        bench.iter(|| {
            let out = net.forward(&batch, true).unwrap();
            net.zero_grads();
            net.backward(&Tensor::ones(out.dims())).unwrap();
        });
    });
    group.finish();
}

fn bench_with_json(c: &mut Criterion) {
    write_bench_json();
    bench_substrates(c);
}

criterion_group!(benches, bench_with_json);
criterion_main!(benches);
