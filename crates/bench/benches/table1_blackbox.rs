//! Benchmarks the Table I kernel: RP2 generation on the surrogate plus
//! transfer evaluation against an input-filtered and a feature-filtered
//! victim, at a reduced (16×16, few-iteration) size.

use blurnet_attacks::{evaluate_transfer, Rp2Attack, Rp2Config};
use blurnet_data::{DatasetConfig, SignDataset, STOP_CLASS_ID};
use blurnet_defenses::{DefendedModel, DefenseKind, TrainingReport};
use blurnet_nn::LisaCnn;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_table1(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let builder = LisaCnn::new(18).input_size(16).conv1_filters(4);
    let net = builder.build(&mut rng).unwrap();
    let surrogate = net.clone();
    let mut cfg = DatasetConfig::tiny();
    cfg.image_size = 16;
    let data = SignDataset::generate(&cfg, 1).unwrap();
    let images: Vec<_> = data.stop_eval_images()[..2].to_vec();
    let labels = vec![STOP_CLASS_ID; images.len()];
    let attack = Rp2Attack::new(Rp2Config {
        iterations: 5,
        num_transforms: 2,
        ..Rp2Config::default()
    })
    .unwrap();

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("rp2_generate_surrogate", |b| {
        b.iter(|| attack.generate_set(&surrogate, &images, 12).unwrap());
    });

    let adversarial = attack.generate_set(&surrogate, &images, 12).unwrap();
    let report = TrainingReport {
        epoch_losses: vec![],
        test_accuracy: 0.0,
    };
    let mut victim = DefendedModel::new(
        net,
        DefenseKind::InputFilter { kernel: 3 },
        builder.config().clone(),
        report,
    );
    group.bench_function("transfer_eval_input_filter", |b| {
        b.iter(|| evaluate_transfer(&mut victim, &images, &adversarial, &labels).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
