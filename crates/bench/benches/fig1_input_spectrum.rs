//! Benchmarks the Figure 1 kernel: log-magnitude spectra and band-energy
//! summaries of clean and perturbed stop signs.

use blurnet_data::{DatasetConfig, SignDataset, StickerLayout};
use blurnet_signal::{high_frequency_ratio, log_magnitude_spectrum};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig1(c: &mut Criterion) {
    let data = SignDataset::generate(&DatasetConfig::tiny(), 6).unwrap();
    let image = data.stop_eval_images()[0].clone();
    // Mean over channels, plus a sticker-shaped perturbation.
    let gray = image
        .channel(0)
        .unwrap()
        .add(&image.channel(1).unwrap())
        .unwrap()
        .add(&image.channel(2).unwrap())
        .unwrap()
        .scale(1.0 / 3.0);
    let mask = blurnet_data::sticker_mask(32, 32, StickerLayout::TwoBars).unwrap();
    let perturbed = gray.add(&mask.scale(0.6)).unwrap().clamp(0.0, 1.0);

    let mut group = c.benchmark_group("fig1");
    group.sample_size(20);
    group.bench_function("log_spectrum_clean", |b| {
        b.iter(|| log_magnitude_spectrum(&gray).unwrap());
    });
    group.bench_function("log_spectrum_perturbed", |b| {
        b.iter(|| log_magnitude_spectrum(&perturbed).unwrap());
    });
    group.bench_function("band_energy_ratio", |b| {
        b.iter(|| high_frequency_ratio(&perturbed, 0.5).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
