//! Benchmarks for the batch-parallel inference engine
//! ([`blurnet_nn::BatchEngine`]): thread-count scaling on the
//! acceptance-criteria `[8, 16, 32, 32]` batch forward, the engine vs the
//! per-sample forward loop, and a LisaCnn end-to-end probe.
//!
//! Besides the criterion output, the run writes `BENCH_batch.json` at the
//! repository root (schema `blurnet-batch-bench/v1`): median ns/iter per
//! thread count, images/s throughput, the scaling ratios, and the host's
//! CPU budget — scaling ratios are only meaningful when `host_cpus`
//! provides real parallelism (CI containers pinned to one core report ~1×
//! by construction; see README § Performance). The run also *asserts* that
//! outputs are bit-identical across thread counts, so a determinism
//! regression fails the bench loudly.

use std::time::Duration;

use blurnet_nn::{Conv2d, Dense, DepthwiseConv2d, Flatten, LisaCnn, MaxPool2d, Relu, Sequential};
use blurnet_signal::box_kernel;
use blurnet_tensor::{ConvSpec, Tensor};
use criterion::{criterion_group, criterion_main, measure_median_ns, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Value;

/// Samples per probe for the JSON record.
const JSON_SAMPLES: usize = 15;
/// Minimum batch duration per sample for the JSON record.
const MIN_BATCH: Duration = Duration::from_millis(4);

/// The thread counts swept by the scaling probes (shared across the
/// workspace's benches so `BENCH_*.json` timings are comparable).
const THREAD_COUNTS: [usize; 3] = blurnet_bench::BENCH_THREAD_COUNTS;

fn median_ns<O>(mut f: impl FnMut() -> O) -> f64 {
    measure_median_ns(&mut f, JSON_SAMPLES, MIN_BATCH)
}

/// Runs `f` under a fixed-size rayon pool.
fn with_threads<O>(threads: usize, mut f: impl FnMut() -> O) -> f64 {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    pool.install(|| median_ns(&mut f))
}

/// A convolution stack whose input is the acceptance-criteria
/// `[8, 16, 32, 32]` feature-map batch: conv → blur → pool → conv → head,
/// the same layer mix as the LISA-CNN's feature stages.
fn feature_stage_net(rng: &mut ChaCha8Rng) -> Sequential {
    let mut net = Sequential::new();
    net.push(Conv2d::new(16, 32, 3, ConvSpec::same(3).unwrap(), rng).unwrap())
        .push(Relu::new())
        .push(DepthwiseConv2d::fixed_kernel(32, &box_kernel(5)).unwrap())
        .push(MaxPool2d::new(2, 2).unwrap())
        .push(Conv2d::new(32, 32, 3, ConvSpec::same(3).unwrap(), rng).unwrap())
        .push(Relu::new())
        .push(Flatten::new())
        .push(Dense::new(32 * 16 * 16, 18, rng).unwrap());
    net
}

struct Record {
    entries: Vec<(String, Value)>,
}

impl Record {
    fn new() -> Self {
        Record {
            entries: Vec::new(),
        }
    }

    fn push_ns(&mut self, name: &str, ns: f64) {
        println!("json-probe {name:<44} {ns:12.1} ns/iter");
        self.entries.push((name.to_string(), Value::Float(ns)));
    }

    fn push_ratio(&mut self, name: &str, ratio: f64) {
        println!("json-ratio {name:<44} {ratio:6.2}x");
        self.entries.push((
            name.to_string(),
            Value::Float((ratio * 100.0).round() / 100.0),
        ));
    }

    fn into_json(self) -> String {
        let mut root = vec![
            (
                "schema".to_string(),
                Value::Str("blurnet-batch-bench/v1".to_string()),
            ),
            (
                "rayon_threads".to_string(),
                Value::Int(rayon::current_num_threads() as i64),
            ),
        ];
        root.extend(blurnet_bench::host_entries("batch_engine"));
        root.extend(self.entries);
        serde_json::to_string_pretty(&Value::Map(root)).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Measures the scaling sweep and writes `BENCH_batch.json` at the
/// workspace root.
fn write_batch_json() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut record = Record::new();

    // The acceptance-criteria workload: [8, 16, 32, 32] batch forward.
    let mut net = feature_stage_net(&mut rng);
    let batch = Tensor::rand_uniform(&[8, 16, 32, 32], 0.0, 1.0, &mut rng);
    let engine = net.batch_engine().expect("non-empty network");

    // Determinism gate: outputs must be bit-identical at every thread
    // count before any timing is worth recording.
    let reference = {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool");
        pool.install(|| engine.forward(&batch).expect("forward"))
    };
    for &threads in &THREAD_COUNTS {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let out = pool.install(|| engine.forward(&batch).expect("forward"));
        assert_eq!(
            out, reference,
            "forward_batch diverged at {threads} threads — determinism regression"
        );
    }
    record.entries.push((
        "bit_identical_across_threads".to_string(),
        Value::Bool(true),
    ));

    // Thread-count scaling of the sharded forward.
    let mut ns_at: Vec<(usize, f64)> = Vec::new();
    for &threads in &THREAD_COUNTS {
        let ns = with_threads(threads, || engine.forward(&batch).unwrap());
        record.push_ns(&format!("forward_batch_8x16x32x32_t{threads}"), ns);
        record.entries.push((
            format!("images_per_sec_8x16x32x32_t{threads}"),
            Value::Float((8.0 * 1e9 / ns * 10.0).round() / 10.0),
        ));
        ns_at.push((threads, ns));
    }
    let ns1 = ns_at[0].1;
    for &(threads, ns) in &ns_at[1..] {
        record.push_ratio(&format!("scaling_{threads}t_vs_1t"), ns1 / ns);
    }

    // Engine vs the per-sample stateful forward loop (both single-thread,
    // so the ratio isolates packing reuse + cache-free inference).
    let per_sample_ns = with_threads(1, || {
        for i in 0..batch.dims()[0] {
            let image = batch.batch_slice(i, 1).unwrap();
            net.forward(&image, false).unwrap();
        }
    });
    record.push_ns("per_sample_loop_8x16x32x32_st", per_sample_ns);
    record.push_ratio("engine_vs_per_sample_st", per_sample_ns / ns1);

    // LisaCnn end-to-end probes (batch 8), engine vs stateful batch forward.
    let mut lisa = LisaCnn::new(18).build(&mut rng).expect("default LisaCnn");
    let lisa_batch = Tensor::rand_uniform(&[8, 3, 32, 32], 0.0, 1.0, &mut rng);
    let lisa_engine = lisa.batch_engine().expect("non-empty network");
    for &threads in &THREAD_COUNTS {
        let ns = with_threads(threads, || lisa_engine.forward(&lisa_batch).unwrap());
        record.push_ns(&format!("lisacnn_forward_batch8_engine_t{threads}"), ns);
    }
    let stateful_ns = with_threads(1, || lisa.forward(&lisa_batch, false).unwrap());
    record.push_ns("lisacnn_forward_batch8_stateful_st", stateful_ns);

    // crates/bench/ -> workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    match std::fs::write(path, record.into_json()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut group = c.benchmark_group("batch_engine");
    group.sample_size(20);

    let mut net = feature_stage_net(&mut rng);
    let batch = Tensor::rand_uniform(&[8, 16, 32, 32], 0.0, 1.0, &mut rng);
    let engine = net.batch_engine().unwrap();
    group.bench_function("forward_batch_8x16x32x32", |bench| {
        bench.iter(|| engine.forward(&batch).unwrap());
    });
    group.bench_function("per_sample_loop_8x16x32x32", |bench| {
        bench.iter(|| {
            for i in 0..batch.dims()[0] {
                let image = batch.batch_slice(i, 1).unwrap();
                net.forward(&image, false).unwrap();
            }
        });
    });

    let mut lisa = LisaCnn::new(18).build(&mut rng).unwrap();
    let lisa_batch = Tensor::rand_uniform(&[8, 3, 32, 32], 0.0, 1.0, &mut rng);
    let lisa_engine = lisa.batch_engine().unwrap();
    group.bench_function("lisacnn_forward_batch8_engine", |bench| {
        bench.iter(|| lisa_engine.forward(&lisa_batch).unwrap());
    });
    group.bench_function("lisacnn_forward_batch8_stateful", |bench| {
        bench.iter(|| lisa.forward(&lisa_batch, false).unwrap());
    });
    group.finish();
}

fn bench_with_json(c: &mut Criterion) {
    write_batch_json();
    bench_engine(c);
}

criterion_group!(benches, bench_with_json);
criterion_main!(benches);
