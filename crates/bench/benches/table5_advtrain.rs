//! Benchmarks the Table V kernel: one adversarial-training batch (PGD
//! example generation plus the parameter update).

use blurnet_data::{DatasetConfig, SignDataset};
use blurnet_defenses::{train_defended_model, DefenseKind, TrainConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table5(c: &mut Criterion) {
    let mut cfg = DatasetConfig::tiny();
    cfg.image_size = 16;
    let data = SignDataset::generate(&cfg, 5).unwrap();
    let defense = DefenseKind::AdversarialTraining {
        epsilon: 8.0 / 255.0,
        step_size: 0.05,
        steps: 2,
    };
    let train = TrainConfig {
        epochs: 1,
        batch_size: 16,
        learning_rate: 2e-3,
        seed: 5,
    };

    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("adversarial_training_epoch", |b| {
        b.iter(|| train_defended_model(&defense, &data, &train).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
