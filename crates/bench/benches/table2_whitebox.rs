//! Benchmarks the Table II kernel: one white-box RP2 evaluation against a
//! TV-regularized model, plus one regularized training step.

use blurnet_attacks::{Rp2Attack, Rp2Config};
use blurnet_data::{DatasetConfig, SignDataset};
use blurnet_defenses::{DefenseKind, FeatureRegularizer};
use blurnet_nn::{softmax_cross_entropy, Adam, LisaCnn, Optimizer};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_table2(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let builder = LisaCnn::new(18).input_size(16).conv1_filters(4);
    let mut net = builder.build(&mut rng).unwrap();
    let mut cfg = DatasetConfig::tiny();
    cfg.image_size = 16;
    let data = SignDataset::generate(&cfg, 2).unwrap();
    let image = data.stop_eval_images()[0].clone();
    let attack = Rp2Attack::new(Rp2Config {
        iterations: 5,
        num_transforms: 2,
        ..Rp2Config::default()
    })
    .unwrap();

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("whitebox_rp2_single_image", |b| {
        b.iter(|| attack.generate(&net, &image, 3).unwrap());
    });

    // One TV-regularized training step (the extra cost every Table II row
    // with a feature regularizer pays per batch).
    let regularizer = FeatureRegularizer::from_defense(
        &DefenseKind::TotalVariation { alpha: 1e-4 },
        builder.config(),
    )
    .unwrap();
    let mut adam = Adam::new(1e-3).unwrap();
    let mut rng2 = ChaCha8Rng::seed_from_u64(3);
    let batch = data.train_batches(8, &mut rng2).unwrap().remove(0);
    group.bench_function("tv_regularized_training_step", |b| {
        b.iter(|| {
            net.zero_grads();
            let (logits, acts) = net.forward_collect(&batch.images, true).unwrap();
            let (_, d_logits) = softmax_cross_entropy(&logits, &batch.labels).unwrap();
            let (_, injections) = regularizer.apply(&mut net, &acts).unwrap();
            net.backward_with_injection(&d_logits, &injections).unwrap();
            let mut pairs = net.param_grad_pairs();
            adam.step(&mut pairs).unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
