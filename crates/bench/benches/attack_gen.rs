//! Benchmarks for batched adversarial-example **generation**
//! ([`blurnet_attacks::PgdAttack`] on the batched gradient engine): the
//! acceptance-criteria 10-step PGD on a batch of 8 `[3, 32, 32]` images,
//! per-image-loop vs batched engine, plus the persistent-pool vs
//! scoped-spawn dispatch delta in the vendored rayon stand-in.
//!
//! Besides the criterion output, the run writes `BENCH_attack.json` at the
//! repository root (schema `blurnet-attack-bench/v1`): median ns/iter for
//! the per-image mutable gradient loop and the batched engine at thread
//! counts {1, 2, 4}, PGD steps/sec for both, the single-thread speedup
//! ratio, the pool-vs-spawn dispatch timings, and the host's CPU budget.
//! The run also *asserts* that batched generation is bit-identical across
//! thread counts and ≤ 1e-5 from the per-image reference, so a regression
//! fails the bench loudly.

use std::time::Duration;

use blurnet_attacks::{PgdAttack, PgdConfig};
use blurnet_nn::{softmax_cross_entropy, LisaCnn, Sequential};
use blurnet_tensor::Tensor;
use criterion::{criterion_group, criterion_main, measure_median_ns, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Value;

/// Samples per probe for the JSON record.
const JSON_SAMPLES: usize = 11;
/// Minimum batch duration per sample for the JSON record.
const MIN_BATCH: Duration = Duration::from_millis(4);

/// The thread counts swept by the scaling probes (shared across the
/// workspace's benches so `BENCH_*.json` timings are comparable).
const THREAD_COUNTS: [usize; 3] = blurnet_bench::BENCH_THREAD_COUNTS;

fn median_ns<O>(mut f: impl FnMut() -> O) -> f64 {
    measure_median_ns(&mut f, JSON_SAMPLES, MIN_BATCH)
}

/// Runs `f` under a fixed-size rayon pool.
fn with_threads<O>(threads: usize, mut f: impl FnMut() -> O) -> f64 {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    pool.install(|| median_ns(&mut f))
}

/// The historical per-image PGD gradient loop (pre-batched-engine): one
/// stateful forward + full mutable backward per image per step. Kept here
/// verbatim as the benchmark baseline.
fn pgd_per_image(net: &mut Sequential, image: &Tensor, label: usize, config: &PgdConfig) -> Tensor {
    let mut x_adv = image.clone();
    for _ in 0..config.steps {
        let batch = Tensor::stack(std::slice::from_ref(&x_adv)).unwrap();
        let logits = net.forward(&batch, false).unwrap();
        let (_, d_logits) = softmax_cross_entropy(&logits, &[label]).unwrap();
        let grad = net.backward(&d_logits).unwrap().batch_item(0).unwrap();
        x_adv = x_adv
            .zip_map(&grad, |x, g| x + config.step_size * g.signum())
            .unwrap();
        x_adv = x_adv
            .zip_map(image, |x, orig| {
                x.clamp(orig - config.epsilon, orig + config.epsilon)
            })
            .unwrap();
        x_adv = x_adv.clamp(0.0, 1.0);
    }
    x_adv
}

struct Record {
    entries: Vec<(String, Value)>,
}

impl Record {
    fn new() -> Self {
        Record {
            entries: Vec::new(),
        }
    }

    fn push_ns(&mut self, name: &str, ns: f64) {
        println!("json-probe {name:<44} {ns:12.1} ns/iter");
        self.entries.push((name.to_string(), Value::Float(ns)));
    }

    fn push_ratio(&mut self, name: &str, ratio: f64) {
        println!("json-ratio {name:<44} {ratio:6.2}x");
        self.entries.push((
            name.to_string(),
            Value::Float((ratio * 100.0).round() / 100.0),
        ));
    }

    fn into_json(self) -> String {
        let mut root = vec![
            (
                "schema".to_string(),
                Value::Str("blurnet-attack-bench/v1".to_string()),
            ),
            (
                "rayon_threads".to_string(),
                Value::Int(rayon::current_num_threads() as i64),
            ),
        ];
        root.extend(blurnet_bench::host_entries("attack_gen"));
        root.extend(self.entries);
        serde_json::to_string_pretty(&Value::Map(root)).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Measures a trivially small parallel region — the work is one store per
/// chunk, so the timing is dominated by dispatch — through the persistent
/// pool (the live implementation).
fn pool_dispatch_ns(threads: usize) -> f64 {
    let mut data = vec![0u64; threads];
    with_threads(threads, || {
        data.iter_mut().for_each(|v| *v = 0);
        use rayon::prelude::*;
        data.par_chunks_mut(1).enumerate().for_each(|(i, c)| {
            c[0] = i as u64 + 1;
        });
    })
}

/// The same region executed with the pre-pool strategy: one scoped thread
/// spawned (and joined) per chunk, exactly like the old `run_partitioned`.
fn spawn_dispatch_ns(threads: usize) -> f64 {
    let mut data = vec![0u64; threads];
    median_ns(|| {
        let chunks: Vec<&mut [u64]> = data.chunks_mut(1).collect();
        std::thread::scope(|scope| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                scope.spawn(move || {
                    chunk[0] = i as u64 + 1;
                });
            }
        });
    })
}

/// Measures the PGD generation sweep and writes `BENCH_attack.json` at the
/// workspace root.
fn write_attack_json() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut record = Record::new();

    // The acceptance-criteria workload: 10-step PGD, batch of 8 [3,32,32].
    let mut net = LisaCnn::new(18).build(&mut rng).expect("default LisaCnn");
    let batch = Tensor::rand_uniform(&[8, 3, 32, 32], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| (i * 2) % 18).collect();
    let config = PgdConfig::default();
    let attack = PgdAttack::new(config).expect("valid PGD config");
    let steps = config.steps as f64;

    // Correctness gates before any timing: batched generation must be
    // bit-identical across thread counts and ≤ 1e-5 from the per-image
    // mutable gradient loop.
    let reference = {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool");
        pool.install(|| attack.perturb(&net, &batch, &labels).expect("perturb"))
    };
    for &threads in &THREAD_COUNTS {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let out = pool.install(|| attack.perturb(&net, &batch, &labels).expect("perturb"));
        assert_eq!(
            out, reference,
            "batched PGD diverged at {threads} threads — determinism regression"
        );
    }
    for (i, &label) in labels.iter().enumerate() {
        let image = batch
            .batch_slice(i, 1)
            .expect("row")
            .batch_item(0)
            .expect("item");
        let per_image = pgd_per_image(&mut net, &image, label, &config);
        let batched = reference.batch_item(i).expect("item");
        let max_diff = per_image
            .data()
            .iter()
            .zip(batched.data().iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff <= 1e-5,
            "batched PGD drifted {max_diff} from the per-image loop on image {i}"
        );
    }
    record.entries.push((
        "bit_identical_across_threads".to_string(),
        Value::Bool(true),
    ));

    // Per-image mutable gradient loop (the pre-engine baseline),
    // single-thread.
    let per_image_ns = with_threads(1, || {
        for (i, &label) in labels.iter().enumerate() {
            let image = batch.batch_slice(i, 1).unwrap().batch_item(0).unwrap();
            pgd_per_image(&mut net, &image, label, &config);
        }
    });
    record.push_ns("pgd10_batch8_per_image_loop_st", per_image_ns);
    record.entries.push((
        "pgd10_batch8_per_image_steps_per_sec_st".to_string(),
        Value::Float((steps * 1e9 / per_image_ns * 10.0).round() / 10.0),
    ));

    // Batched engine at each thread count (engine rebuilt per iteration so
    // the packing cost is included, as PgdAttack::perturb pays it).
    let mut batched_ns_at: Vec<(usize, f64)> = Vec::new();
    for &threads in &THREAD_COUNTS {
        let ns = with_threads(threads, || attack.perturb(&net, &batch, &labels).unwrap());
        record.push_ns(&format!("pgd10_batch8_batched_engine_t{threads}"), ns);
        record.entries.push((
            format!("pgd10_batch8_batched_steps_per_sec_t{threads}"),
            Value::Float((steps * 1e9 / ns * 10.0).round() / 10.0),
        ));
        batched_ns_at.push((threads, ns));
    }
    let batched_st = batched_ns_at[0].1;
    record.push_ratio("batched_vs_per_image_st", per_image_ns / batched_st);
    for &(threads, ns) in &batched_ns_at[1..] {
        record.push_ratio(
            &format!("batched_scaling_{threads}t_vs_1t"),
            batched_st / ns,
        );
    }

    // Persistent-pool vs scoped-spawn dispatch cost on a near-empty region
    // (what every small parallel call used to pay per invocation).
    for threads in [2usize, 4] {
        let pool_ns = pool_dispatch_ns(threads);
        let spawn_ns = spawn_dispatch_ns(threads);
        record.push_ns(&format!("dispatch_pool_{threads}w_ns"), pool_ns);
        record.push_ns(&format!("dispatch_spawn_{threads}w_ns"), spawn_ns);
        record.push_ratio(&format!("pool_vs_spawn_{threads}w"), spawn_ns / pool_ns);
    }

    // crates/bench/ -> workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_attack.json");
    match std::fs::write(path, record.into_json()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn bench_attack_gen(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut group = c.benchmark_group("attack_gen");
    group.sample_size(10);

    let mut net = LisaCnn::new(18).build(&mut rng).unwrap();
    let batch = Tensor::rand_uniform(&[8, 3, 32, 32], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| (i * 2) % 18).collect();
    let config = PgdConfig::default();
    let attack = PgdAttack::new(config).unwrap();

    group.bench_function("pgd10_batch8_batched_engine", |b| {
        b.iter(|| attack.perturb(&net, &batch, &labels).unwrap());
    });
    group.bench_function("pgd10_batch8_per_image_loop", |b| {
        b.iter(|| {
            for (i, &label) in labels.iter().enumerate() {
                let image = batch.batch_slice(i, 1).unwrap().batch_item(0).unwrap();
                pgd_per_image(&mut net, &image, label, &config);
            }
        });
    });
    group.finish();
}

fn bench_with_json(c: &mut Criterion) {
    write_attack_json();
    bench_attack_gen(c);
}

criterion_group!(benches, bench_with_json);
criterion_main!(benches);
