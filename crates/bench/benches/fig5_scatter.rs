//! Benchmarks the Figures 5–6 kernel: a per-target white-box RP2
//! evaluation point (generate + classify + dissimilarity) on a reduced
//! model.

use blurnet_attacks::{l2_dissimilarity, Rp2Attack, Rp2Config};
use blurnet_data::{DatasetConfig, SignDataset};
use blurnet_nn::LisaCnn;
use blurnet_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_fig5(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let net = LisaCnn::new(18)
        .input_size(16)
        .conv1_filters(4)
        .build(&mut rng)
        .unwrap();
    let mut cfg = DatasetConfig::tiny();
    cfg.image_size = 16;
    let data = SignDataset::generate(&cfg, 10).unwrap();
    let image = data.stop_eval_images()[0].clone();
    let attack = Rp2Attack::new(Rp2Config {
        iterations: 5,
        num_transforms: 2,
        ..Rp2Config::default()
    })
    .unwrap();

    let mut group = c.benchmark_group("fig5_6");
    group.sample_size(10);
    group.bench_function("per_target_scatter_point", |b| {
        b.iter(|| {
            let result = attack.generate(&net, &image, 4).unwrap();
            let pred = net
                .predict_batch(&Tensor::stack(std::slice::from_ref(&result.adversarial)).unwrap())
                .unwrap()[0];
            let dissim = l2_dissimilarity(&image, &result.adversarial).unwrap();
            (pred, dissim)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
