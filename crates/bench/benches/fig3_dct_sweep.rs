//! Benchmarks the Figure 3 kernel: the DCT low-frequency projection at the
//! mask dimensions swept by the figure.

use blurnet_signal::low_frequency_project;
use blurnet_tensor::Tensor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_fig3(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let perturbation = Tensor::rand_uniform(&[32, 32], -0.5, 0.5, &mut rng);
    let mut group = c.benchmark_group("fig3");
    group.sample_size(20);
    for dim in [4usize, 8, 16, 32] {
        group.bench_with_input(
            BenchmarkId::new("low_frequency_project", dim),
            &dim,
            |b, &dim| {
                b.iter(|| low_frequency_project(&perturbation, dim).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
