//! Benchmarks the Figure 4 kernel: second-layer activation extraction and
//! band-energy analysis.

use blurnet_data::{DatasetConfig, SignDataset};
use blurnet_nn::LisaCnn;
use blurnet_signal::high_frequency_ratio;
use blurnet_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_fig4(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let builder = LisaCnn::new(18);
    let mut net = builder.build(&mut rng).unwrap();
    let data = SignDataset::generate(&DatasetConfig::tiny(), 9).unwrap();
    let batch = Tensor::stack(&[data.stop_eval_images()[0].clone()]).unwrap();
    let second_index = builder.config().second_conv_layer_index();

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("second_layer_band_energy", |b| {
        b.iter(|| {
            let (_, acts) = net.forward_collect(&batch, false).unwrap();
            let maps = acts[second_index].batch_item(0).unwrap();
            let mut acc = 0.0;
            for ch in 0..maps.dims()[0] {
                let map = maps.channel(ch).unwrap();
                if map.l2_norm() > 0.0 {
                    acc += high_frequency_ratio(&map, 0.5).unwrap();
                }
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
