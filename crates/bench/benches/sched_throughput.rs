//! Benchmarks the concurrent experiment scheduler against the sequential
//! `BatchRunner` paths and writes `BENCH_sched.json` at the repository
//! root (schema `blurnet-sched-bench/v1`).
//!
//! Two sequential baselines are recorded, because the pre-scheduler repo
//! had two sequential modes:
//!
//! * **Per-experiment (cold)** — the README's documented reproduction
//!   path: one process per table/figure binary, each building its own
//!   `ModelZoo` and regenerating shared prerequisites. This is the
//!   headline `speedup_*_vs_sequential` comparison; the scheduler's DAG
//!   deduplicates trained variants and RP2 artifacts across experiments,
//!   so it wins even on the 1-core container, and cell-level overlap adds
//!   on top on multi-core hosts (re-measure there; `host_cpus` is
//!   recorded).
//! * **Shared-zoo (warm)** — the `all_experiments` mode: one pre-trained
//!   zoo, cells run back-to-back. Against this baseline a 1-core host
//!   only gains artifact dedup (`speedup_*_vs_shared_zoo` is ~1× there by
//!   construction); the cell-overlap win needs real cores.
//!
//! Before any timing, the run *asserts* that the scheduler's report is
//! bit-identical to the sequential one at every measured worker count — a
//! determinism regression fails the bench loudly.

use std::sync::Arc;
use std::time::Instant;

use blurnet::experiments::grid::{CellKind, CellSpec, ExperimentGrid};
use blurnet::experiments::table1::Table1Victim;
use blurnet::{ExperimentScheduler, ModelZoo, Scale};
use blurnet_data::SignDataset;
use blurnet_defenses::{train_defended_model, DefenseKind, VariantCache};
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Value;

/// Seed shared with the experiment binaries.
const SEED: u64 = 7;

/// Timed repetitions per configuration (whole-grid runs are seconds-long;
/// the median of three suppresses scheduling noise without hour-long
/// benches).
const RUNS: usize = 3;

/// Scheduler worker counts measured.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// The warm benchmark grid: both sticker-artifact consumers, one Table I
/// victim (transfer-set consumer), and the golden micro-grid's four
/// attack cells.
fn bench_grid() -> ExperimentGrid {
    let mut cells = vec![
        CellSpec {
            experiment: "figure1",
            label: "input spectrum".into(),
            kind: CellKind::Figure1,
        },
        CellSpec {
            experiment: "figure2",
            label: "feature-map spectra".into(),
            kind: CellKind::Figure2 { max_channels: 4 },
        },
        CellSpec {
            experiment: "table1",
            label: Table1Victim::Baseline.label(),
            kind: CellKind::Table1(Table1Victim::Baseline),
        },
    ];
    cells.extend(ExperimentGrid::micro().cells().to_vec());
    ExperimentGrid::custom(cells)
}

/// The distinct variants the grid needs (trained once, outside timing).
fn grid_defenses(scale: Scale) -> Vec<DefenseKind> {
    let grid = bench_grid();
    let mut out: Vec<DefenseKind> = Vec::new();
    for spec in grid.cells() {
        let defense = spec.required_defense(scale);
        if !out.contains(&defense) {
            out.push(defense);
        }
    }
    out
}

fn median(mut ns: Vec<f64>) -> f64 {
    ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    ns[ns.len() / 2]
}

fn write_sched_json() {
    let scale = Scale::Smoke;
    let grid = bench_grid();

    // Warm model store shared by every scheduler run, outside timing.
    let dataset = SignDataset::generate(&scale.dataset_config(), SEED).expect("dataset");
    let warm = Arc::new(VariantCache::new());
    for defense in grid_defenses(scale) {
        warm.insert(
            train_defended_model(&defense, &dataset, &scale.train_config()).expect("training"),
        );
    }

    // Warm sequential zoo, seeded with the same trained variants.
    let fresh_zoo = || {
        let mut zoo = ModelZoo::new(scale, SEED).expect("zoo");
        for label in warm.labels() {
            zoo.insert((*warm.get(&label).expect("warm variant")).clone());
        }
        zoo
    };

    // Determinism gate: every worker count must reproduce the sequential
    // report bit-for-bit before any number is worth recording.
    let reference = grid
        .run_sequential(&mut fresh_zoo())
        .expect("sequential run");
    for &workers in &WORKER_COUNTS {
        let run = ExperimentScheduler::new(scale, SEED)
            .threads(workers)
            .with_variants(Arc::clone(&warm))
            .run(&grid)
            .expect("scheduler run");
        assert!(
            run.report.all_ok(),
            "scheduler cells failed at {workers} workers"
        );
        assert_eq!(
            run.report.to_json(),
            reference.to_json(),
            "scheduler diverged from the sequential path at {workers} workers"
        );
    }

    let mut entries: Vec<(String, Value)> =
        vec![("schema".into(), Value::Str("blurnet-sched-bench/v1".into()))];
    entries.extend(blurnet_bench::host_entries("sched_throughput"));
    entries.push(("cells".into(), Value::Int(grid.len() as i64)));
    entries.push(("bit_identical_to_sequential".into(), Value::Bool(true)));
    let push_ns = |entries: &mut Vec<(String, Value)>, name: &str, ns: f64| {
        println!("json-probe {name:<44} {:10.1} ms", ns / 1e6);
        entries.push((name.to_string(), Value::Float(ns)));
    };

    // Headline baseline: the README's pre-scheduler reproduction path —
    // one sequential process per experiment, each with its own cold zoo
    // (own training, own artifact generation).
    let mut experiments: Vec<&'static str> = Vec::new();
    for spec in grid.cells() {
        if !experiments.contains(&spec.experiment) {
            experiments.push(spec.experiment);
        }
    }
    let per_experiment_ns = median(
        (0..RUNS)
            .map(|_| {
                let t0 = Instant::now();
                for experiment in &experiments {
                    let sub = ExperimentGrid::custom(
                        grid.cells()
                            .iter()
                            .filter(|c| c.experiment == *experiment)
                            .cloned()
                            .collect(),
                    );
                    let mut zoo = ModelZoo::new(scale, SEED).expect("zoo");
                    sub.run_sequential(&mut zoo).expect("sequential run");
                }
                t0.elapsed().as_nanos() as f64
            })
            .collect(),
    );
    push_ns(
        &mut entries,
        "sequential_per_experiment_ns",
        per_experiment_ns,
    );
    entries.push((
        "sequential_per_experiment_cells_per_sec".into(),
        Value::Float(round2(grid.len() as f64 * 1e9 / per_experiment_ns)),
    ));

    // Secondary baseline: one shared warm zoo, cells back-to-back (the
    // all_experiments mode, training excluded). Zoo construction (dataset
    // generation) is timed because the scheduler's runs pay the same cost
    // inside `run()`.
    let shared_zoo_ns = median(
        (0..RUNS)
            .map(|_| {
                let t0 = Instant::now();
                let mut zoo = fresh_zoo();
                grid.run_sequential(&mut zoo).expect("sequential run");
                t0.elapsed().as_nanos() as f64
            })
            .collect(),
    );
    push_ns(&mut entries, "sequential_shared_zoo_ns", shared_zoo_ns);
    entries.push((
        "sequential_shared_zoo_cells_per_sec".into(),
        Value::Float(round2(grid.len() as f64 * 1e9 / shared_zoo_ns)),
    ));

    for &workers in &WORKER_COUNTS {
        // Cold scheduler runs (training + artifacts inside the timed
        // region) — apples-to-apples with the per-experiment baseline.
        let mut utilization = 0.0;
        let cold_ns = median(
            (0..RUNS)
                .map(|_| {
                    let t0 = Instant::now();
                    let run = ExperimentScheduler::new(scale, SEED)
                        .threads(workers)
                        .run(&grid)
                        .expect("scheduler run");
                    assert!(run.report.all_ok());
                    utilization = run.profile.utilization();
                    t0.elapsed().as_nanos() as f64
                })
                .collect(),
        );
        push_ns(
            &mut entries,
            &format!("scheduler_cold_t{workers}_ns"),
            cold_ns,
        );
        entries.push((
            format!("scheduler_cold_t{workers}_cells_per_sec"),
            Value::Float(round2(grid.len() as f64 * 1e9 / cold_ns)),
        ));
        entries.push((
            format!("scheduler_cold_t{workers}_pool_utilization"),
            Value::Float(round2(utilization)),
        ));
        let speedup = round2(per_experiment_ns / cold_ns);
        println!("json-ratio scheduler_cold_t{workers}_vs_sequential {speedup:>22.2}x");
        entries.push((
            format!("speedup_t{workers}_vs_sequential"),
            Value::Float(speedup),
        ));

        // Warm scheduler runs — apples-to-apples with the shared-zoo
        // baseline (cell work only).
        let warm_ns = median(
            (0..RUNS)
                .map(|_| {
                    let t0 = Instant::now();
                    ExperimentScheduler::new(scale, SEED)
                        .threads(workers)
                        .with_variants(Arc::clone(&warm))
                        .run(&grid)
                        .expect("scheduler run");
                    t0.elapsed().as_nanos() as f64
                })
                .collect(),
        );
        push_ns(
            &mut entries,
            &format!("scheduler_warm_t{workers}_ns"),
            warm_ns,
        );
        entries.push((
            format!("speedup_t{workers}_vs_shared_zoo"),
            Value::Float(round2(shared_zoo_ns / warm_ns)),
        ));
    }

    let json = serde_json::to_string_pretty(&Value::Map(entries)).unwrap_or_else(|_| "{}".into());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn bench_scheduler(c: &mut Criterion) {
    // The JSON probe is the real measurement; register one criterion probe
    // on the cheap DAG-planning path so the harness has a group to report.
    let mut group = c.benchmark_group("sched_throughput");
    group.sample_size(10);
    let grid = ExperimentGrid::full(Scale::Smoke);
    let scheduler = ExperimentScheduler::new(Scale::Smoke, SEED);
    group.bench_function("plan_full_grid", |b| {
        b.iter(|| scheduler.plan(&grid));
    });
    group.finish();
}

fn bench_with_json(c: &mut Criterion) {
    write_sched_json();
    bench_scheduler(c);
}

criterion_group!(benches, bench_with_json);
criterion_main!(benches);
