//! Signal-processing substrate for the BlurNet reproduction.
//!
//! BlurNet's motivation, defenses and adaptive attacks all rest on a small
//! amount of classical signal processing:
//!
//! * 2-D FFT spectra of inputs and feature maps (Figures 1, 2 and 4 of the
//!   paper) — [`fft`] and [`spectrum`];
//! * low-pass blur kernels inserted as a depthwise layer or applied to the
//!   input (Table I) — [`kernels`];
//! * the total-variation regularizer and its gradient (Eq. 3–4, 9) — [`tv`];
//! * Tikhonov regularization operators `L_hf = I − L_avg` and the
//!   pseudoinverse of a difference matrix (Eq. 5–7, 10–11) — [`tikhonov`];
//! * the 2-D DCT used by the low-frequency adaptive attack (Eq. 8,
//!   Figure 3) — [`dct`].
//!
//! # Example
//!
//! ```
//! use blurnet_signal::{fft2d_magnitude, kernels};
//! use blurnet_tensor::Tensor;
//!
//! let image = Tensor::ones(&[8, 8]);
//! let spectrum = fft2d_magnitude(&image)?;
//! assert_eq!(spectrum.dims(), &[8, 8]);
//! let kernel = kernels::gaussian_kernel(5, 1.0);
//! assert!((kernel.sum() - 1.0).abs() < 1e-5);
//! # Ok::<(), blurnet_signal::SignalError>(())
//! ```

#![warn(missing_docs)]

mod complex;
pub mod dct;
mod error;
pub mod fft;
pub mod kernels;
pub mod spectrum;
pub mod tikhonov;
pub mod tv;

pub use complex::Complex32;
pub use dct::{dct2d, idct2d, low_frequency_mask, low_frequency_project};
pub use error::SignalError;
pub use fft::{fft2d, fft2d_magnitude, fftshift2d, ifft2d, log_magnitude_spectrum};
pub use kernels::{
    blur_batch, blur_batch_2d, blur_image, box_kernel, depthwise_weights, gaussian_kernel,
    separable_factors,
};
pub use spectrum::{band_energy, high_frequency_ratio, BandEnergy};
pub use tikhonov::{
    difference_matrix, high_frequency_operator, moving_average_matrix, ridge_pseudoinverse,
    OperatorPenalty,
};
pub use tv::{total_variation, total_variation_batch, tv_gradient, tv_gradient_batch};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, SignalError>;
