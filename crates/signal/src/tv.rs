//! Total variation (TV) of images and feature maps, and its sub-gradient.
//!
//! The paper's strongest defense (Eq. 3–4) adds the anisotropic total
//! variation of the first-layer feature maps to the training loss; the
//! adaptive attack of Eq. 9 adds the same term to the attacker's loss.
//! Both need the value and the (sub-)gradient implemented here.

use blurnet_tensor::Tensor;

use crate::{Result, SignalError};

fn require_2d(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(SignalError::BadShape(format!(
            "expected a rank-2 map, got shape {}",
            t.shape()
        )));
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Anisotropic total variation of an `[H, W]` map:
/// `Σ |x[i+1,j] − x[i,j]| + |x[i,j+1] − x[i,j]|`.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if the input is not rank 2.
pub fn total_variation(map: &Tensor) -> Result<f32> {
    let (h, w) = require_2d(map)?;
    let d = map.data();
    let mut tv = 0.0f32;
    for y in 0..h {
        for x in 0..w {
            let v = d[y * w + x];
            if y + 1 < h {
                tv += (d[(y + 1) * w + x] - v).abs();
            }
            if x + 1 < w {
                tv += (d[y * w + x + 1] - v).abs();
            }
        }
    }
    Ok(tv)
}

/// Sub-gradient of [`total_variation`] with respect to the map.
///
/// Uses `sign(0) = 0`, the usual convention for the non-differentiable
/// points of the absolute value.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if the input is not rank 2.
pub fn tv_gradient(map: &Tensor) -> Result<Tensor> {
    let (h, w) = require_2d(map)?;
    let d = map.data();
    let mut grad = vec![0.0f32; h * w];
    for y in 0..h {
        for x in 0..w {
            let v = d[y * w + x];
            if y + 1 < h {
                let s = sign(d[(y + 1) * w + x] - v);
                grad[(y + 1) * w + x] += s;
                grad[y * w + x] -= s;
            }
            if x + 1 < w {
                let s = sign(d[y * w + x + 1] - v);
                grad[y * w + x + 1] += s;
                grad[y * w + x] -= s;
            }
        }
    }
    Ok(Tensor::from_vec(grad, &[h, w])?)
}

fn sign(v: f32) -> f32 {
    if v > 0.0 {
        1.0
    } else if v < 0.0 {
        -1.0
    } else {
        0.0
    }
}

/// Mean total variation across every `[H, W]` map of an `[N, C, H, W]`
/// batch — the `1/(N·K) Σ TV(F)` term of Eq. 4.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if the input is not rank 4.
pub fn total_variation_batch(batch: &Tensor) -> Result<f32> {
    let (n, c, h, w) = batch_dims(batch)?;
    let d = batch.data();
    let mut acc = 0.0f32;
    for i in 0..n * c {
        let map = Tensor::from_vec(d[i * h * w..(i + 1) * h * w].to_vec(), &[h, w])?;
        acc += total_variation(&map)?;
    }
    Ok(acc / (n * c) as f32)
}

/// Gradient of [`total_variation_batch`] with respect to the batch.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if the input is not rank 4.
pub fn tv_gradient_batch(batch: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = batch_dims(batch)?;
    let d = batch.data();
    let scale = 1.0 / (n * c) as f32;
    let mut out = Vec::with_capacity(batch.len());
    for i in 0..n * c {
        let map = Tensor::from_vec(d[i * h * w..(i + 1) * h * w].to_vec(), &[h, w])?;
        let g = tv_gradient(&map)?;
        out.extend(g.data().iter().map(|v| v * scale));
    }
    Ok(Tensor::from_vec(out, &[n, c, h, w])?)
}

fn batch_dims(batch: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if batch.shape().rank() != 4 {
        return Err(SignalError::BadShape(format!(
            "expected an [N, C, H, W] batch, got {}",
            batch.shape()
        )));
    }
    let d = batch.dims();
    Ok((d[0], d[1], d[2], d[3]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_map_has_zero_tv() {
        let map = Tensor::full(&[8, 8], 3.0);
        assert_eq!(total_variation(&map).unwrap(), 0.0);
        assert_eq!(tv_gradient(&map).unwrap().l2_norm(), 0.0);
    }

    #[test]
    fn step_edge_tv_is_edge_length() {
        // Left half zeros, right half ones: H horizontal jumps of size 1.
        let h = 6;
        let w = 8;
        let mut map = Tensor::zeros(&[h, w]);
        for y in 0..h {
            for x in w / 2..w {
                map.set(&[y, x], 1.0).unwrap();
            }
        }
        assert_eq!(total_variation(&map).unwrap(), h as f32);
    }

    #[test]
    fn isolated_spike_has_large_tv() {
        let mut smooth = Tensor::zeros(&[8, 8]);
        let mut spiked = Tensor::zeros(&[8, 8]);
        spiked.set(&[4, 4], 5.0).unwrap();
        // Add a gentle ramp to both.
        for y in 0..8 {
            for x in 0..8 {
                let ramp = 0.05 * (x + y) as f32;
                smooth
                    .set(&[y, x], smooth.get(&[y, x]).unwrap() + ramp)
                    .unwrap();
                spiked
                    .set(&[y, x], spiked.get(&[y, x]).unwrap() + ramp)
                    .unwrap();
            }
        }
        assert!(total_variation(&spiked).unwrap() > total_variation(&smooth).unwrap() + 10.0);
    }

    #[test]
    fn tv_gradient_matches_finite_differences() {
        let map = Tensor::from_vec(
            (0..36).map(|v| ((v * 13) % 7) as f32 * 0.31).collect(),
            &[6, 6],
        )
        .unwrap();
        let grad = tv_gradient(&map).unwrap();
        let eps = 1e-3f32;
        for &idx in &[0usize, 7, 14, 21, 35] {
            let mut plus = map.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = map.clone();
            minus.data_mut()[idx] -= eps;
            let numeric =
                (total_variation(&plus).unwrap() - total_variation(&minus).unwrap()) / (2.0 * eps);
            let analytic = grad.data()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "at {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn batch_tv_averages_per_map() {
        let mut batch = Tensor::zeros(&[2, 2, 4, 4]);
        // One map gets a spike; the other three stay flat.
        batch.set(&[0, 0, 2, 2], 4.0).unwrap();
        let single_map = batch.batch_item(0).unwrap().channel(0).unwrap();
        let expected = total_variation(&single_map).unwrap() / 4.0;
        assert!((total_variation_batch(&batch).unwrap() - expected).abs() < 1e-5);
    }

    #[test]
    fn batch_gradient_shape_and_scaling() {
        let mut batch = Tensor::zeros(&[1, 2, 4, 4]);
        batch.set(&[0, 0, 1, 1], 2.0).unwrap();
        let g = tv_gradient_batch(&batch).unwrap();
        assert_eq!(g.dims(), &[1, 2, 4, 4]);
        // Channel 1 is flat -> zero gradient there.
        let g_c1 = g.batch_item(0).unwrap().channel(1).unwrap();
        assert_eq!(g_c1.l2_norm(), 0.0);
        // Channel 0 carries the (1/(N*K))-scaled spike gradient.
        let g_c0 = g.batch_item(0).unwrap().channel(0).unwrap();
        assert!(g_c0.linf_norm() > 0.0);
        assert!(g_c0.linf_norm() <= 4.0 / 2.0);
    }

    #[test]
    fn shape_errors() {
        assert!(total_variation(&Tensor::zeros(&[2, 3, 4])).is_err());
        assert!(tv_gradient(&Tensor::zeros(&[8])).is_err());
        assert!(total_variation_batch(&Tensor::zeros(&[2, 3, 4])).is_err());
    }
}
