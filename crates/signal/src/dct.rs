//! 2-D discrete cosine transform (DCT-II) and its inverse.
//!
//! The adaptive low-frequency attack of the paper (Eq. 8, Figure 3) projects
//! the RP2 perturbation through `IDCT(M_dim · DCT(M_x · δ))`, where `M_dim`
//! zeroes all but the lowest `dim × dim` DCT coefficients.

use blurnet_tensor::Tensor;

use crate::{Result, SignalError};

fn require_2d(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(SignalError::BadShape(format!(
            "expected a rank-2 tensor, got shape {}",
            t.shape()
        )));
    }
    Ok((t.dims()[0], t.dims()[1]))
}

fn dct1d(input: &[f32], inverse: bool) -> Vec<f32> {
    let n = input.len();
    let nf = n as f32;
    let mut out = vec![0.0f32; n];
    if inverse {
        // DCT-III (the inverse of the orthonormal DCT-II).
        for (x, o) in out.iter_mut().enumerate() {
            let mut acc = input[0] * (1.0 / nf).sqrt();
            for (k, &v) in input.iter().enumerate().skip(1) {
                let angle = std::f32::consts::PI * (x as f32 + 0.5) * k as f32 / nf;
                acc += v * (2.0 / nf).sqrt() * angle.cos();
            }
            *o = acc;
        }
    } else {
        // Orthonormal DCT-II.
        for (k, o) in out.iter_mut().enumerate() {
            let scale = if k == 0 {
                (1.0 / nf).sqrt()
            } else {
                (2.0 / nf).sqrt()
            };
            let mut acc = 0.0;
            for (x, &v) in input.iter().enumerate() {
                let angle = std::f32::consts::PI * (x as f32 + 0.5) * k as f32 / nf;
                acc += v * angle.cos();
            }
            *o = scale * acc;
        }
    }
    out
}

fn transform2d(image: &Tensor, inverse: bool) -> Result<Tensor> {
    let (h, w) = require_2d(image)?;
    let mut grid = image.data().to_vec();
    // Rows.
    for y in 0..h {
        let row = dct1d(&grid[y * w..(y + 1) * w], inverse);
        grid[y * w..(y + 1) * w].copy_from_slice(&row);
    }
    // Columns.
    let mut col = vec![0.0f32; h];
    for x in 0..w {
        for y in 0..h {
            col[y] = grid[y * w + x];
        }
        let out = dct1d(&col, inverse);
        for y in 0..h {
            grid[y * w + x] = out[y];
        }
    }
    Ok(Tensor::from_vec(grid, &[h, w])?)
}

/// Orthonormal 2-D DCT-II of an `[H, W]` tensor.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if the input is not rank 2.
pub fn dct2d(image: &Tensor) -> Result<Tensor> {
    transform2d(image, false)
}

/// Inverse of [`dct2d`].
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if the input is not rank 2.
pub fn idct2d(coeffs: &Tensor) -> Result<Tensor> {
    transform2d(coeffs, true)
}

/// The DCT-domain mask `M_dim`: keeps the lowest `dim × dim` coefficients of
/// an `h × w` DCT grid and zeroes the rest.
///
/// # Errors
///
/// Returns [`SignalError::BadParameter`] if `dim` is zero or exceeds the
/// grid extents.
pub fn low_frequency_mask(h: usize, w: usize, dim: usize) -> Result<Tensor> {
    if dim == 0 || dim > h || dim > w {
        return Err(SignalError::BadParameter(format!(
            "mask dimension {dim} must lie in 1..=min({h}, {w})"
        )));
    }
    let mut mask = Tensor::zeros(&[h, w]);
    for y in 0..dim {
        for x in 0..dim {
            mask.set(&[y, x], 1.0)?;
        }
    }
    Ok(mask)
}

/// Projects an `[H, W]` perturbation onto its lowest `dim × dim` DCT
/// coefficients: `IDCT(M_dim · DCT(x))`.
///
/// # Errors
///
/// Returns an error if the input is not rank 2 or `dim` is invalid.
pub fn low_frequency_project(x: &Tensor, dim: usize) -> Result<Tensor> {
    let (h, w) = require_2d(x)?;
    let mask = low_frequency_mask(h, w, dim)?;
    let coeffs = dct2d(x)?;
    idct2d(&coeffs.mul(&mask)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_idct_roundtrip() {
        let img = Tensor::from_vec(
            (0..64).map(|v| ((v * 31) % 17) as f32 * 0.1).collect(),
            &[8, 8],
        )
        .unwrap();
        let coeffs = dct2d(&img).unwrap();
        let back = idct2d(&coeffs).unwrap();
        for (a, b) in back.data().iter().zip(img.data().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn dct_is_orthonormal_energy_preserving() {
        let img =
            Tensor::from_vec((0..36).map(|v| (v as f32 * 0.7).sin()).collect(), &[6, 6]).unwrap();
        let coeffs = dct2d(&img).unwrap();
        let e_spatial: f32 = img.data().iter().map(|v| v * v).sum();
        let e_freq: f32 = coeffs.data().iter().map(|v| v * v).sum();
        assert!((e_spatial - e_freq).abs() / e_spatial < 1e-3);
    }

    #[test]
    fn constant_image_has_only_dc_coefficient() {
        let img = Tensor::full(&[8, 8], 3.0);
        let coeffs = dct2d(&img).unwrap();
        assert!(coeffs.get(&[0, 0]).unwrap().abs() > 1.0);
        for y in 0..8 {
            for x in 0..8 {
                if y != 0 || x != 0 {
                    assert!(coeffs.get(&[y, x]).unwrap().abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn low_frequency_mask_counts() {
        let m = low_frequency_mask(16, 16, 4).unwrap();
        assert_eq!(m.sum(), 16.0);
        assert!(low_frequency_mask(16, 16, 0).is_err());
        assert!(low_frequency_mask(16, 16, 17).is_err());
    }

    #[test]
    fn projection_removes_high_frequency_content() {
        // A checkerboard is almost entirely high-frequency: a dim-2 projection
        // should remove nearly all its energy.
        let n = 16;
        let mut img = Tensor::zeros(&[n, n]);
        for y in 0..n {
            for x in 0..n {
                img.set(&[y, x], if (x + y) % 2 == 0 { 1.0 } else { -1.0 })
                    .unwrap();
            }
        }
        let projected = low_frequency_project(&img, 2).unwrap();
        assert!(projected.l2_norm() < 0.05 * img.l2_norm());
        // A smooth ramp is mostly low-frequency: the same projection keeps
        // most of its energy.
        let mut ramp = Tensor::zeros(&[n, n]);
        for y in 0..n {
            for x in 0..n {
                ramp.set(&[y, x], x as f32 / n as f32).unwrap();
            }
        }
        let projected = low_frequency_project(&ramp, 4).unwrap();
        assert!(projected.l2_norm() > 0.9 * ramp.l2_norm());
    }

    #[test]
    fn projection_is_idempotent() {
        let img =
            Tensor::from_vec((0..64).map(|v| (v as f32 * 0.37).cos()).collect(), &[8, 8]).unwrap();
        let once = low_frequency_project(&img, 3).unwrap();
        let twice = low_frequency_project(&once, 3).unwrap();
        for (a, b) in once.data().iter().zip(twice.data().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
