//! Standard low-pass blur kernels and helpers to apply them to images and
//! activation batches.
//!
//! These are the fixed filters of Section III of the paper: a depthwise
//! convolution of each feature map (or input channel) with a normalized blur
//! kernel.
//!
//! # Fast path
//!
//! The blur itself lives in `blurnet-tensor` behind the
//! [`Backend`](blurnet_tensor::Backend) trait: box and Gaussian kernels are
//! rank-1 (`K = u·vᵀ`), so the backend factors the kernel once and applies
//! two 1-D passes — `O(k)` work per pixel instead of `O(k²)`. This crate
//! keeps its kernel constructors and re-exports thin wrappers
//! ([`blur_image`], [`blur_batch`]) that route through the process-wide
//! [`default_backend`], plus
//! [`blur_batch_2d`] as the local equivalence reference for tests and
//! benchmarks.

use blurnet_tensor::{default_backend, depthwise_conv2d, ConvSpec, Tensor};

use crate::{Result, SignalError};

/// A normalized `k × k` box (mean) blur kernel.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn box_kernel(k: usize) -> Tensor {
    assert!(k > 0, "kernel size must be non-zero");
    Tensor::full(&[k, k], 1.0 / (k * k) as f32)
}

/// A normalized `k × k` Gaussian blur kernel with standard deviation `sigma`.
///
/// # Panics
///
/// Panics if `k == 0` or `sigma <= 0`.
pub fn gaussian_kernel(k: usize, sigma: f32) -> Tensor {
    assert!(k > 0, "kernel size must be non-zero");
    assert!(sigma > 0.0, "sigma must be positive");
    let c = (k as f32 - 1.0) / 2.0;
    let mut kernel = Tensor::zeros(&[k, k]);
    let mut sum = 0.0;
    for y in 0..k {
        for x in 0..k {
            let dy = y as f32 - c;
            let dx = x as f32 - c;
            let v = (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
            kernel.set(&[y, x], v).expect("in-bounds kernel index");
            sum += v;
        }
    }
    kernel.scale(1.0 / sum)
}

/// Expands a single `[K, K]` kernel into per-channel depthwise weights
/// `[C, K, K]` so every channel is filtered identically.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if the kernel is not rank 2 and square.
pub fn depthwise_weights(kernel: &Tensor, channels: usize) -> Result<Tensor> {
    if kernel.shape().rank() != 2 || kernel.dims()[0] != kernel.dims()[1] {
        return Err(SignalError::BadShape(format!(
            "kernel must be a square rank-2 tensor, got {}",
            kernel.shape()
        )));
    }
    let k = kernel.dims()[0];
    let mut data = Vec::with_capacity(channels * k * k);
    for _ in 0..channels {
        data.extend_from_slice(kernel.data());
    }
    Ok(Tensor::from_vec(data, &[channels, k, k])?)
}

/// Attempts a rank-1 factorisation `K = u · vᵀ` of a square kernel.
///
/// Re-exported from `blurnet-tensor`, where the factorisation lives next to
/// the backend blur it gates. Returns `(u, v)` with `u` the column
/// (vertical) factor and `v` the row (horizontal) factor.
pub fn separable_factors(kernel: &Tensor) -> Option<(Vec<f32>, Vec<f32>)> {
    blurnet_tensor::separable_factors(kernel)
}

/// Applies a blur kernel to every channel of a `[C, H, W]` image using
/// "same" padding, through the process-wide compute backend.
///
/// # Errors
///
/// Returns an error if the image is not rank 3 or the kernel is invalid
/// (non-square, or of even extent — "same" padding needs a centre tap).
pub fn blur_image(image: &Tensor, kernel: &Tensor) -> Result<Tensor> {
    if image.shape().rank() != 3 {
        return Err(SignalError::BadShape(format!(
            "expected a [C, H, W] image, got {}",
            image.shape()
        )));
    }
    Ok(default_backend().blur_image(image, kernel)?)
}

/// Applies a blur kernel to every channel of an `[N, C, H, W]` batch using
/// "same" padding, through the process-wide compute backend. Separable
/// (rank-1) kernels — box and Gaussian included — take the backend's
/// two-pass `O(k)`-per-pixel fast path; anything else falls back to the
/// generic depthwise 2-D path.
///
/// # Errors
///
/// Returns an error if the batch is not rank 4 or the kernel is invalid
/// (non-square, or of even extent — "same" padding needs a centre tap).
pub fn blur_batch(batch: &Tensor, kernel: &Tensor) -> Result<Tensor> {
    if batch.shape().rank() != 4 {
        return Err(SignalError::BadShape(format!(
            "expected an [N, C, H, W] batch, got {}",
            batch.shape()
        )));
    }
    Ok(default_backend().blur_batch(batch, kernel)?)
}

/// Generic 2-D blur path: depthwise convolution with the full `k × k`
/// kernel. Used directly for non-separable kernels and kept public as the
/// equivalence reference for the separable fast path.
///
/// # Errors
///
/// Returns an error if the batch is not rank 4 or the kernel is invalid.
pub fn blur_batch_2d(batch: &Tensor, kernel: &Tensor) -> Result<Tensor> {
    if batch.shape().rank() != 4 {
        return Err(SignalError::BadShape(format!(
            "expected an [N, C, H, W] batch, got {}",
            batch.shape()
        )));
    }
    let channels = batch.dims()[1];
    let weights = depthwise_weights(kernel, channels)?;
    let k = kernel.dims()[0];
    let spec = ConvSpec::same(k).map_err(|e| SignalError::BadShape(e.to_string()))?;
    Ok(depthwise_conv2d(batch, &weights, None, spec)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn box_kernel_is_normalized() {
        for k in [3usize, 5, 7] {
            let kernel = box_kernel(k);
            assert_eq!(kernel.dims(), &[k, k]);
            assert!((kernel.sum() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gaussian_kernel_is_normalized_and_peaked_at_centre() {
        let kernel = gaussian_kernel(5, 1.0);
        assert!((kernel.sum() - 1.0).abs() < 1e-5);
        let centre = kernel.get(&[2, 2]).unwrap();
        assert_eq!(kernel.max().unwrap(), centre);
        // Symmetry.
        assert!((kernel.get(&[0, 1]).unwrap() - kernel.get(&[4, 3]).unwrap()).abs() < 1e-6);
    }

    #[test]
    fn box_and_gaussian_kernels_are_separable() {
        for kernel in [box_kernel(3), box_kernel(5), gaussian_kernel(5, 1.2)] {
            let (u, v) = separable_factors(&kernel).expect("rank-1 kernel");
            for (y, &uy) in u.iter().enumerate() {
                for (x, &vx) in v.iter().enumerate() {
                    let got = uy * vx;
                    let want = kernel.get(&[y, x]).unwrap();
                    assert!((got - want).abs() < 1e-6, "{got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn mixed_kernels_are_not_separable() {
        // Identity + corner spike has rank 2.
        let mut kernel = Tensor::zeros(&[3, 3]);
        kernel.set(&[1, 1], 1.0).unwrap();
        kernel.set(&[0, 0], 0.5).unwrap();
        assert!(separable_factors(&kernel).is_none());
        // Non-square tensors are rejected outright.
        assert!(separable_factors(&Tensor::zeros(&[3, 4])).is_none());
        // The zero kernel is (trivially) separable.
        assert!(separable_factors(&Tensor::zeros(&[3, 3])).is_some());
    }

    #[test]
    fn separable_path_matches_2d_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let batch = Tensor::rand_uniform(&[2, 3, 13, 9], -1.0, 1.0, &mut rng);
        for kernel in [box_kernel(3), box_kernel(5), gaussian_kernel(7, 1.5)] {
            let fast = blur_batch(&batch, &kernel).unwrap();
            let slow = blur_batch_2d(&batch, &kernel).unwrap();
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn non_separable_kernel_falls_back_to_2d() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let batch = Tensor::rand_uniform(&[1, 2, 8, 8], -1.0, 1.0, &mut rng);
        let mut kernel = Tensor::zeros(&[3, 3]);
        kernel.set(&[1, 1], 0.6).unwrap();
        kernel.set(&[0, 0], 0.2).unwrap();
        kernel.set(&[2, 2], 0.2).unwrap();
        let via_blur = blur_batch(&batch, &kernel).unwrap();
        let via_2d = blur_batch_2d(&batch, &kernel).unwrap();
        assert_eq!(via_blur, via_2d);
    }

    #[test]
    fn blur_preserves_constant_images_in_the_interior() {
        let image = Tensor::full(&[3, 9, 9], 2.0);
        let blurred = blur_image(&image, &box_kernel(3)).unwrap();
        assert!((blurred.get(&[1, 4, 4]).unwrap() - 2.0).abs() < 1e-5);
        // Zero padding dims the borders.
        assert!(blurred.get(&[1, 0, 0]).unwrap() < 2.0);
    }

    #[test]
    fn blur_suppresses_an_isolated_spike() {
        // The motivating observation of the paper: a localized spike in an
        // otherwise smooth map is strongly attenuated by a 5x5 blur.
        let mut image = Tensor::zeros(&[1, 11, 11]);
        image.set(&[0, 5, 5], 9.0).unwrap();
        let blurred = blur_image(&image, &box_kernel(5)).unwrap();
        let peak_after = blurred.get(&[0, 5, 5]).unwrap();
        assert!(
            peak_after < 0.5,
            "spike should be attenuated, got {peak_after}"
        );
        // Energy is spread, not created.
        assert!(blurred.max().unwrap() <= 9.0 / 25.0 + 1e-5);
    }

    #[test]
    fn larger_kernels_blur_more() {
        let mut image = Tensor::zeros(&[1, 15, 15]);
        image.set(&[0, 7, 7], 1.0).unwrap();
        let b3 = blur_image(&image, &box_kernel(3)).unwrap();
        let b5 = blur_image(&image, &box_kernel(5)).unwrap();
        let b7 = blur_image(&image, &box_kernel(7)).unwrap();
        assert!(b3.max().unwrap() > b5.max().unwrap());
        assert!(b5.max().unwrap() > b7.max().unwrap());
    }

    #[test]
    fn depthwise_weights_repeat_kernel_per_channel() {
        let k = box_kernel(3);
        let w = depthwise_weights(&k, 4).unwrap();
        assert_eq!(w.dims(), &[4, 3, 3]);
        for c in 0..4 {
            assert!((w.channel(c).unwrap().sum() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn shape_errors() {
        let k = box_kernel(3);
        assert!(blur_image(&Tensor::zeros(&[4, 4]), &k).is_err());
        assert!(blur_batch(&Tensor::zeros(&[3, 4, 4]), &k).is_err());
        assert!(depthwise_weights(&Tensor::zeros(&[3]), 2).is_err());
        // Even kernels have no symmetric "same" padding and are rejected.
        assert!(blur_batch(&Tensor::zeros(&[1, 1, 4, 4]), &Tensor::full(&[2, 2], 0.25)).is_err());
    }
}
