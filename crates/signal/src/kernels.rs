//! Standard low-pass blur kernels and helpers to apply them to images and
//! activation batches.
//!
//! These are the fixed filters of Section III of the paper: a depthwise
//! convolution of each feature map (or input channel) with a normalized blur
//! kernel.

use blurnet_tensor::{depthwise_conv2d, ConvSpec, Tensor};

use crate::{Result, SignalError};

/// A normalized `k × k` box (mean) blur kernel.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn box_kernel(k: usize) -> Tensor {
    assert!(k > 0, "kernel size must be non-zero");
    Tensor::full(&[k, k], 1.0 / (k * k) as f32)
}

/// A normalized `k × k` Gaussian blur kernel with standard deviation `sigma`.
///
/// # Panics
///
/// Panics if `k == 0` or `sigma <= 0`.
pub fn gaussian_kernel(k: usize, sigma: f32) -> Tensor {
    assert!(k > 0, "kernel size must be non-zero");
    assert!(sigma > 0.0, "sigma must be positive");
    let c = (k as f32 - 1.0) / 2.0;
    let mut kernel = Tensor::zeros(&[k, k]);
    let mut sum = 0.0;
    for y in 0..k {
        for x in 0..k {
            let dy = y as f32 - c;
            let dx = x as f32 - c;
            let v = (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
            kernel.set(&[y, x], v).expect("in-bounds kernel index");
            sum += v;
        }
    }
    kernel.scale(1.0 / sum)
}

/// Expands a single `[K, K]` kernel into per-channel depthwise weights
/// `[C, K, K]` so every channel is filtered identically.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if the kernel is not rank 2 and square.
pub fn depthwise_weights(kernel: &Tensor, channels: usize) -> Result<Tensor> {
    if kernel.shape().rank() != 2 || kernel.dims()[0] != kernel.dims()[1] {
        return Err(SignalError::BadShape(format!(
            "kernel must be a square rank-2 tensor, got {}",
            kernel.shape()
        )));
    }
    let k = kernel.dims()[0];
    let mut data = Vec::with_capacity(channels * k * k);
    for _ in 0..channels {
        data.extend_from_slice(kernel.data());
    }
    Ok(Tensor::from_vec(data, &[channels, k, k])?)
}

/// Applies a blur kernel to every channel of a `[C, H, W]` image using
/// "same" padding.
///
/// # Errors
///
/// Returns an error if the image is not rank 3 or the kernel is invalid.
pub fn blur_image(image: &Tensor, kernel: &Tensor) -> Result<Tensor> {
    if image.shape().rank() != 3 {
        return Err(SignalError::BadShape(format!(
            "expected a [C, H, W] image, got {}",
            image.shape()
        )));
    }
    let dims = image.dims().to_vec();
    let batch = image.reshape(&[1, dims[0], dims[1], dims[2]])?;
    let blurred = blur_batch(&batch, kernel)?;
    Ok(blurred.reshape(&dims)?)
}

/// Applies a blur kernel to every channel of an `[N, C, H, W]` batch using
/// "same" padding.
///
/// # Errors
///
/// Returns an error if the batch is not rank 4 or the kernel is invalid.
pub fn blur_batch(batch: &Tensor, kernel: &Tensor) -> Result<Tensor> {
    if batch.shape().rank() != 4 {
        return Err(SignalError::BadShape(format!(
            "expected an [N, C, H, W] batch, got {}",
            batch.shape()
        )));
    }
    let channels = batch.dims()[1];
    let weights = depthwise_weights(kernel, channels)?;
    let k = kernel.dims()[0];
    Ok(depthwise_conv2d(batch, &weights, None, ConvSpec::same(k))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_kernel_is_normalized() {
        for k in [3usize, 5, 7] {
            let kernel = box_kernel(k);
            assert_eq!(kernel.dims(), &[k, k]);
            assert!((kernel.sum() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gaussian_kernel_is_normalized_and_peaked_at_centre() {
        let kernel = gaussian_kernel(5, 1.0);
        assert!((kernel.sum() - 1.0).abs() < 1e-5);
        let centre = kernel.get(&[2, 2]).unwrap();
        assert_eq!(kernel.max().unwrap(), centre);
        // Symmetry.
        assert!((kernel.get(&[0, 1]).unwrap() - kernel.get(&[4, 3]).unwrap()).abs() < 1e-6);
    }

    #[test]
    fn blur_preserves_constant_images_in_the_interior() {
        let image = Tensor::full(&[3, 9, 9], 2.0);
        let blurred = blur_image(&image, &box_kernel(3)).unwrap();
        assert!((blurred.get(&[1, 4, 4]).unwrap() - 2.0).abs() < 1e-5);
        // Zero padding dims the borders.
        assert!(blurred.get(&[1, 0, 0]).unwrap() < 2.0);
    }

    #[test]
    fn blur_suppresses_an_isolated_spike() {
        // The motivating observation of the paper: a localized spike in an
        // otherwise smooth map is strongly attenuated by a 5x5 blur.
        let mut image = Tensor::zeros(&[1, 11, 11]);
        image.set(&[0, 5, 5], 9.0).unwrap();
        let blurred = blur_image(&image, &box_kernel(5)).unwrap();
        let peak_after = blurred.get(&[0, 5, 5]).unwrap();
        assert!(peak_after < 0.5, "spike should be attenuated, got {peak_after}");
        // Energy is spread, not created.
        assert!(blurred.max().unwrap() <= 9.0 / 25.0 + 1e-5);
    }

    #[test]
    fn larger_kernels_blur_more() {
        let mut image = Tensor::zeros(&[1, 15, 15]);
        image.set(&[0, 7, 7], 1.0).unwrap();
        let b3 = blur_image(&image, &box_kernel(3)).unwrap();
        let b5 = blur_image(&image, &box_kernel(5)).unwrap();
        let b7 = blur_image(&image, &box_kernel(7)).unwrap();
        assert!(b3.max().unwrap() > b5.max().unwrap());
        assert!(b5.max().unwrap() > b7.max().unwrap());
    }

    #[test]
    fn depthwise_weights_repeat_kernel_per_channel() {
        let k = box_kernel(3);
        let w = depthwise_weights(&k, 4).unwrap();
        assert_eq!(w.dims(), &[4, 3, 3]);
        for c in 0..4 {
            assert!((w.channel(c).unwrap().sum() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn shape_errors() {
        let k = box_kernel(3);
        assert!(blur_image(&Tensor::zeros(&[4, 4]), &k).is_err());
        assert!(blur_batch(&Tensor::zeros(&[3, 4, 4]), &k).is_err());
        assert!(depthwise_weights(&Tensor::zeros(&[3]), 2).is_err());
    }
}
