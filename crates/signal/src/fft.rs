//! 1-D and 2-D discrete Fourier transforms.
//!
//! Power-of-two lengths use an iterative radix-2 Cooley–Tukey FFT; other
//! lengths fall back to a direct DFT, which is fine for the ≤64-pixel
//! feature maps this workspace analyses.

use blurnet_tensor::Tensor;

use crate::{Complex32, Result, SignalError};

fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place radix-2 FFT for power-of-two lengths.
fn fft_radix2(buf: &mut [Complex32], inverse: bool) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * std::f32::consts::PI / len as f32;
        let wlen = Complex32::from_angle(angle);
        let mut i = 0;
        while i < n {
            let mut w = Complex32::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2] * w;
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Direct O(n²) DFT for arbitrary lengths.
fn dft_direct(buf: &[Complex32], inverse: bool) -> Vec<Complex32> {
    let n = buf.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    (0..n)
        .map(|k| {
            let mut acc = Complex32::default();
            for (t, &x) in buf.iter().enumerate() {
                let angle = sign * 2.0 * std::f32::consts::PI * (k * t) as f32 / n as f32;
                acc = acc + x * Complex32::from_angle(angle);
            }
            acc
        })
        .collect()
}

/// 1-D FFT of a complex buffer (not normalized).
pub fn fft1d(buf: &[Complex32]) -> Vec<Complex32> {
    if is_power_of_two(buf.len()) {
        let mut v = buf.to_vec();
        fft_radix2(&mut v, false);
        v
    } else {
        dft_direct(buf, false)
    }
}

/// 1-D inverse FFT of a complex buffer (normalized by `1/n`).
pub fn ifft1d(buf: &[Complex32]) -> Vec<Complex32> {
    let n = buf.len().max(1) as f32;
    let out = if is_power_of_two(buf.len()) {
        let mut v = buf.to_vec();
        fft_radix2(&mut v, true);
        v
    } else {
        dft_direct(buf, true)
    };
    out.into_iter().map(|z| z * (1.0 / n)).collect()
}

fn require_2d(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(SignalError::BadShape(format!(
            "expected a rank-2 tensor, got shape {}",
            t.shape()
        )));
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// 2-D FFT of a real `[H, W]` tensor. Returns row-major complex coefficients.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if the input is not rank 2.
pub fn fft2d(image: &Tensor) -> Result<Vec<Complex32>> {
    let (h, w) = require_2d(image)?;
    let mut grid: Vec<Complex32> = image
        .data()
        .iter()
        .map(|&v| Complex32::new(v, 0.0))
        .collect();
    // Rows.
    for y in 0..h {
        let row = fft1d(&grid[y * w..(y + 1) * w]);
        grid[y * w..(y + 1) * w].copy_from_slice(&row);
    }
    // Columns.
    let mut col = vec![Complex32::default(); h];
    for x in 0..w {
        for y in 0..h {
            col[y] = grid[y * w + x];
        }
        let out = fft1d(&col);
        for y in 0..h {
            grid[y * w + x] = out[y];
        }
    }
    Ok(grid)
}

/// 2-D inverse FFT returning the real part as an `[H, W]` tensor.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if `coeffs.len() != h * w`.
pub fn ifft2d(coeffs: &[Complex32], h: usize, w: usize) -> Result<Tensor> {
    if coeffs.len() != h * w {
        return Err(SignalError::BadShape(format!(
            "expected {} coefficients, got {}",
            h * w,
            coeffs.len()
        )));
    }
    let mut grid = coeffs.to_vec();
    let mut col = vec![Complex32::default(); h];
    for x in 0..w {
        for y in 0..h {
            col[y] = grid[y * w + x];
        }
        let out = ifft1d(&col);
        for y in 0..h {
            grid[y * w + x] = out[y];
        }
    }
    for y in 0..h {
        let row = ifft1d(&grid[y * w..(y + 1) * w]);
        grid[y * w..(y + 1) * w].copy_from_slice(&row);
    }
    Ok(Tensor::from_vec(
        grid.iter().map(|z| z.re).collect(),
        &[h, w],
    )?)
}

/// Magnitude of the 2-D FFT of a real `[H, W]` tensor.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if the input is not rank 2.
pub fn fft2d_magnitude(image: &Tensor) -> Result<Tensor> {
    let (h, w) = require_2d(image)?;
    let coeffs = fft2d(image)?;
    Ok(Tensor::from_vec(
        coeffs.iter().map(|z| z.abs()).collect(),
        &[h, w],
    )?)
}

/// Swaps quadrants so the zero-frequency component sits at the centre,
/// matching the presentation of Figures 1, 2 and 4 in the paper.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if the input is not rank 2.
pub fn fftshift2d(spectrum: &Tensor) -> Result<Tensor> {
    let (h, w) = require_2d(spectrum)?;
    let mut out = Tensor::zeros(&[h, w]);
    let (sh, sw) = (h / 2, w / 2);
    for y in 0..h {
        for x in 0..w {
            let ny = (y + sh) % h;
            let nx = (x + sw) % w;
            let v = spectrum.get(&[y, x])?;
            out.set(&[ny, nx], v)?;
        }
    }
    Ok(out)
}

/// The paper's spectrum presentation: `log(1 + |FFT|)`, shifted so low
/// frequencies are central, then normalized to `[0, 1]`.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] if the input is not rank 2.
pub fn log_magnitude_spectrum(image: &Tensor) -> Result<Tensor> {
    let mag = fft2d_magnitude(image)?;
    let logged = mag.map(|v| (1.0 + v).ln());
    let shifted = fftshift2d(&logged)?;
    let max = shifted.max().unwrap_or(0.0);
    if max > 0.0 {
        Ok(shifted.scale(1.0 / max))
    } else {
        Ok(shifted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_constant_is_impulse_at_dc() {
        let img = Tensor::full(&[8, 8], 2.0);
        let coeffs = fft2d(&img).unwrap();
        assert!((coeffs[0].abs() - 2.0 * 64.0).abs() < 1e-3);
        for z in &coeffs[1..] {
            assert!(z.abs() < 1e-3);
        }
    }

    #[test]
    fn fft_ifft_roundtrip_power_of_two() {
        let img = Tensor::from_vec((0..64).map(|v| (v as f32).sin()).collect(), &[8, 8]).unwrap();
        let coeffs = fft2d(&img).unwrap();
        let back = ifft2d(&coeffs, 8, 8).unwrap();
        for (a, b) in back.data().iter().zip(img.data().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn fft_ifft_roundtrip_non_power_of_two() {
        let img =
            Tensor::from_vec((0..35).map(|v| (v as f32 * 0.3).cos()).collect(), &[5, 7]).unwrap();
        let coeffs = fft2d(&img).unwrap();
        let back = ifft2d(&coeffs, 5, 7).unwrap();
        for (a, b) in back.data().iter().zip(img.data().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let img = Tensor::from_vec(
            (0..256).map(|v| ((v * 7919) % 13) as f32 - 6.0).collect(),
            &[16, 16],
        )
        .unwrap();
        let coeffs = fft2d(&img).unwrap();
        let spatial_energy: f32 = img.data().iter().map(|v| v * v).sum();
        let freq_energy: f32 = coeffs.iter().map(|z| z.abs() * z.abs()).sum::<f32>() / 256.0;
        assert!((spatial_energy - freq_energy).abs() / spatial_energy < 1e-3);
    }

    #[test]
    fn fftshift_moves_dc_to_centre() {
        let img = Tensor::ones(&[8, 8]);
        let mag = fft2d_magnitude(&img).unwrap();
        // DC is at (0,0) before the shift ...
        assert!(mag.get(&[0, 0]).unwrap() > 1.0);
        let shifted = fftshift2d(&mag).unwrap();
        // ... and at (4,4) after.
        assert!(shifted.get(&[4, 4]).unwrap() > 1.0);
        assert!(shifted.get(&[0, 0]).unwrap() < 1e-3);
    }

    #[test]
    fn log_spectrum_is_normalized() {
        let img = Tensor::from_vec((0..64).map(|v| v as f32).collect(), &[8, 8]).unwrap();
        let s = log_magnitude_spectrum(&img).unwrap();
        assert!(s.max().unwrap() <= 1.0 + 1e-6);
        assert!(s.min().unwrap() >= 0.0);
    }

    #[test]
    fn single_tone_appears_at_expected_bin() {
        // A horizontal cosine of frequency 2 cycles across 16 samples shows up
        // in bins (0, 2) and (0, 14).
        let n = 16;
        let mut img = Tensor::zeros(&[n, n]);
        for y in 0..n {
            for x in 0..n {
                let v = (2.0 * std::f32::consts::PI * 2.0 * x as f32 / n as f32).cos();
                img.set(&[y, x], v).unwrap();
            }
        }
        let mag = fft2d_magnitude(&img).unwrap();
        let peak = mag.get(&[0, 2]).unwrap();
        let mirror = mag.get(&[0, 14]).unwrap();
        assert!(peak > 100.0 && mirror > 100.0);
        assert!(mag.get(&[0, 5]).unwrap() < 1.0);
    }

    #[test]
    fn rejects_non_2d_input() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert!(fft2d(&t).is_err());
        assert!(fftshift2d(&t).is_err());
        assert!(ifft2d(&[], 2, 2).is_err());
    }
}
