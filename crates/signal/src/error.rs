use std::fmt;

use blurnet_tensor::TensorError;

/// Errors produced by signal-processing routines.
#[derive(Debug, Clone, PartialEq)]
pub enum SignalError {
    /// A tensor had the wrong rank or extents for the requested transform.
    BadShape(String),
    /// A parameter (kernel size, sigma, mask dimension, …) was invalid.
    BadParameter(String),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::BadShape(msg) => write!(f, "bad shape: {msg}"),
            SignalError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
            SignalError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for SignalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SignalError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SignalError {
    fn from(e: TensorError) -> Self {
        SignalError::Tensor(e)
    }
}
