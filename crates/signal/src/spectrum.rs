//! Frequency-band energy summaries of images and feature maps.
//!
//! The paper's motivation (Figures 1, 2 and 4) rests on *where* in the
//! spectrum the RP2 perturbation injects energy. These helpers reduce a
//! shifted 2-D spectrum to low/high-band energies so the figure benches and
//! tests can make that comparison quantitative.

use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{fft2d_magnitude, fftshift2d, Result, SignalError};

/// Energy split of a 2-D spectrum into a low-frequency disc and the
/// remaining high-frequency band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandEnergy {
    /// Energy (squared magnitude) within the low-frequency disc.
    pub low: f32,
    /// Energy outside the disc.
    pub high: f32,
}

impl BandEnergy {
    /// Total spectral energy.
    pub fn total(&self) -> f32 {
        self.low + self.high
    }

    /// Fraction of the energy in the high band (0 when the map is empty).
    pub fn high_fraction(&self) -> f32 {
        let total = self.total();
        if total > 0.0 {
            self.high / total
        } else {
            0.0
        }
    }
}

/// Computes the low/high band energy of an `[H, W]` spatial map.
///
/// `low_radius_fraction` is the radius of the low-frequency disc as a
/// fraction of the Nyquist radius (0.5 keeps the inner half of the
/// spectrum).
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] for non-rank-2 inputs and
/// [`SignalError::BadParameter`] for a radius fraction outside `(0, 1]`.
pub fn band_energy(map: &Tensor, low_radius_fraction: f32) -> Result<BandEnergy> {
    if !(0.0..=1.0).contains(&low_radius_fraction) || low_radius_fraction == 0.0 {
        return Err(SignalError::BadParameter(format!(
            "low_radius_fraction must lie in (0, 1], got {low_radius_fraction}"
        )));
    }
    let mag = fft2d_magnitude(map)?;
    let shifted = fftshift2d(&mag)?;
    let (h, w) = (shifted.dims()[0], shifted.dims()[1]);
    let (cy, cx) = (h as f32 / 2.0, w as f32 / 2.0);
    let max_radius = cy.min(cx);
    let cutoff = low_radius_fraction * max_radius;
    let mut low = 0.0;
    let mut high = 0.0;
    for y in 0..h {
        for x in 0..w {
            let dy = y as f32 - cy;
            let dx = x as f32 - cx;
            let r = (dy * dy + dx * dx).sqrt();
            let e = shifted.get(&[y, x])?.powi(2);
            if r <= cutoff {
                low += e;
            } else {
                high += e;
            }
        }
    }
    Ok(BandEnergy { low, high })
}

/// Fraction of spectral energy above the given low-frequency radius.
///
/// # Errors
///
/// See [`band_energy`].
pub fn high_frequency_ratio(map: &Tensor, low_radius_fraction: f32) -> Result<f32> {
    Ok(band_energy(map, low_radius_fraction)?.high_fraction())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_map_is_all_low_frequency() {
        let map = Tensor::full(&[16, 16], 1.0);
        let e = band_energy(&map, 0.5).unwrap();
        assert!(e.high < 1e-3);
        assert!(e.low > 1.0);
        assert!(e.high_fraction() < 1e-4);
    }

    #[test]
    fn checkerboard_is_mostly_high_frequency() {
        let n = 16;
        let mut map = Tensor::zeros(&[n, n]);
        for y in 0..n {
            for x in 0..n {
                map.set(&[y, x], if (x + y) % 2 == 0 { 1.0 } else { -1.0 })
                    .unwrap();
            }
        }
        assert!(high_frequency_ratio(&map, 0.5).unwrap() > 0.9);
    }

    #[test]
    fn spike_raises_high_frequency_ratio() {
        // The paper's core observation: adding a localized spike to a smooth
        // map increases its high-frequency energy share.
        let n = 16;
        let mut smooth = Tensor::zeros(&[n, n]);
        for y in 0..n {
            for x in 0..n {
                smooth.set(&[y, x], (x as f32 / n as f32) * 0.5).unwrap();
            }
        }
        let base = high_frequency_ratio(&smooth, 0.5).unwrap();
        let mut spiked = smooth.clone();
        spiked.set(&[8, 8], 4.0).unwrap();
        spiked.set(&[8, 9], 4.0).unwrap();
        let after = high_frequency_ratio(&spiked, 0.5).unwrap();
        assert!(after > base, "{after} should exceed {base}");
    }

    #[test]
    fn parameter_validation() {
        let map = Tensor::zeros(&[8, 8]);
        assert!(band_energy(&map, 0.0).is_err());
        assert!(band_energy(&map, 1.5).is_err());
        assert!(band_energy(&Tensor::zeros(&[8]), 0.5).is_err());
    }

    #[test]
    fn zero_map_has_zero_fraction() {
        let map = Tensor::zeros(&[8, 8]);
        let e = band_energy(&map, 0.5).unwrap();
        assert_eq!(e.total(), 0.0);
        assert_eq!(e.high_fraction(), 0.0);
    }
}
