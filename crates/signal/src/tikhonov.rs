//! Generalized Tikhonov regularization operators.
//!
//! The paper (Eq. 5–7) penalizes first-layer feature maps `F` with
//! `‖L · F‖²` for two choices of `L`:
//!
//! * `L_hf = I − L_avg`, where `L_avg` is a moving-average (smoothing)
//!   matrix — this extracts and penalizes high-frequency content
//!   (the `Tik_hf` defense);
//! * `L_diff^+`, the pseudoinverse of a difference (derivative) matrix —
//!   a smoothing operator following Reichel & Ye (the `Tik_pseudo`
//!   defense).
//!
//! The paper's `L_diff` is rectangular; to keep the quadratic form
//! well-typed against square `H × W` feature maps we use the square
//! forward-difference matrix (last row zero) and a ridge-regularized
//! pseudoinverse. This preserves the operator's low-pass character, which
//! is the property the defense and the adaptive attack both rely on.

use blurnet_tensor::{matmul, matmul_transpose_a, Tensor};
use serde::{Deserialize, Serialize};

use crate::{Result, SignalError};

/// The `n × n` moving-average matrix `L_avg` with the given (odd) window.
///
/// Row `i` averages the entries whose index lies within the window centred
/// at `i`, clamped at the borders.
///
/// # Errors
///
/// Returns [`SignalError::BadParameter`] if `n == 0`, the window is even,
/// zero, or larger than `n`.
pub fn moving_average_matrix(n: usize, window: usize) -> Result<Tensor> {
    if n == 0 || window == 0 || window.is_multiple_of(2) || window > n {
        return Err(SignalError::BadParameter(format!(
            "moving average needs 0 < odd window <= n, got window {window}, n {n}"
        )));
    }
    let half = window / 2;
    let mut m = Tensor::zeros(&[n, n]);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half).min(n - 1);
        let count = (hi - lo + 1) as f32;
        for j in lo..=hi {
            m.set(&[i, j], 1.0 / count)?;
        }
    }
    Ok(m)
}

/// The high-frequency extraction operator `L_hf = I − L_avg` (Eq. 6).
///
/// # Errors
///
/// Propagates the validation errors of [`moving_average_matrix`].
pub fn high_frequency_operator(n: usize, window: usize) -> Result<Tensor> {
    let avg = moving_average_matrix(n, window)?;
    let mut out = avg.scale(-1.0);
    for i in 0..n {
        let v = out.get(&[i, i])?;
        out.set(&[i, i], v + 1.0)?;
    }
    Ok(out)
}

/// The `n × n` forward-difference matrix (last row zero).
///
/// # Errors
///
/// Returns [`SignalError::BadParameter`] if `n < 2`.
pub fn difference_matrix(n: usize) -> Result<Tensor> {
    if n < 2 {
        return Err(SignalError::BadParameter(
            "difference matrix needs n >= 2".into(),
        ));
    }
    let mut m = Tensor::zeros(&[n, n]);
    for i in 0..n - 1 {
        m.set(&[i, i], -1.0)?;
        m.set(&[i, i + 1], 1.0)?;
    }
    Ok(m)
}

/// Inverts a square matrix with Gauss–Jordan elimination and partial
/// pivoting.
///
/// # Errors
///
/// Returns [`SignalError::BadShape`] for non-square inputs and
/// [`SignalError::BadParameter`] if the matrix is (numerically) singular.
pub fn invert(matrix: &Tensor) -> Result<Tensor> {
    if matrix.shape().rank() != 2 || matrix.dims()[0] != matrix.dims()[1] {
        return Err(SignalError::BadShape(format!(
            "matrix inverse needs a square rank-2 tensor, got {}",
            matrix.shape()
        )));
    }
    let n = matrix.dims()[0];
    // Augmented [A | I] representation.
    let mut a: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            let mut row = vec![0.0f32; 2 * n];
            row[..n].copy_from_slice(&matrix.data()[i * n..(i + 1) * n]);
            row[n + i] = 1.0;
            row
        })
        .collect();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a[r1][col]
                    .abs()
                    .partial_cmp(&a[r2][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty pivot range");
        if a[pivot_row][col].abs() < 1e-8 {
            return Err(SignalError::BadParameter(
                "matrix is singular to working precision".into(),
            ));
        }
        a.swap(col, pivot_row);
        let pivot = a[col][col];
        for v in a[col].iter_mut() {
            *v /= pivot;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row][col];
            if factor == 0.0 {
                continue;
            }
            let pivot_row = a[col].clone();
            for (entry, &pivot) in a[row].iter_mut().zip(pivot_row.iter()) {
                *entry -= factor * pivot;
            }
        }
    }
    let mut out = Vec::with_capacity(n * n);
    for row in &a {
        out.extend_from_slice(&row[n..]);
    }
    Ok(Tensor::from_vec(out, &[n, n])?)
}

/// Ridge-regularized (Tikhonov-damped) pseudoinverse
/// `A⁺ ≈ (AᵀA + εI)⁻¹ Aᵀ` of a square matrix.
///
/// # Errors
///
/// Returns an error for non-square inputs or if the damped normal matrix is
/// singular (which cannot happen for `eps > 0`).
pub fn ridge_pseudoinverse(matrix: &Tensor, eps: f32) -> Result<Tensor> {
    if matrix.shape().rank() != 2 || matrix.dims()[0] != matrix.dims()[1] {
        return Err(SignalError::BadShape(format!(
            "pseudoinverse needs a square rank-2 tensor, got {}",
            matrix.shape()
        )));
    }
    let n = matrix.dims()[0];
    let mut normal = matmul_transpose_a(matrix, matrix)?;
    for i in 0..n {
        let v = normal.get(&[i, i])?;
        normal.set(&[i, i], v + eps)?;
    }
    let inv = invert(&normal)?;
    // (AᵀA + εI)⁻¹ Aᵀ — compute as inv · Aᵀ.
    let mut at = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            at.set(&[j, i], matrix.get(&[i, j])?)?;
        }
    }
    Ok(matmul(&inv, &at)?)
}

/// A quadratic feature-map penalty `‖L · F‖²_F` with its gradient
/// `2 LᵀL F`, applied column-wise to `[H, W]` maps whose height matches the
/// operator size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OperatorPenalty {
    operator: Tensor,
    gram: Tensor,
}

impl OperatorPenalty {
    /// Wraps a square operator matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::BadShape`] if the operator is not a square
    /// rank-2 tensor.
    pub fn new(operator: Tensor) -> Result<Self> {
        if operator.shape().rank() != 2 || operator.dims()[0] != operator.dims()[1] {
            return Err(SignalError::BadShape(format!(
                "operator must be square rank-2, got {}",
                operator.shape()
            )));
        }
        let gram = matmul_transpose_a(&operator, &operator)?;
        Ok(OperatorPenalty { operator, gram })
    }

    /// The `Tik_hf` operator penalty of Eq. 6 for `n × n` feature maps.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`high_frequency_operator`].
    pub fn high_frequency(n: usize, window: usize) -> Result<Self> {
        Self::new(high_frequency_operator(n, window)?)
    }

    /// The `Tik_pseudo` operator penalty of Eq. 7 for `n × n` feature maps.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`difference_matrix`] and
    /// [`ridge_pseudoinverse`].
    pub fn pseudo_difference(n: usize, eps: f32) -> Result<Self> {
        Self::new(ridge_pseudoinverse(&difference_matrix(n)?, eps)?)
    }

    /// The operator matrix `L`.
    pub fn operator(&self) -> &Tensor {
        &self.operator
    }

    /// Size `n` of the operator (feature maps must have height `n`).
    pub fn size(&self) -> usize {
        self.operator.dims()[0]
    }

    /// Penalty value `‖L · F‖²_F` for an `[H, W]` map with `H == n`.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::BadShape`] if the map height does not match.
    pub fn value(&self, map: &Tensor) -> Result<f32> {
        let lf = self.apply(map)?;
        Ok(lf.data().iter().map(|v| v * v).sum())
    }

    /// Gradient `2 LᵀL F` of [`Self::value`] with respect to the map.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::BadShape`] if the map height does not match.
    pub fn grad(&self, map: &Tensor) -> Result<Tensor> {
        self.check(map)?;
        Ok(matmul(&self.gram, map)?.scale(2.0))
    }

    /// Applies the operator: `L · F`.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::BadShape`] if the map height does not match.
    pub fn apply(&self, map: &Tensor) -> Result<Tensor> {
        self.check(map)?;
        Ok(matmul(&self.operator, map)?)
    }

    fn check(&self, map: &Tensor) -> Result<()> {
        if map.shape().rank() != 2 || map.dims()[0] != self.size() {
            return Err(SignalError::BadShape(format!(
                "map {} incompatible with operator size {}",
                map.shape(),
                self.size()
            )));
        }
        Ok(())
    }

    /// Mean penalty over every map of an `[N, C, H, W]` batch
    /// (`1/(N·K) Σ ‖L · F‖²`, Eq. 6–7).
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::BadShape`] on rank or extent mismatches.
    pub fn value_batch(&self, batch: &Tensor) -> Result<f32> {
        let (n, c, h, w) = batch_dims(batch, self.size())?;
        let d = batch.data();
        let mut acc = 0.0;
        for i in 0..n * c {
            let map = Tensor::from_vec(d[i * h * w..(i + 1) * h * w].to_vec(), &[h, w])?;
            acc += self.value(&map)?;
        }
        Ok(acc / (n * c) as f32)
    }

    /// Gradient of [`Self::value_batch`] with respect to the batch.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::BadShape`] on rank or extent mismatches.
    pub fn grad_batch(&self, batch: &Tensor) -> Result<Tensor> {
        let (n, c, h, w) = batch_dims(batch, self.size())?;
        let d = batch.data();
        let scale = 1.0 / (n * c) as f32;
        let mut out = Vec::with_capacity(batch.len());
        for i in 0..n * c {
            let map = Tensor::from_vec(d[i * h * w..(i + 1) * h * w].to_vec(), &[h, w])?;
            let g = self.grad(&map)?;
            out.extend(g.data().iter().map(|v| v * scale));
        }
        Ok(Tensor::from_vec(out, &[n, c, h, w])?)
    }
}

fn batch_dims(batch: &Tensor, expected_h: usize) -> Result<(usize, usize, usize, usize)> {
    if batch.shape().rank() != 4 {
        return Err(SignalError::BadShape(format!(
            "expected an [N, C, H, W] batch, got {}",
            batch.shape()
        )));
    }
    let d = batch.dims();
    if d[2] != expected_h {
        return Err(SignalError::BadShape(format!(
            "batch height {} does not match operator size {expected_h}",
            d[2]
        )));
    }
    Ok((d[0], d[1], d[2], d[3]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_rows_sum_to_one() {
        let m = moving_average_matrix(8, 3).unwrap();
        for i in 0..8 {
            let row_sum: f32 = (0..8).map(|j| m.get(&[i, j]).unwrap()).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        assert!(moving_average_matrix(8, 2).is_err());
        assert!(moving_average_matrix(8, 9).is_err());
    }

    #[test]
    fn hf_operator_annihilates_constants() {
        let lhf = high_frequency_operator(8, 3).unwrap();
        let constant = Tensor::full(&[8, 1], 5.0);
        let out = matmul(&lhf, &constant).unwrap();
        assert!(out.linf_norm() < 1e-5);
    }

    #[test]
    fn hf_operator_passes_alternating_signal() {
        let lhf = high_frequency_operator(8, 3).unwrap();
        let alternating = Tensor::from_vec(
            (0..8)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
            &[8, 1],
        )
        .unwrap();
        let out = matmul(&lhf, &alternating).unwrap();
        // High-frequency content passes through mostly unattenuated.
        assert!(out.l2_norm() > 0.8 * alternating.l2_norm());
    }

    #[test]
    fn invert_recovers_identity() {
        let m = Tensor::from_vec(vec![4.0, 7.0, 2.0, 6.0], &[2, 2]).unwrap();
        let inv = invert(&m).unwrap();
        let prod = matmul(&m, &inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(&[i, j]).unwrap() - expected).abs() < 1e-4);
            }
        }
        assert!(invert(&Tensor::zeros(&[3, 3])).is_err());
        assert!(invert(&Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn pseudoinverse_acts_as_right_inverse_on_row_space() {
        let n = 8;
        let l = difference_matrix(n).unwrap();
        let pinv = ridge_pseudoinverse(&l, 1e-4).unwrap();
        // L · L⁺ · L ≈ L (Moore-Penrose property, up to ridge damping).
        let lpl = matmul(&matmul(&l, &pinv).unwrap(), &l).unwrap();
        let diff = lpl.sub(&l).unwrap();
        assert!(diff.linf_norm() < 5e-2, "residual {}", diff.linf_norm());
    }

    #[test]
    fn pseudoinverse_is_smoothing() {
        // Applying L_diff^+ to an alternating (high-frequency) signal yields a
        // much smaller response than applying it to a smooth ramp of equal norm.
        let n = 16;
        let pinv = ridge_pseudoinverse(&difference_matrix(n).unwrap(), 1e-3).unwrap();
        let alternating = Tensor::from_vec(
            (0..n)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
            &[n, 1],
        )
        .unwrap();
        let hi = matmul(&pinv, &alternating).unwrap().l2_norm();
        let ramp =
            Tensor::from_vec((0..n).map(|i| i as f32 / n as f32).collect(), &[n, 1]).unwrap();
        let ramp = ramp.scale(alternating.l2_norm() / ramp.l2_norm());
        let lo = matmul(&pinv, &ramp).unwrap().l2_norm();
        assert!(lo > 2.0 * hi, "low-frequency response {lo} vs high {hi}");
    }

    #[test]
    fn penalty_gradient_matches_finite_differences() {
        let pen = OperatorPenalty::high_frequency(6, 3).unwrap();
        let map = Tensor::from_vec(
            (0..36).map(|v| ((v * 11) % 5) as f32 * 0.2).collect(),
            &[6, 6],
        )
        .unwrap();
        let grad = pen.grad(&map).unwrap();
        let eps = 1e-3f32;
        for &idx in &[0usize, 8, 17, 30] {
            let mut plus = map.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = map.clone();
            minus.data_mut()[idx] -= eps;
            let numeric = (pen.value(&plus).unwrap() - pen.value(&minus).unwrap()) / (2.0 * eps);
            assert!((numeric - grad.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn hf_penalty_prefers_smooth_maps() {
        let pen = OperatorPenalty::high_frequency(8, 3).unwrap();
        let mut smooth = Tensor::zeros(&[8, 8]);
        for y in 0..8 {
            for x in 0..8 {
                smooth.set(&[y, x], (x + y) as f32 * 0.1).unwrap();
            }
        }
        let mut spiky = smooth.clone();
        spiky.set(&[4, 4], 5.0).unwrap();
        assert!(pen.value(&spiky).unwrap() > 10.0 * pen.value(&smooth).unwrap().max(1e-6));
    }

    #[test]
    fn batch_penalty_matches_manual_average() {
        let pen = OperatorPenalty::high_frequency(4, 3).unwrap();
        let mut batch = Tensor::zeros(&[1, 2, 4, 4]);
        batch.set(&[0, 0, 2, 2], 1.0).unwrap();
        batch.set(&[0, 1, 1, 1], 2.0).unwrap();
        let m0 = batch.batch_item(0).unwrap().channel(0).unwrap();
        let m1 = batch.batch_item(0).unwrap().channel(1).unwrap();
        let expected = (pen.value(&m0).unwrap() + pen.value(&m1).unwrap()) / 2.0;
        assert!((pen.value_batch(&batch).unwrap() - expected).abs() < 1e-5);
        let g = pen.grad_batch(&batch).unwrap();
        assert_eq!(g.dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn shape_validation() {
        let pen = OperatorPenalty::high_frequency(8, 3).unwrap();
        assert!(pen.value(&Tensor::zeros(&[4, 8])).is_err());
        assert!(pen.value_batch(&Tensor::zeros(&[1, 1, 4, 8])).is_err());
        assert!(OperatorPenalty::new(Tensor::zeros(&[3, 4])).is_err());
        assert!(difference_matrix(1).is_err());
    }
}
