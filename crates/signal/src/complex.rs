use serde::{Deserialize, Serialize};

/// A minimal single-precision complex number used by the FFT routines.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// The complex number `e^{iθ}`.
    pub fn from_angle(theta: f32) -> Self {
        Complex32 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f32 {
        (self.re * self.re + self.im * self.im).sqrt()
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex32 {
            re: self.re,
            im: -self.im,
        }
    }
}

impl std::ops::Add for Complex32 {
    type Output = Complex32;
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex32 {
    type Output = Complex32;
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex32 {
    type Output = Complex32;
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Mul<f32> for Complex32 {
    type Output = Complex32;
    fn mul(self, rhs: f32) -> Complex32 {
        Complex32::new(self.re * rhs, self.im * rhs)
    }
}

impl std::fmt::Display for Complex32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(3.0, -1.0);
        assert_eq!(a + b, Complex32::new(4.0, 1.0));
        assert_eq!(a - b, Complex32::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex32::new(5.0, 5.0));
        assert_eq!(a * 2.0, Complex32::new(2.0, 4.0));
    }

    #[test]
    fn abs_and_conj() {
        let z = Complex32::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-6);
        assert_eq!(z.conj(), Complex32::new(3.0, -4.0));
    }

    #[test]
    fn unit_circle() {
        let z = Complex32::from_angle(std::f32::consts::PI / 2.0);
        assert!(z.re.abs() < 1e-6);
        assert!((z.im - 1.0).abs() < 1e-6);
        assert!((z.abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex32::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex32::new(1.0, -2.0).to_string(), "1-2i");
    }
}
