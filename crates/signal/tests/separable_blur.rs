//! Equivalence tests pinning the separable two-pass blur to the generic 2-D
//! depthwise path on ChaCha8-seeded random batches — the numeric guarantee
//! behind the `substrate_micro` speedup claims.

use blurnet_signal::{blur_batch, blur_batch_2d, box_kernel, gaussian_kernel, separable_factors};
use blurnet_tensor::Tensor;
use blurnet_test_support::uniform_batch;

fn assert_close(fast: &Tensor, slow: &Tensor, context: &str) {
    assert_eq!(fast.dims(), slow.dims(), "{context}");
    for (a, b) in fast.data().iter().zip(slow.data().iter()) {
        assert!((a - b).abs() < 1e-5, "{context}: {a} vs {b}");
    }
}

#[test]
fn separable_blur_matches_2d_on_random_batches() {
    for seed in 0u64..8 {
        // Odd and even extents, single-pixel edge cases, non-square planes.
        for (case, &(n, c, h, w)) in [
            (1usize, 1usize, 1usize, 1usize),
            (2, 3, 7, 5),
            (3, 2, 9, 16),
        ]
        .iter()
        .enumerate()
        {
            let batch = uniform_batch(&[n, c, h, w], -2.0, 2.0, seed ^ (case as u64) << 32);
            for k in [1usize, 3, 5, 7] {
                if k > h + 2 * (k / 2) || k > w + 2 * (k / 2) {
                    continue;
                }
                let kernel = box_kernel(k);
                assert_close(
                    &blur_batch(&batch, &kernel).unwrap(),
                    &blur_batch_2d(&batch, &kernel).unwrap(),
                    &format!("box k={k} seed={seed} dims=({n},{c},{h},{w})"),
                );
            }
            for &sigma in &[0.4f32, 1.0, 2.5] {
                let kernel = gaussian_kernel(5, sigma);
                assert!(separable_factors(&kernel).is_some(), "gaussian must factor");
                assert_close(
                    &blur_batch(&batch, &kernel).unwrap(),
                    &blur_batch_2d(&batch, &kernel).unwrap(),
                    &format!("gaussian sigma={sigma} seed={seed}"),
                );
            }
        }
    }
}

#[test]
fn blur_batch_of_paper_shape_matches_2d() {
    // The acceptance-criteria shape: a 5×5 blur of an [8, 16, 32, 32] batch.
    let batch = uniform_batch(&[8, 16, 32, 32], 0.0, 1.0, 42);
    let kernel = box_kernel(5);
    assert_close(
        &blur_batch(&batch, &kernel).unwrap(),
        &blur_batch_2d(&batch, &kernel).unwrap(),
        "paper-shape 5x5 blur",
    );
}
