use std::fmt;

use blurnet_attacks::AttackError;
use blurnet_data::DataError;
use blurnet_nn::NnError;
use blurnet_signal::SignalError;
use blurnet_tensor::TensorError;

/// Errors produced while building, training or evaluating defenses.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenseError {
    /// A defense or training configuration was invalid.
    BadConfig(String),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying network operation failed.
    Network(NnError),
    /// An underlying signal-processing operation failed.
    Signal(SignalError),
    /// An underlying dataset operation failed.
    Data(DataError),
    /// An underlying attack (used inside adversarial training) failed.
    Attack(AttackError),
}

impl fmt::Display for DefenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseError::BadConfig(msg) => write!(f, "bad defense configuration: {msg}"),
            DefenseError::Tensor(e) => write!(f, "tensor error: {e}"),
            DefenseError::Network(e) => write!(f, "network error: {e}"),
            DefenseError::Signal(e) => write!(f, "signal error: {e}"),
            DefenseError::Data(e) => write!(f, "data error: {e}"),
            DefenseError::Attack(e) => write!(f, "attack error: {e}"),
        }
    }
}

impl std::error::Error for DefenseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DefenseError::Tensor(e) => Some(e),
            DefenseError::Network(e) => Some(e),
            DefenseError::Signal(e) => Some(e),
            DefenseError::Data(e) => Some(e),
            DefenseError::Attack(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DefenseError {
    fn from(e: TensorError) -> Self {
        DefenseError::Tensor(e)
    }
}

impl From<NnError> for DefenseError {
    fn from(e: NnError) -> Self {
        DefenseError::Network(e)
    }
}

impl From<SignalError> for DefenseError {
    fn from(e: SignalError) -> Self {
        DefenseError::Signal(e)
    }
}

impl From<DataError> for DefenseError {
    fn from(e: DataError) -> Self {
        DefenseError::Data(e)
    }
}

impl From<AttackError> for DefenseError {
    fn from(e: AttackError) -> Self {
        DefenseError::Attack(e)
    }
}
