//! A thread-safe cache of trained model variants.
//!
//! Every experiment grid needs the same handful of trained
//! [`DefendedModel`] variants — Table II alone uses fifteen, and the
//! adaptive/PGD/figure cells reuse most of them. The [`VariantCache`] is
//! the one store those variants live in: it hands out cheap [`Arc`] clones
//! for read-only sharing across concurrently executing evaluation cells,
//! while callers that need the `&mut` evaluation paths (white-box attacks,
//! randomized smoothing) deep-clone the `DefendedModel` per cell.
//!
//! The cache itself never trains: callers decide *when* a variant is
//! built (the experiment scheduler trains each variant in a dedicated DAG
//! node so every label is trained exactly once per run; the sequential
//! `ModelZoo` trains on first request). This keeps the locking trivial —
//! the mutex only guards map operations, never a training run.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::model::DefendedModel;

/// Thread-safe map from defense label to its trained model variant.
#[derive(Debug, Default)]
pub struct VariantCache {
    inner: Mutex<HashMap<String, Arc<DefendedModel>>>,
}

impl VariantCache {
    /// An empty cache.
    pub fn new() -> Self {
        VariantCache::default()
    }

    /// The cached variant for `label`, if any (an `Arc` clone — cheap).
    pub fn get(&self, label: &str) -> Option<Arc<DefendedModel>> {
        self.inner
            .lock()
            .expect("variant cache lock poisoned")
            .get(label)
            .cloned()
    }

    /// Stores `model` under its defense label and returns the shared
    /// handle. If the label is already present, the **existing** variant
    /// wins and is returned — concurrent duplicate training (which the
    /// scheduler's DAG rules out anyway) can therefore never make two
    /// cells see different weights for the same label.
    pub fn insert(&self, model: DefendedModel) -> Arc<DefendedModel> {
        let label = model.defense().label();
        let mut map = self.inner.lock().expect("variant cache lock poisoned");
        map.entry(label).or_insert_with(|| Arc::new(model)).clone()
    }

    /// Number of cached variants.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("variant cache lock poisoned")
            .len()
    }

    /// Whether the cache holds no variants.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached defense labels, sorted (for deterministic reporting).
    pub fn labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self
            .inner
            .lock()
            .expect("variant cache lock poisoned")
            .keys()
            .cloned()
            .collect();
        labels.sort();
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainingReport;
    use crate::DefenseKind;
    use blurnet_nn::LisaCnn;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model(defense: DefenseKind, seed: u64) -> DefendedModel {
        let builder = LisaCnn::new(18).input_size(16).conv1_filters(4);
        let net = builder.build(&mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        DefendedModel::new(
            net,
            defense,
            builder.config().clone(),
            TrainingReport {
                epoch_losses: vec![],
                test_accuracy: 0.0,
            },
        )
    }

    #[test]
    fn first_insert_wins_per_label() {
        let cache = VariantCache::new();
        assert!(cache.is_empty());
        assert!(cache.get("Baseline").is_none());
        let first = cache.insert(model(DefenseKind::Baseline, 1));
        let second = cache.insert(model(DefenseKind::Baseline, 2));
        assert_eq!(cache.len(), 1);
        // Same Arc: the duplicate insert returned the existing variant.
        assert!(Arc::ptr_eq(&first, &second));
        let fetched = cache.get("Baseline").unwrap();
        assert_eq!(
            fetched.network().to_bytes().unwrap(),
            first.network().to_bytes().unwrap()
        );
    }

    #[test]
    fn labels_are_sorted_and_complete() {
        let cache = VariantCache::new();
        cache.insert(model(DefenseKind::InputFilter { kernel: 3 }, 1));
        cache.insert(model(DefenseKind::Baseline, 1));
        let labels = cache.labels();
        assert_eq!(labels.len(), 2);
        assert!(labels.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn shared_handles_see_one_set_of_weights() {
        let cache = VariantCache::new();
        cache.insert(model(DefenseKind::Baseline, 7));
        let a = cache.get("Baseline").unwrap();
        let b = cache.get("Baseline").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Per-cell deep clones start from identical state.
        let ca: DefendedModel = (*a).clone();
        let cb: DefendedModel = (*b).clone();
        assert_eq!(
            ca.network().to_bytes().unwrap(),
            cb.network().to_bytes().unwrap()
        );
    }
}
