//! Training loop that realizes every defense's training regime.
//!
//! All models share the paper's recipe — Adam with β₁ = 0.9, β₂ = 0.999,
//! ε = 1e-8 on softmax cross-entropy — and differ only in:
//!
//! * the architecture (fixed or trainable depthwise filter layer),
//! * input preprocessing (input blur, Gaussian augmentation, PGD examples
//!   for adversarial training), and
//! * extra loss terms (L∞ / TV / Tikhonov regularizers).

use blurnet_attacks::{PgdAttack, PgdConfig};
use blurnet_data::SignDataset;
use blurnet_nn::{softmax_cross_entropy, Adam, LisaCnn, LisaCnnConfig, Optimizer, Sequential};
use blurnet_signal::box_kernel;
use blurnet_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::augment::gaussian_augment;
use crate::filtering::filter_images;
use crate::model::{DefendedModel, TrainingReport};
use crate::regularizers::FeatureRegularizer;
use crate::{DefenseError, DefenseKind, Result};

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Seed controlling weight initialization, shuffling and augmentation.
    pub seed: u64,
}

impl TrainConfig {
    /// A configuration small enough for unit tests.
    pub fn tiny() -> Self {
        TrainConfig {
            epochs: 2,
            batch_size: 16,
            learning_rate: 2e-3,
            seed: 7,
        }
    }

    /// The default configuration used by the reproduced experiments.
    pub fn standard() -> Self {
        TrainConfig {
            epochs: 12,
            batch_size: 32,
            learning_rate: 1.5e-3,
            seed: 7,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(DefenseError::BadConfig(
                "epochs and batch size must be non-zero".into(),
            ));
        }
        if self.learning_rate <= 0.0 {
            return Err(DefenseError::BadConfig(
                "learning rate must be positive".into(),
            ));
        }
        Ok(())
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::standard()
    }
}

/// Builds the architecture a defense requires, without training it.
///
/// # Errors
///
/// Returns an error for invalid defense parameters.
pub fn build_architecture(
    defense: &DefenseKind,
    image_size: usize,
    num_classes: usize,
    seed: u64,
) -> Result<(Sequential, LisaCnnConfig)> {
    defense.validate()?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let base = LisaCnn::new(num_classes).input_size(image_size);
    let builder = match defense {
        DefenseKind::FeatureFilter { kernel } => base.with_fixed_blur(box_kernel(*kernel)),
        DefenseKind::DepthwiseLinf { kernel, .. } => base.with_trainable_depthwise(*kernel),
        _ => base,
    };
    let net = builder.build(&mut rng)?;
    let arch = builder.config().clone();
    Ok((net, arch))
}

/// Trains a defended model on the dataset with the given configuration.
///
/// # Errors
///
/// Returns an error for invalid defense or training parameters, or if a
/// numerical step fails.
pub fn train_defended_model(
    defense: &DefenseKind,
    dataset: &SignDataset,
    config: &TrainConfig,
) -> Result<DefendedModel> {
    config.validate()?;
    let (mut net, arch) = build_architecture(
        defense,
        dataset.image_size(),
        dataset.num_classes(),
        config.seed,
    )?;
    let regularizer = FeatureRegularizer::from_defense(defense, &arch)?;
    let mut optimizer = Adam::new(config.learning_rate)?;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(1));

    // Adversarial training generates PGD examples on the fly.
    let pgd = match defense {
        DefenseKind::AdversarialTraining {
            epsilon,
            step_size,
            steps,
        } => Some(PgdAttack::new(PgdConfig {
            epsilon: *epsilon,
            step_size: *step_size,
            steps: *steps,
            random_start: true,
        })?),
        _ => None,
    };

    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for _epoch in 0..config.epochs {
        let mut epoch_loss = 0.0f32;
        let mut batch_count = 0usize;
        for batch in dataset.train_batches(config.batch_size, &mut rng)? {
            let images = prepare_batch_inputs(
                defense,
                &batch.images,
                &batch.labels,
                &net,
                pgd.as_ref(),
                &mut rng,
            )?;

            net.zero_grads();
            let (loss_value, d_logits, injections) = if regularizer.needs_activations() {
                let (logits, activations) = net.forward_collect(&images, true)?;
                let (ce, d_logits) = softmax_cross_entropy(&logits, &batch.labels)?;
                let (reg_value, injections) = regularizer.apply(&mut net, &activations)?;
                (ce + reg_value, d_logits, injections)
            } else {
                let logits = net.forward(&images, true)?;
                let (ce, d_logits) = softmax_cross_entropy(&logits, &batch.labels)?;
                // The L∞ regularizer works on weights, not activations.
                let (reg_value, injections) = regularizer.apply(&mut net, &[])?;
                (ce + reg_value, d_logits, injections)
            };
            net.backward_with_injection(&d_logits, &injections)?;
            let mut pairs = net.param_grad_pairs();
            optimizer.step(&mut pairs)?;

            epoch_loss += loss_value;
            batch_count += 1;
        }
        epoch_losses.push(epoch_loss / batch_count.max(1) as f32);
    }

    // Legitimate accuracy through the defended prediction path.
    let report = TrainingReport {
        epoch_losses,
        test_accuracy: 0.0,
    };
    let mut model = DefendedModel::new(net, defense.clone(), arch, report);
    let test_accuracy = model.accuracy(&dataset.test_batch()?)?;
    let report = TrainingReport {
        epoch_losses: model.training_report().epoch_losses.clone(),
        test_accuracy,
    };
    Ok(DefendedModel::new(
        model.network().clone(),
        defense.clone(),
        model.arch().clone(),
        report,
    ))
}

/// Applies the defense's training-time input pipeline to one batch.
fn prepare_batch_inputs(
    defense: &DefenseKind,
    images: &Tensor,
    labels: &[usize],
    net: &Sequential,
    pgd: Option<&PgdAttack>,
    rng: &mut ChaCha8Rng,
) -> Result<Tensor> {
    match defense {
        DefenseKind::InputFilter { kernel } => filter_images(images, *kernel),
        DefenseKind::GaussianAugmentation { sigma }
        | DefenseKind::RandomizedSmoothing { sigma, .. } => gaussian_augment(images, *sigma, rng),
        DefenseKind::AdversarialTraining { .. } => {
            let attack = pgd.expect("PGD attack configured for adversarial training");
            // Half the batch is replaced with adversarial examples (the
            // paper trains 50% clean / 50% adversarial). The even-index
            // half is gathered into one sub-batch so every PGD step runs
            // as a single batched gradient pass through the immutable
            // engine, then scattered back over the clean images.
            let n = images.dims()[0];
            let adv_indices: Vec<usize> = (0..n).step_by(2).collect();
            let sub_images: Vec<Tensor> = adv_indices
                .iter()
                .map(|&i| images.batch_item(i))
                .collect::<std::result::Result<_, _>>()?;
            let sub_labels: Vec<usize> = adv_indices.iter().map(|&i| labels[i]).collect();
            let adversarial = attack.perturb(net, &Tensor::stack(&sub_images)?, &sub_labels)?;
            let mut out = images.clone();
            let plane = images.len() / n;
            for (j, &i) in adv_indices.iter().enumerate() {
                out.data_mut()[i * plane..(i + 1) * plane]
                    .copy_from_slice(&adversarial.data()[j * plane..(j + 1) * plane]);
            }
            Ok(out)
        }
        _ => Ok(images.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_data::DatasetConfig;

    fn tiny_dataset() -> SignDataset {
        let mut cfg = DatasetConfig::tiny();
        cfg.image_size = 16;
        SignDataset::generate(&cfg, 5).unwrap()
    }

    #[test]
    fn config_validation() {
        let ds = tiny_dataset();
        let bad = TrainConfig {
            epochs: 0,
            ..TrainConfig::tiny()
        };
        assert!(train_defended_model(&DefenseKind::Baseline, &ds, &bad).is_err());
        let bad = TrainConfig {
            learning_rate: 0.0,
            ..TrainConfig::tiny()
        };
        assert!(train_defended_model(&DefenseKind::Baseline, &ds, &bad).is_err());
        assert!(train_defended_model(
            &DefenseKind::InputFilter { kernel: 4 },
            &ds,
            &TrainConfig::tiny()
        )
        .is_err());
    }

    #[test]
    fn baseline_training_reduces_loss() {
        let ds = tiny_dataset();
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::tiny()
        };
        let model = train_defended_model(&DefenseKind::Baseline, &ds, &cfg).unwrap();
        let losses = &model.training_report().epoch_losses;
        assert_eq!(losses.len(), 3);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss should fall: {losses:?}"
        );
        assert!(model.training_report().test_accuracy >= 0.0);
    }

    #[test]
    fn architectures_match_defenses() {
        let ds = tiny_dataset();
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        };
        let baseline = train_defended_model(&DefenseKind::Baseline, &ds, &cfg).unwrap();
        let blurred =
            train_defended_model(&DefenseKind::FeatureFilter { kernel: 3 }, &ds, &cfg).unwrap();
        assert_eq!(blurred.network().len(), baseline.network().len() + 1);
        let dw = train_defended_model(
            &DefenseKind::DepthwiseLinf {
                kernel: 3,
                alpha: 1e-3,
            },
            &ds,
            &cfg,
        )
        .unwrap();
        assert!(dw.network().parameter_count() > baseline.network().parameter_count());
    }

    #[test]
    fn regularized_training_runs_for_every_regularizer() {
        let ds = tiny_dataset();
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        };
        for defense in [
            DefenseKind::TotalVariation { alpha: 1e-4 },
            DefenseKind::TikhonovHf {
                alpha: 1e-4,
                window: 3,
            },
            DefenseKind::TikhonovPseudo { alpha: 1e-5 },
            DefenseKind::GaussianAugmentation { sigma: 0.1 },
        ] {
            let model = train_defended_model(&defense, &ds, &cfg).unwrap();
            assert_eq!(model.defense(), &defense);
            assert!(model.training_report().epoch_losses[0].is_finite());
        }
    }

    #[test]
    fn adversarial_training_runs_with_few_steps() {
        let ds = tiny_dataset();
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 8,
            ..TrainConfig::tiny()
        };
        let defense = DefenseKind::AdversarialTraining {
            epsilon: 8.0 / 255.0,
            step_size: 0.05,
            steps: 2,
        };
        let model = train_defended_model(&defense, &ds, &cfg).unwrap();
        assert!(model.training_report().epoch_losses[0].is_finite());
    }

    #[test]
    fn build_architecture_without_training() {
        let (net, arch) = build_architecture(&DefenseKind::Baseline, 16, 18, 0).unwrap();
        assert_eq!(arch.input_size, 16);
        assert!(net.parameter_count() > 0);
        assert!(build_architecture(&DefenseKind::InputFilter { kernel: 2 }, 16, 18, 0).is_err());
    }
}
