//! Gaussian noise augmentation (the training half of randomized smoothing).

use blurnet_tensor::Tensor;
use rand::Rng;

use crate::{DefenseError, Result};

/// Adds i.i.d. Gaussian noise with standard deviation `sigma` to every
/// pixel and clamps back to `[0, 1]`.
///
/// # Errors
///
/// Returns [`DefenseError::BadConfig`] for a non-positive `sigma`.
pub fn gaussian_augment<R: Rng + ?Sized>(
    images: &Tensor,
    sigma: f32,
    rng: &mut R,
) -> Result<Tensor> {
    if sigma <= 0.0 {
        return Err(DefenseError::BadConfig(format!(
            "sigma must be positive, got {sigma}"
        )));
    }
    let noise = Tensor::rand_normal(images.dims(), 0.0, sigma, rng);
    Ok(images.add(&noise)?.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn augmentation_perturbs_with_expected_magnitude() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let images = Tensor::full(&[4, 3, 8, 8], 0.5);
        let noisy = gaussian_augment(&images, 0.1, &mut rng).unwrap();
        let diff = noisy.sub(&images).unwrap();
        let std = (diff.data().iter().map(|v| v * v).sum::<f32>() / diff.len() as f32).sqrt();
        assert!((std - 0.1).abs() < 0.02, "empirical std {std}");
        assert!(noisy.min().unwrap() >= 0.0 && noisy.max().unwrap() <= 1.0);
    }

    #[test]
    fn larger_sigma_means_larger_perturbation() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let images = Tensor::full(&[2, 3, 8, 8], 0.5);
        let small = gaussian_augment(&images, 0.05, &mut rng).unwrap();
        let large = gaussian_augment(&images, 0.3, &mut rng).unwrap();
        assert!(large.sub(&images).unwrap().l2_norm() > small.sub(&images).unwrap().l2_norm());
    }

    #[test]
    fn sigma_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(gaussian_augment(&Tensor::zeros(&[1, 3, 4, 4]), 0.0, &mut rng).is_err());
    }
}
