//! Versioned binary persistence for [`DefendedModel`].
//!
//! # Layout (`BNDM`, version 1)
//!
//! ```text
//! magic       4 bytes   b"BNDM"
//! version     u16 LE
//! header_len  u64 LE
//! header      JSON (vendored serde): defense, arch, report, smoothing_draws
//! network     embedded BNSQ record (blurnet_nn::persist)
//! ```
//!
//! The header rides the vendored serde JSON because everything in it is
//! small structured config (the [`DefenseKind`], the [`LisaCnnConfig`] —
//! including the fixed-blur kernel, whose f32s round-trip exactly through
//! the workspace's JSON — and the [`TrainingReport`]); the weight payload
//! stays binary via the `BNSQ`/`BNTR` records. `smoothing_draws` persists
//! the randomized-smoothing RNG position (see
//! [`DefendedModel::smoothing_draws`]), so a reloaded model continues the
//! exact Monte-Carlo stream the saved one would have — without it, a
//! warm-cache grid run would diverge from a cold one on every
//! smoothing cell after the first.

use blurnet_nn::persist::{read_sequential, write_sequential};
use blurnet_nn::LisaCnnConfig;
use blurnet_tensor::persist::{put_u64, ByteReader};
use blurnet_tensor::TensorError;
use serde::{Deserialize, Serialize};

use crate::model::TrainingReport;
use crate::{DefendedModel, DefenseError, DefenseKind, Result};

/// Magic bytes opening a serialized [`DefendedModel`].
pub const MODEL_MAGIC: [u8; 4] = *b"BNDM";
/// Newest model format version this build reads and writes.
pub const MODEL_VERSION: u16 = 1;

/// The JSON header of a persisted model: everything except the weights.
#[derive(Debug, Serialize, Deserialize)]
struct ModelHeader {
    defense: DefenseKind,
    arch: LisaCnnConfig,
    report: TrainingReport,
    smoothing_draws: u64,
}

fn tensor_fail(e: TensorError) -> DefenseError {
    DefenseError::Tensor(e)
}

/// Serializes a model as a standalone binary record.
///
/// # Errors
///
/// Returns [`DefenseError::BadConfig`] if the header cannot be encoded (a
/// bug, not an input condition).
pub fn model_to_bytes(model: &DefendedModel) -> Result<Vec<u8>> {
    let header = ModelHeader {
        defense: model.defense().clone(),
        arch: model.arch().clone(),
        report: model.training_report().clone(),
        smoothing_draws: model.smoothing_draws(),
    };
    let header_json = serde_json::to_vec(&header)
        .map_err(|e| DefenseError::BadConfig(format!("encoding model header: {e}")))?;
    let mut buf = Vec::new();
    buf.extend_from_slice(&MODEL_MAGIC);
    buf.extend_from_slice(&MODEL_VERSION.to_le_bytes());
    put_u64(&mut buf, header_json.len() as u64);
    buf.extend_from_slice(&header_json);
    write_sequential(&mut buf, model.network());
    Ok(buf)
}

/// Deserializes a standalone model record, rejecting trailing bytes.
///
/// # Errors
///
/// Returns [`DefenseError::Tensor`] for the typed persist errors (wrong
/// magic, future version, truncation), [`DefenseError::BadConfig`] for a
/// malformed header and [`DefenseError::Network`] for a malformed weight
/// section.
pub fn model_from_bytes(bytes: &[u8]) -> Result<DefendedModel> {
    let mut reader = ByteReader::new(bytes);
    reader.expect_magic(MODEL_MAGIC).map_err(tensor_fail)?;
    reader.expect_version(MODEL_VERSION).map_err(tensor_fail)?;
    let header_len = reader.usize_le().map_err(tensor_fail)?;
    let header_json = reader.take(header_len).map_err(tensor_fail)?;
    let header: ModelHeader = serde_json::from_slice(header_json)
        .map_err(|e| DefenseError::BadConfig(format!("decoding model header: {e}")))?;
    let net = read_sequential(&mut reader)?;
    reader.finish().map_err(tensor_fail)?;
    let mut model = DefendedModel::new(net, header.defense, header.arch, header.report);
    model.advance_smoothing_rng(header.smoothing_draws);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SMOOTHING_SEED;
    use blurnet_nn::LisaCnn;
    use blurnet_tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn untrained(defense: DefenseKind) -> DefendedModel {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let builder = LisaCnn::new(18).input_size(16).conv1_filters(4);
        let net = builder.build(&mut rng).unwrap();
        DefendedModel::new(
            net,
            defense,
            builder.config().clone(),
            TrainingReport {
                epoch_losses: vec![0.5, 0.25],
                test_accuracy: 0.75,
            },
        )
    }

    #[test]
    fn roundtrip_preserves_classification_bitwise() {
        let images: Vec<Tensor> = (0..3)
            .map(|i| Tensor::full(&[3, 16, 16], 0.2 + 0.2 * i as f32))
            .collect();
        for defense in [
            DefenseKind::Baseline,
            DefenseKind::InputFilter { kernel: 3 },
            DefenseKind::FeatureFilter { kernel: 5 },
        ] {
            let mut model = untrained(defense);
            let mut restored = model_from_bytes(&model_to_bytes(&model).unwrap()).unwrap();
            assert_eq!(model.defense(), restored.defense());
            assert_eq!(model.arch(), restored.arch());
            assert_eq!(model.training_report(), restored.training_report());
            assert_eq!(
                model.classify_set(&images).unwrap(),
                restored.classify_set(&images).unwrap()
            );
        }
    }

    #[test]
    fn smoothing_rng_position_survives_the_roundtrip() {
        let mut model = untrained(DefenseKind::RandomizedSmoothing {
            sigma: 0.1,
            samples: 5,
        });
        let image = Tensor::full(&[3, 16, 16], 0.4);
        // Consume some of the stream before saving.
        let _ = model.classify_one(&image).unwrap();
        let draws = model.smoothing_draws();
        assert!(draws > 0);
        let mut restored = model_from_bytes(&model_to_bytes(&model).unwrap()).unwrap();
        assert_eq!(restored.smoothing_draws(), draws);
        // Both continue the stream identically.
        assert_eq!(
            model.classify_one(&image).unwrap(),
            restored.classify_one(&image).unwrap()
        );
    }

    #[test]
    fn fresh_models_start_at_draw_zero() {
        let model = untrained(DefenseKind::Baseline);
        assert_eq!(model.smoothing_draws(), 0);
        // Draw counting is relative to a fresh RNG at the fixed seed, so
        // zero means "restore needs no replay", whatever the vendored
        // ChaCha's absolute starting position is.
        let _ = SMOOTHING_SEED;
    }

    #[test]
    fn wrong_magic_and_future_versions_are_typed() {
        let bytes = model_to_bytes(&untrained(DefenseKind::Baseline)).unwrap();
        let mut wrong = bytes.clone();
        wrong[0] = b'Z';
        assert!(matches!(
            model_from_bytes(&wrong),
            Err(DefenseError::Tensor(TensorError::WrongMagic { .. }))
        ));
        let mut future = bytes.clone();
        future[4] = 0x7F;
        future[5] = 0x7F;
        assert!(matches!(
            model_from_bytes(&future),
            Err(DefenseError::Tensor(TensorError::UnsupportedVersion { .. }))
        ));
        assert!(model_from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }
}
