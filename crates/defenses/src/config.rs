//! The catalogue of defended models evaluated in the paper.

use serde::{Deserialize, Serialize};

use crate::{DefenseError, Result};

/// Every defense configuration appearing in Tables I–V of the paper.
///
/// The variants that change the architecture (filter layers) and the ones
/// that change only the training loss (regularizers) are deliberately in a
/// single enum: an experiment row is fully described by one value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DefenseKind {
    /// The undefended classifier.
    Baseline,
    /// Blur the *input image* with a `kernel × kernel` box filter before
    /// classification (Table I rows "Input filter").
    InputFilter {
        /// Blur kernel extent (3 or 5 in the paper).
        kernel: usize,
    },
    /// Apply a fixed `kernel × kernel` box blur to every first-layer
    /// feature map via a frozen depthwise layer (Table I rows "filter on L1
    /// maps").
    FeatureFilter {
        /// Blur kernel extent (3 or 5 in the paper).
        kernel: usize,
    },
    /// Trainable depthwise layer after the first convolution, regularized
    /// with an L∞ penalty on its kernels (Eq. 2; Table II "3x3/5x5/7x7
    /// conv" rows).
    DepthwiseLinf {
        /// Depthwise kernel extent (3, 5 or 7).
        kernel: usize,
        /// Regularization strength α.
        alpha: f32,
    },
    /// Total-variation regularization of the first-layer feature maps
    /// during training (Eq. 4; Table II "TV" rows).
    TotalVariation {
        /// Regularization strength α_TV (1e-4 and 1e-5 in the paper).
        alpha: f32,
    },
    /// Generalized Tikhonov regularization with the high-frequency
    /// extraction operator `L_hf = I − L_avg` (Eq. 6; "Tik_hf").
    TikhonovHf {
        /// Regularization strength α_hf.
        alpha: f32,
        /// Window of the moving-average operator (odd).
        window: usize,
    },
    /// Generalized Tikhonov regularization with the pseudoinverse of a
    /// difference operator (Eq. 7; "Tik_pseudo").
    TikhonovPseudo {
        /// Regularization strength α_pseudo.
        alpha: f32,
    },
    /// Train on Gaussian-noise-augmented images (Table II "Gaussian aug").
    GaussianAugmentation {
        /// Noise standard deviation σ.
        sigma: f32,
    },
    /// Gaussian-augmented training plus majority-vote randomized smoothing
    /// at prediction time (Table II "Rand. sm").
    RandomizedSmoothing {
        /// Noise standard deviation σ.
        sigma: f32,
        /// Monte-Carlo samples per prediction (the paper uses 100).
        samples: usize,
    },
    /// PGD adversarial training, 50% clean / 50% adversarial per batch
    /// (Table II "Adv-train").
    AdversarialTraining {
        /// L∞ budget ε of the training adversary.
        epsilon: f32,
        /// PGD step size.
        step_size: f32,
        /// PGD steps per generated example.
        steps: usize,
    },
}

impl DefenseKind {
    /// Short human-readable label matching the paper's table rows.
    pub fn label(&self) -> String {
        match self {
            DefenseKind::Baseline => "Baseline".to_string(),
            DefenseKind::InputFilter { kernel } => format!("Input filter {kernel}x{kernel}"),
            DefenseKind::FeatureFilter { kernel } => {
                format!("{kernel}x{kernel} filter on L1 maps")
            }
            DefenseKind::DepthwiseLinf { kernel, alpha } => {
                format!("{kernel}x{kernel} conv (alpha={alpha:.0e})")
            }
            DefenseKind::TotalVariation { alpha } => format!("TV ({alpha:.0e})"),
            DefenseKind::TikhonovHf { alpha, .. } => format!("Tik_hf ({alpha:.0e})"),
            DefenseKind::TikhonovPseudo { alpha } => format!("Tik_pseudo ({alpha:.0e})"),
            DefenseKind::GaussianAugmentation { sigma } => {
                format!("Gaussian aug (sigma={sigma})")
            }
            DefenseKind::RandomizedSmoothing { sigma, .. } => {
                format!("Rand. sm (sigma={sigma})")
            }
            DefenseKind::AdversarialTraining { .. } => "Adv-train".to_string(),
        }
    }

    /// Whether this defense inserts a depthwise layer after the first
    /// convolution.
    pub fn has_filter_layer(&self) -> bool {
        matches!(
            self,
            DefenseKind::FeatureFilter { .. } | DefenseKind::DepthwiseLinf { .. }
        )
    }

    /// Whether predictions apply input-space preprocessing (input blur or
    /// smoothing) in addition to the plain network forward pass.
    pub fn has_prediction_wrapper(&self) -> bool {
        matches!(
            self,
            DefenseKind::InputFilter { .. } | DefenseKind::RandomizedSmoothing { .. }
        )
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::BadConfig`] for out-of-range parameters
    /// (even kernels, non-positive strengths, zero sample counts, …).
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(DefenseError::BadConfig(msg));
        match self {
            DefenseKind::Baseline => Ok(()),
            DefenseKind::InputFilter { kernel } | DefenseKind::FeatureFilter { kernel } => {
                if *kernel < 2 || kernel % 2 == 0 {
                    fail(format!("filter kernel must be odd and >= 3, got {kernel}"))
                } else {
                    Ok(())
                }
            }
            DefenseKind::DepthwiseLinf { kernel, alpha } => {
                if *kernel < 2 || kernel % 2 == 0 {
                    fail(format!(
                        "depthwise kernel must be odd and >= 3, got {kernel}"
                    ))
                } else if *alpha < 0.0 {
                    fail(format!("alpha must be non-negative, got {alpha}"))
                } else {
                    Ok(())
                }
            }
            DefenseKind::TotalVariation { alpha } | DefenseKind::TikhonovPseudo { alpha } => {
                if *alpha <= 0.0 {
                    fail(format!("alpha must be positive, got {alpha}"))
                } else {
                    Ok(())
                }
            }
            DefenseKind::TikhonovHf { alpha, window } => {
                if *alpha <= 0.0 {
                    fail(format!("alpha must be positive, got {alpha}"))
                } else if *window < 3 || window % 2 == 0 {
                    fail(format!("window must be odd and >= 3, got {window}"))
                } else {
                    Ok(())
                }
            }
            DefenseKind::GaussianAugmentation { sigma } => {
                if *sigma <= 0.0 {
                    fail(format!("sigma must be positive, got {sigma}"))
                } else {
                    Ok(())
                }
            }
            DefenseKind::RandomizedSmoothing { sigma, samples } => {
                if *sigma <= 0.0 {
                    fail(format!("sigma must be positive, got {sigma}"))
                } else if *samples == 0 {
                    fail("smoothing needs at least one sample".to_string())
                } else {
                    Ok(())
                }
            }
            DefenseKind::AdversarialTraining {
                epsilon,
                step_size,
                steps,
            } => {
                if *epsilon <= 0.0 || *step_size <= 0.0 || *steps == 0 {
                    fail(format!(
                        "adversarial training needs positive epsilon/step/steps, got {epsilon}/{step_size}/{steps}"
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// The paper's default adversarial-training configuration
    /// (ε = 8/255, α = 0.1, 7 steps).
    pub fn paper_adversarial_training() -> Self {
        DefenseKind::AdversarialTraining {
            epsilon: 8.0 / 255.0,
            step_size: 0.1,
            steps: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_for_table2_rows() {
        let rows = [
            DefenseKind::Baseline,
            DefenseKind::GaussianAugmentation { sigma: 0.1 },
            DefenseKind::RandomizedSmoothing {
                sigma: 0.1,
                samples: 10,
            },
            DefenseKind::paper_adversarial_training(),
            DefenseKind::DepthwiseLinf {
                kernel: 3,
                alpha: 1e-5,
            },
            DefenseKind::DepthwiseLinf {
                kernel: 5,
                alpha: 0.1,
            },
            DefenseKind::DepthwiseLinf {
                kernel: 7,
                alpha: 0.1,
            },
            DefenseKind::TotalVariation { alpha: 1e-4 },
            DefenseKind::TotalVariation { alpha: 1e-5 },
            DefenseKind::TikhonovHf {
                alpha: 1e-4,
                window: 3,
            },
            DefenseKind::TikhonovPseudo { alpha: 1e-6 },
        ];
        let labels: std::collections::HashSet<_> = rows.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), rows.len());
        for row in &rows {
            assert!(row.validate().is_ok(), "{row:?} should validate");
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(DefenseKind::InputFilter { kernel: 4 }.validate().is_err());
        assert!(DefenseKind::FeatureFilter { kernel: 1 }.validate().is_err());
        assert!(DefenseKind::DepthwiseLinf {
            kernel: 3,
            alpha: -1.0
        }
        .validate()
        .is_err());
        assert!(DefenseKind::TotalVariation { alpha: 0.0 }
            .validate()
            .is_err());
        assert!(DefenseKind::TikhonovHf {
            alpha: 1e-4,
            window: 4
        }
        .validate()
        .is_err());
        assert!(DefenseKind::TikhonovPseudo { alpha: -1.0 }
            .validate()
            .is_err());
        assert!(DefenseKind::GaussianAugmentation { sigma: 0.0 }
            .validate()
            .is_err());
        assert!(DefenseKind::RandomizedSmoothing {
            sigma: 0.1,
            samples: 0
        }
        .validate()
        .is_err());
        assert!(DefenseKind::AdversarialTraining {
            epsilon: 0.0,
            step_size: 0.1,
            steps: 7
        }
        .validate()
        .is_err());
    }

    #[test]
    fn structural_flags() {
        assert!(DefenseKind::FeatureFilter { kernel: 5 }.has_filter_layer());
        assert!(DefenseKind::DepthwiseLinf {
            kernel: 5,
            alpha: 0.1
        }
        .has_filter_layer());
        assert!(!DefenseKind::TotalVariation { alpha: 1e-4 }.has_filter_layer());
        assert!(DefenseKind::InputFilter { kernel: 3 }.has_prediction_wrapper());
        assert!(DefenseKind::RandomizedSmoothing {
            sigma: 0.1,
            samples: 4
        }
        .has_prediction_wrapper());
        assert!(!DefenseKind::Baseline.has_prediction_wrapper());
    }
}
