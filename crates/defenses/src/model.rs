//! The trained, defended classifier behind a single evaluation interface.

use blurnet_attacks::Classifier;
use blurnet_data::Batch;
use blurnet_nn::{LisaCnnConfig, Sequential};
use blurnet_tensor::Tensor;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::filtering::{filter_image, filter_images};
use crate::smoothing::smoothed_predict;
use crate::{DefenseError, DefenseKind, Result};

/// Loss and accuracy bookkeeping from training a defended model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Mean training loss per epoch (classification + regularization).
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the clean test split after training, measured through
    /// the defended prediction path ("legitimate accuracy" in Table II).
    pub test_accuracy: f32,
}

/// A trained classifier together with its defense configuration.
///
/// Prediction goes through the defense's full inference path: the input
/// filter is applied for [`DefenseKind::InputFilter`], a majority vote over
/// noisy copies is used for [`DefenseKind::RandomizedSmoothing`], and all
/// other defenses classify with a plain forward pass (their protection
/// lives in the weights or the architecture).
#[derive(Debug, Clone)]
pub struct DefendedModel {
    net: Sequential,
    defense: DefenseKind,
    arch: LisaCnnConfig,
    report: TrainingReport,
    smoothing_rng: ChaCha8Rng,
}

/// Seed of the Monte-Carlo smoothing RNG every [`DefendedModel`] starts
/// from — fixed so the randomized-smoothing evaluation is reproducible and
/// a persisted model can restore the stream by replaying its draw count.
pub const SMOOTHING_SEED: u64 = 0xB1A2;

impl DefendedModel {
    /// Wraps a trained network.
    pub fn new(
        net: Sequential,
        defense: DefenseKind,
        arch: LisaCnnConfig,
        report: TrainingReport,
    ) -> Self {
        DefendedModel {
            net,
            defense,
            arch,
            report,
            smoothing_rng: ChaCha8Rng::seed_from_u64(SMOOTHING_SEED),
        }
    }

    /// Number of RNG words the smoothing stream has consumed since
    /// construction. ChaCha is counter-based, so this single number is the
    /// complete RNG state: persisting it and replaying the same count via
    /// [`DefendedModel::advance_smoothing_rng`] restores the stream
    /// bit-exactly.
    pub fn smoothing_draws(&self) -> u64 {
        let fresh = ChaCha8Rng::seed_from_u64(SMOOTHING_SEED).get_word_pos();
        self.smoothing_rng.get_word_pos() - fresh
    }

    /// Fast-forwards the smoothing RNG by `draws` words (see
    /// [`DefendedModel::smoothing_draws`]) — the restore side of
    /// persistence for randomized-smoothing models.
    pub fn advance_smoothing_rng(&mut self, draws: u64) {
        for _ in 0..draws {
            let _ = self.smoothing_rng.next_u32();
        }
    }

    /// The defense this model was trained with.
    pub fn defense(&self) -> &DefenseKind {
        &self.defense
    }

    /// The network architecture.
    pub fn arch(&self) -> &LisaCnnConfig {
        &self.arch
    }

    /// The training report (per-epoch losses, clean test accuracy).
    pub fn training_report(&self) -> &TrainingReport {
        &self.report
    }

    /// Immutable access to the underlying network.
    pub fn network(&self) -> &Sequential {
        &self.net
    }

    /// Mutable access to the underlying network (white-box attacks need
    /// gradients through it).
    pub fn network_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Index of the first-layer feature-map activation.
    pub fn feature_layer_index(&self) -> usize {
        self.arch.feature_layer_index()
    }

    /// Spatial extent of the first-layer feature maps.
    pub fn feature_map_extent(&self) -> usize {
        self.arch.feature_map_extent()
    }

    /// Applies the defense's input-space preprocessing (if any) to one
    /// image.
    ///
    /// # Errors
    ///
    /// Propagates filtering errors.
    pub fn preprocess(&self, image: &Tensor) -> Result<Tensor> {
        match &self.defense {
            DefenseKind::InputFilter { kernel } => filter_image(image, *kernel),
            _ => Ok(image.clone()),
        }
    }

    /// Applies the defense's input-space preprocessing (if any) to an
    /// `[N, C, H, W]` batch. Each image is filtered independently, so the
    /// result of row `i` never depends on which other images share the
    /// batch — the property the serving path's micro-batching relies on.
    ///
    /// # Errors
    ///
    /// Propagates filtering errors.
    pub fn preprocess_batch(&self, images: &Tensor) -> Result<Tensor> {
        match &self.defense {
            DefenseKind::InputFilter { kernel } => filter_images(images, *kernel),
            _ => Ok(images.clone()),
        }
    }

    /// Whether the defense rewrites the input image before the network
    /// sees it (true only for [`DefenseKind::InputFilter`]). When it does,
    /// comparing the defended prediction against the raw-input prediction
    /// gives a per-request defense verdict.
    pub fn has_input_preprocessing(&self) -> bool {
        matches!(self.defense, DefenseKind::InputFilter { .. })
    }

    /// Whether the defended inference path is a pure function of each
    /// input image. Every defense qualifies except
    /// [`DefenseKind::RandomizedSmoothing`], whose Monte-Carlo vote draws
    /// from a stateful RNG — its prediction depends on how many images
    /// were classified before, so it cannot honor the serving subsystem's
    /// "micro-batched ≡ single-request" bit-identity guarantee.
    pub fn deterministic_inference(&self) -> bool {
        !matches!(self.defense, DefenseKind::RandomizedSmoothing { .. })
    }

    /// Classifies one `[C, H, W]` image through the defended inference
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing and network errors.
    pub fn classify_one(&mut self, image: &Tensor) -> Result<usize> {
        let image = self.preprocess(image)?;
        match &self.defense {
            DefenseKind::RandomizedSmoothing { sigma, samples } => smoothed_predict(
                &mut self.net,
                &image,
                *sigma,
                *samples,
                &mut self.smoothing_rng,
            ),
            _ => {
                let batch = Tensor::stack(&[image])?;
                Ok(self.net.predict(&batch)?[0])
            }
        }
    }

    /// Classifies a set of `[C, H, W]` images through the defended
    /// inference path, batched.
    ///
    /// Deterministic defenses (everything except randomized smoothing)
    /// preprocess the whole set and run **one batch-parallel forward pass**
    /// through the network's inference engine; randomized smoothing still
    /// votes image by image because its Monte-Carlo sampling consumes the
    /// model's RNG in per-image order. Predictions are identical to
    /// looping [`DefendedModel::classify_one`].
    ///
    /// # Errors
    ///
    /// Propagates preprocessing and network errors.
    pub fn classify_set(&mut self, images: &[Tensor]) -> Result<Vec<usize>> {
        if images.is_empty() {
            return Ok(Vec::new());
        }
        match &self.defense {
            DefenseKind::RandomizedSmoothing { .. } => images
                .iter()
                .map(|image| self.classify_one(image))
                .collect(),
            _ => {
                let preprocessed = self.preprocess_batch(&Tensor::stack(images)?)?;
                Ok(self.net.predict_batch(&preprocessed)?)
            }
        }
    }

    /// Accuracy of the defended prediction path on a labelled batch.
    ///
    /// Deterministic defenses classify the whole batch in one forward pass
    /// (preprocessing included), so the evaluation rides the batched GEMM
    /// path; only randomized smoothing still votes image by image.
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::BadConfig`] for an empty batch.
    pub fn accuracy(&mut self, batch: &Batch) -> Result<f32> {
        if batch.labels.is_empty() {
            return Err(DefenseError::BadConfig("empty evaluation batch".into()));
        }
        let correct = match &self.defense {
            DefenseKind::RandomizedSmoothing { .. } => {
                let mut correct = 0usize;
                for (i, &label) in batch.labels.iter().enumerate() {
                    let image = batch.images.batch_item(i)?;
                    if self.classify_one(&image)? == label {
                        correct += 1;
                    }
                }
                correct
            }
            _ => {
                let preprocessed = self.preprocess_batch(&batch.images)?;
                let preds = self.net.predict_batch(&preprocessed)?;
                preds
                    .iter()
                    .zip(batch.labels.iter())
                    .filter(|(p, l)| p == l)
                    .count()
            }
        };
        Ok(correct as f32 / batch.labels.len() as f32)
    }
}

impl Classifier for DefendedModel {
    fn classify(&mut self, image: &Tensor) -> blurnet_attacks::Result<usize> {
        self.classify_one(image)
            .map_err(|e| blurnet_attacks::AttackError::BadInput(e.to_string()))
    }

    fn classify_batch(&mut self, images: &[Tensor]) -> blurnet_attacks::Result<Vec<usize>> {
        self.classify_set(images)
            .map_err(|e| blurnet_attacks::AttackError::BadInput(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_nn::LisaCnn;

    fn untrained(defense: DefenseKind) -> DefendedModel {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let builder = LisaCnn::new(18).input_size(16).conv1_filters(4);
        let net = builder.build(&mut rng).unwrap();
        DefendedModel::new(
            net,
            defense,
            builder.config().clone(),
            TrainingReport {
                epoch_losses: vec![],
                test_accuracy: 0.0,
            },
        )
    }

    #[test]
    fn preprocess_is_identity_except_for_input_filter() {
        let image = {
            let mut img = Tensor::full(&[3, 16, 16], 0.5);
            img.set(&[0, 8, 8], 1.0).unwrap();
            img
        };
        let baseline = untrained(DefenseKind::Baseline);
        assert_eq!(baseline.preprocess(&image).unwrap(), image);
        let filtered = untrained(DefenseKind::InputFilter { kernel: 3 });
        let out = filtered.preprocess(&image).unwrap();
        assert!(out.get(&[0, 8, 8]).unwrap() < 1.0);
    }

    #[test]
    fn classification_paths_return_valid_classes() {
        let image = Tensor::full(&[3, 16, 16], 0.5);
        for defense in [
            DefenseKind::Baseline,
            DefenseKind::InputFilter { kernel: 3 },
            DefenseKind::RandomizedSmoothing {
                sigma: 0.1,
                samples: 5,
            },
        ] {
            let mut model = untrained(defense);
            let pred = model.classify_one(&image).unwrap();
            assert!(pred < 18);
            // The Classifier impl goes through the same path.
            let via_trait = Classifier::classify(&mut model, &image).unwrap();
            assert!(via_trait < 18);
        }
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let mut model = untrained(DefenseKind::Baseline);
        let images = Tensor::stack(&[
            Tensor::full(&[3, 16, 16], 0.2),
            Tensor::full(&[3, 16, 16], 0.8),
        ])
        .unwrap();
        // Use whatever the model predicts as the "labels" for a perfect score.
        let l0 = model.classify_one(&images.batch_item(0).unwrap()).unwrap();
        let l1 = model.classify_one(&images.batch_item(1).unwrap()).unwrap();
        let batch = Batch {
            images,
            labels: vec![l0, l1],
        };
        assert_eq!(model.accuracy(&batch).unwrap(), 1.0);
        let empty = Batch {
            images: Tensor::zeros(&[1, 3, 16, 16]),
            labels: vec![],
        };
        assert!(model.accuracy(&empty).is_err());
    }

    #[test]
    fn classify_set_matches_per_image_classification() {
        let images: Vec<Tensor> = (0..4)
            .map(|i| Tensor::full(&[3, 16, 16], 0.2 + 0.15 * i as f32))
            .collect();
        for defense in [
            DefenseKind::Baseline,
            DefenseKind::InputFilter { kernel: 3 },
            DefenseKind::FeatureFilter { kernel: 5 },
        ] {
            let mut model = untrained(defense.clone());
            let batched = model.classify_set(&images).unwrap();
            let singles: Vec<usize> = images
                .iter()
                .map(|i| model.classify_one(i).unwrap())
                .collect();
            assert_eq!(batched, singles, "defense {defense:?}");
        }
        let mut model = untrained(DefenseKind::Baseline);
        assert!(model.classify_set(&[]).unwrap().is_empty());
    }

    #[test]
    fn preprocess_batch_matches_per_image_preprocess() {
        let images: Vec<Tensor> = (0..3)
            .map(|i| {
                let mut img = Tensor::full(&[3, 16, 16], 0.3 + 0.2 * i as f32);
                img.set(&[0, 4 + i, 4], 1.0).unwrap();
                img
            })
            .collect();
        let stacked = Tensor::stack(&images).unwrap();
        for defense in [
            DefenseKind::Baseline,
            DefenseKind::InputFilter { kernel: 3 },
            DefenseKind::FeatureFilter { kernel: 5 },
        ] {
            let model = untrained(defense.clone());
            let batched = model.preprocess_batch(&stacked).unwrap();
            for (i, image) in images.iter().enumerate() {
                let solo = model.preprocess(image).unwrap();
                assert_eq!(
                    batched.batch_item(i).unwrap(),
                    solo,
                    "defense {defense:?}, image {i}"
                );
            }
        }
    }

    #[test]
    fn serving_capability_predicates() {
        assert!(untrained(DefenseKind::Baseline).deterministic_inference());
        assert!(!untrained(DefenseKind::Baseline).has_input_preprocessing());
        let filtered = untrained(DefenseKind::InputFilter { kernel: 3 });
        assert!(filtered.deterministic_inference());
        assert!(filtered.has_input_preprocessing());
        let smoothed = untrained(DefenseKind::RandomizedSmoothing {
            sigma: 0.1,
            samples: 5,
        });
        assert!(!smoothed.deterministic_inference());
        assert!(!smoothed.has_input_preprocessing());
    }

    #[test]
    fn metadata_accessors() {
        let model = untrained(DefenseKind::TotalVariation { alpha: 1e-4 });
        assert_eq!(model.feature_layer_index(), 0);
        assert_eq!(model.feature_map_extent(), 8);
        assert_eq!(
            model.defense(),
            &DefenseKind::TotalVariation { alpha: 1e-4 }
        );
        assert!(model.training_report().epoch_losses.is_empty());
        assert!(model.network().parameter_count() > 0);
    }
}
