//! A disk-backed complement to the in-memory [`VariantCache`]: trained
//! [`DefendedModel`]s keyed by everything that determines their weights.
//!
//! # Cache key
//!
//! A variant's identity is the tuple **(architecture, defense config,
//! trainer config, dataset dims)** — `TrainConfig` carries the seed, and
//! [`build_architecture`] derives the architecture deterministically from
//! the defense, dims and seed, so the key is computable *before* training
//! (the whole point: a scheduler can probe the cache instead of paying for
//! the train). The tuple is serialized to canonical JSON and FNV-1a-hashed
//! into the file name, alongside a human-readable defense slug:
//!
//! ```text
//! <cache-dir>/baseline-93ab…f2.bndm
//! <cache-dir>/feature-filter-3x3-07cd…11.bndm
//! ```
//!
//! # Integrity
//!
//! Entries are `BNDM` model records inside the checksummed `BNPF` file
//! container, written atomically (temp sibling + rename). [`DiskVariantCache::load`]
//! distinguishes **absent** (`Ok(None)`) from **corrupt** (`Err` with the
//! typed persist error), so callers can treat corruption as a cache miss
//! and retrain — never serve a half-written or bit-rotted model.
//!
//! [`VariantCache`]: crate::VariantCache

use std::path::{Path, PathBuf};

use blurnet_nn::LisaCnnConfig;
use blurnet_tensor::persist::{fnv1a, read_file_verified, write_file_atomic};
use serde::Serialize;

use crate::persist::{model_from_bytes, model_to_bytes};
use crate::trainer::build_architecture;
use crate::{DefendedModel, DefenseError, DefenseKind, Result, TrainConfig};

/// File extension of persisted model entries.
pub const MODEL_EXT: &str = "bndm";

/// The serialized form of a cache key; hashing its JSON gives the file
/// name. Field order is fixed by this struct, so the encoding is
/// canonical. (Owned fields: the vendored derive does not handle
/// lifetime-generic types.)
#[derive(Serialize)]
struct KeyRecord {
    defense: DefenseKind,
    train: TrainConfig,
    image_size: usize,
    num_classes: usize,
    arch: LisaCnnConfig,
}

/// A directory of trained models, one checksummed file per variant.
#[derive(Debug, Clone)]
pub struct DiskVariantCache {
    dir: PathBuf,
}

impl DiskVariantCache {
    /// Opens (creating if necessary) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::Tensor`] wrapping the I/O failure if the
    /// directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            DefenseError::Tensor(blurnet_tensor::TensorError::Io(format!(
                "creating cache dir {}: {e}",
                dir.display()
            )))
        })?;
        Ok(DiskVariantCache { dir })
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a variant with this identity lives at (whether or not it
    /// exists yet).
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::BadConfig`] for defense parameters the
    /// architecture builder rejects.
    pub fn model_path(
        &self,
        defense: &DefenseKind,
        train: &TrainConfig,
        image_size: usize,
        num_classes: usize,
    ) -> Result<PathBuf> {
        // The architecture is deterministic in (defense, dims, seed), so
        // deriving it here keeps it part of the key without the caller
        // having trained anything.
        let (_, arch) = build_architecture(defense, image_size, num_classes, train.seed)?;
        let record = KeyRecord {
            defense: defense.clone(),
            train: *train,
            image_size,
            num_classes,
            arch,
        };
        let json = serde_json::to_vec(&record)
            .map_err(|e| DefenseError::BadConfig(format!("encoding cache key: {e}")))?;
        let hash = fnv1a(&json);
        let slug = slugify(&defense.label());
        Ok(self.dir.join(format!("{slug}-{hash:016x}.{MODEL_EXT}")))
    }

    /// Loads the cached model for this identity, distinguishing a miss
    /// (`Ok(None)`) from a damaged entry (`Err`).
    ///
    /// # Errors
    ///
    /// Returns the typed persist errors for torn, truncated, bit-flipped
    /// or future-versioned entries, and [`DefenseError::BadConfig`] if the
    /// entry decodes but holds a different defense than requested (a hash
    /// collision or a tampered file — either way, not the asked-for model).
    pub fn load(
        &self,
        defense: &DefenseKind,
        train: &TrainConfig,
        image_size: usize,
        num_classes: usize,
    ) -> Result<Option<DefendedModel>> {
        let path = self.model_path(defense, train, image_size, num_classes)?;
        if !path.exists() {
            return Ok(None);
        }
        let payload = read_file_verified(&path).map_err(DefenseError::Tensor)?;
        let model = model_from_bytes(&payload)?;
        if model.defense() != defense {
            return Err(DefenseError::BadConfig(format!(
                "cache entry {} holds defense '{}', expected '{}'",
                path.display(),
                model.defense().label(),
                defense.label()
            )));
        }
        Ok(Some(model))
    }

    /// Stores a trained model under its identity, atomically. Returns the
    /// entry's path.
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::Tensor`] for filesystem failures.
    pub fn store(
        &self,
        model: &DefendedModel,
        train: &TrainConfig,
        image_size: usize,
        num_classes: usize,
    ) -> Result<PathBuf> {
        let path = self.model_path(model.defense(), train, image_size, num_classes)?;
        let payload = model_to_bytes(model)?;
        write_file_atomic(&path, &payload).map_err(DefenseError::Tensor)?;
        Ok(path)
    }

    /// Number of model entries currently on disk.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == MODEL_EXT))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether no model entries exist yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Lowercases a defense label into a filesystem-safe slug.
fn slugify(label: &str) -> String {
    let mut slug = String::with_capacity(label.len());
    for ch in label.chars() {
        if ch.is_ascii_alphanumeric() {
            slug.push(ch.to_ascii_lowercase());
        } else if !slug.ends_with('-') {
            slug.push('-');
        }
    }
    slug.trim_matches('-').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_tensor::{Tensor, TensorError};

    fn temp_cache(tag: &str) -> DiskVariantCache {
        let dir =
            std::env::temp_dir().join(format!("blurnet-disk-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DiskVariantCache::open(dir).unwrap()
    }

    fn tiny_model(defense: DefenseKind, train: &TrainConfig) -> DefendedModel {
        let (net, arch) = build_architecture(&defense, 16, 18, train.seed).unwrap();
        DefendedModel::new(
            net,
            defense,
            arch,
            crate::TrainingReport {
                epoch_losses: vec![1.0],
                test_accuracy: 0.5,
            },
        )
    }

    #[test]
    fn store_then_load_is_bitwise_identical() {
        let cache = temp_cache("roundtrip");
        let train = TrainConfig::tiny();
        let defense = DefenseKind::FeatureFilter { kernel: 3 };
        let mut model = tiny_model(defense.clone(), &train);
        cache.store(&model, &train, 16, 18).unwrap();
        assert_eq!(cache.len(), 1);
        let mut loaded = cache.load(&defense, &train, 16, 18).unwrap().unwrap();
        let images: Vec<Tensor> = (0..3)
            .map(|i| Tensor::full(&[3, 16, 16], 0.1 + 0.3 * i as f32))
            .collect();
        assert_eq!(
            model.classify_set(&images).unwrap(),
            loaded.classify_set(&images).unwrap()
        );
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn absent_entries_are_a_miss_not_an_error() {
        let cache = temp_cache("miss");
        assert!(cache
            .load(&DefenseKind::Baseline, &TrainConfig::tiny(), 16, 18)
            .unwrap()
            .is_none());
        assert!(cache.is_empty());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn key_separates_defense_seed_and_trainer() {
        let cache = temp_cache("keys");
        let base = TrainConfig::tiny();
        let other_seed = TrainConfig { seed: 8, ..base };
        let other_lr = TrainConfig {
            learning_rate: 1e-4,
            ..base
        };
        let p0 = cache
            .model_path(&DefenseKind::Baseline, &base, 16, 18)
            .unwrap();
        let p1 = cache
            .model_path(&DefenseKind::InputFilter { kernel: 3 }, &base, 16, 18)
            .unwrap();
        let p2 = cache
            .model_path(&DefenseKind::Baseline, &other_seed, 16, 18)
            .unwrap();
        let p3 = cache
            .model_path(&DefenseKind::Baseline, &other_lr, 16, 18)
            .unwrap();
        let p4 = cache
            .model_path(&DefenseKind::Baseline, &base, 32, 18)
            .unwrap();
        let paths = [&p0, &p1, &p2, &p3, &p4];
        for (i, a) in paths.iter().enumerate() {
            for b in &paths[i + 1..] {
                assert_ne!(a, b);
            }
        }
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn corruption_is_an_error_not_a_silent_miss() {
        let cache = temp_cache("corrupt");
        let train = TrainConfig::tiny();
        let defense = DefenseKind::Baseline;
        let path = cache
            .store(&tiny_model(defense.clone(), &train), &train, 16, 18)
            .unwrap();
        // Flip one byte in the middle of the weights.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            cache.load(&defense, &train, 16, 18),
            Err(DefenseError::Tensor(TensorError::ChecksumMismatch { .. }))
        ));
        // Truncation is typed too.
        std::fs::write(&path, &bytes[..mid]).unwrap();
        assert!(cache.load(&defense, &train, 16, 18).is_err());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }
}
