//! A disk-backed complement to the in-memory [`VariantCache`]: trained
//! [`DefendedModel`]s keyed by everything that determines their weights.
//!
//! # Cache key
//!
//! A variant's identity is the tuple **(architecture, defense config,
//! trainer config, dataset seed, dims)** — `TrainConfig` carries the
//! optimizer seed, the dataset seed pins the generated training set (two
//! runs with different `--seed`s train different weights), and
//! [`build_architecture`] derives the architecture deterministically from
//! the defense, dims and seed, so the key is computable *before* training
//! (the whole point: a scheduler can probe the cache instead of paying for
//! the train). The tuple is serialized to canonical JSON and FNV-1a-hashed
//! into the file name, alongside a human-readable defense slug:
//!
//! ```text
//! <cache-dir>/baseline-93ab…f2.bndm
//! <cache-dir>/feature-filter-3x3-07cd…11.bndm
//! ```
//!
//! # Integrity
//!
//! Entries are `BNCE` records — the canonical key JSON followed by the
//! embedded `BNDM` model — inside the checksummed `BNPF` file container,
//! written atomically (temp sibling + rename). [`DiskVariantCache::load`]
//! distinguishes **absent** (`Ok(None)`) from **corrupt** (`Err` with the
//! typed persist error), so callers can treat corruption as a cache miss
//! and retrain — never serve a half-written or bit-rotted model. Because
//! the full key rides inside the entry, a load compares it byte-for-byte
//! against the requested identity: a 64-bit file-name hash collision, a
//! renamed file or a tampered header all surface as a typed mismatch
//! instead of silently serving the wrong weights.
//!
//! [`VariantCache`]: crate::VariantCache

use std::path::{Path, PathBuf};

use blurnet_nn::LisaCnnConfig;
use blurnet_tensor::persist::{fnv1a, put_u64, read_file_verified, write_file_atomic, ByteReader};
use serde::Serialize;

use crate::persist::{model_from_bytes, model_to_bytes};
use crate::trainer::build_architecture;
use crate::{DefendedModel, DefenseError, DefenseKind, Result, TrainConfig};

/// File extension of persisted model entries.
pub const MODEL_EXT: &str = "bndm";

/// Magic bytes opening a cache entry (key header + embedded model).
pub const ENTRY_MAGIC: [u8; 4] = *b"BNCE";
/// Newest cache-entry format version this build reads and writes.
pub const ENTRY_VERSION: u16 = 1;

/// The serialized form of a cache key; hashing its JSON gives the file
/// name, and the JSON itself is embedded in the entry so a load can
/// verify it got the identity it asked for. Field order is fixed by this
/// struct, so the encoding is canonical. (Owned fields: the vendored
/// derive does not handle lifetime-generic types.)
#[derive(Serialize)]
struct KeyRecord {
    defense: DefenseKind,
    train: TrainConfig,
    dataset_seed: u64,
    image_size: usize,
    num_classes: usize,
    arch: LisaCnnConfig,
}

/// A directory of trained models, one checksummed file per variant.
#[derive(Debug, Clone)]
pub struct DiskVariantCache {
    dir: PathBuf,
}

impl DiskVariantCache {
    /// Opens (creating if necessary) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::Tensor`] wrapping the I/O failure if the
    /// directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            DefenseError::Tensor(blurnet_tensor::TensorError::Io(format!(
                "creating cache dir {}: {e}",
                dir.display()
            )))
        })?;
        Ok(DiskVariantCache { dir })
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The canonical key JSON for a variant identity.
    fn key_json(
        defense: &DefenseKind,
        train: &TrainConfig,
        image_size: usize,
        num_classes: usize,
        dataset_seed: u64,
    ) -> Result<Vec<u8>> {
        // The architecture is deterministic in (defense, dims, seed), so
        // deriving it here keeps it part of the key without the caller
        // having trained anything.
        let (_, arch) = build_architecture(defense, image_size, num_classes, train.seed)?;
        let record = KeyRecord {
            defense: defense.clone(),
            train: *train,
            dataset_seed,
            image_size,
            num_classes,
            arch,
        };
        serde_json::to_vec(&record)
            .map_err(|e| DefenseError::BadConfig(format!("encoding cache key: {e}")))
    }

    /// The file name a key hashes to.
    fn entry_path(&self, defense: &DefenseKind, key_json: &[u8]) -> PathBuf {
        let hash = fnv1a(key_json);
        let slug = slugify(&defense.label());
        self.dir.join(format!("{slug}-{hash:016x}.{MODEL_EXT}"))
    }

    /// The file a variant with this identity lives at (whether or not it
    /// exists yet).
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::BadConfig`] for defense parameters the
    /// architecture builder rejects.
    pub fn model_path(
        &self,
        defense: &DefenseKind,
        train: &TrainConfig,
        image_size: usize,
        num_classes: usize,
        dataset_seed: u64,
    ) -> Result<PathBuf> {
        let json = Self::key_json(defense, train, image_size, num_classes, dataset_seed)?;
        Ok(self.entry_path(defense, &json))
    }

    /// Loads the cached model for this identity, distinguishing a miss
    /// (`Ok(None)`) from a damaged entry (`Err`).
    ///
    /// # Errors
    ///
    /// Returns the typed persist errors for torn, truncated, bit-flipped
    /// or future-versioned entries, and [`DefenseError::BadConfig`] if the
    /// entry decodes but its embedded key differs from the requested one
    /// (a file-name hash collision, a renamed file or a tampered header —
    /// either way, not the asked-for model).
    pub fn load(
        &self,
        defense: &DefenseKind,
        train: &TrainConfig,
        image_size: usize,
        num_classes: usize,
        dataset_seed: u64,
    ) -> Result<Option<DefendedModel>> {
        let expected = Self::key_json(defense, train, image_size, num_classes, dataset_seed)?;
        let path = self.entry_path(defense, &expected);
        if !path.exists() {
            return Ok(None);
        }
        let payload = read_file_verified(&path).map_err(DefenseError::Tensor)?;
        let (stored_key, model) = entry_from_bytes(&payload)?;
        if stored_key != expected {
            return Err(DefenseError::BadConfig(format!(
                "cache entry {} holds a different variant identity than requested \
                 (hash collision or tampered/renamed file)",
                path.display()
            )));
        }
        Ok(Some(model))
    }

    /// Stores a trained model under its identity, atomically. Returns the
    /// entry's path.
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::Tensor`] for filesystem failures.
    pub fn store(
        &self,
        model: &DefendedModel,
        train: &TrainConfig,
        image_size: usize,
        num_classes: usize,
        dataset_seed: u64,
    ) -> Result<PathBuf> {
        let key = Self::key_json(
            model.defense(),
            train,
            image_size,
            num_classes,
            dataset_seed,
        )?;
        let path = self.entry_path(model.defense(), &key);
        let payload = entry_to_bytes(&key, model)?;
        write_file_atomic(&path, &payload).map_err(DefenseError::Tensor)?;
        Ok(path)
    }

    /// Number of model entries currently on disk.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == MODEL_EXT))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether no model entries exist yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Serializes a cache entry: the canonical key JSON followed by the
/// embedded model record.
fn entry_to_bytes(key_json: &[u8], model: &DefendedModel) -> Result<Vec<u8>> {
    let model_bytes = model_to_bytes(model)?;
    let mut buf = Vec::with_capacity(14 + key_json.len() + model_bytes.len());
    buf.extend_from_slice(&ENTRY_MAGIC);
    buf.extend_from_slice(&ENTRY_VERSION.to_le_bytes());
    put_u64(&mut buf, key_json.len() as u64);
    buf.extend_from_slice(key_json);
    buf.extend_from_slice(&model_bytes);
    Ok(buf)
}

/// Deserializes a cache entry into its key JSON and model.
fn entry_from_bytes(bytes: &[u8]) -> Result<(Vec<u8>, DefendedModel)> {
    let mut reader = ByteReader::new(bytes);
    reader
        .expect_magic(ENTRY_MAGIC)
        .map_err(DefenseError::Tensor)?;
    reader
        .expect_version(ENTRY_VERSION)
        .map_err(DefenseError::Tensor)?;
    let key_len = reader.usize_le().map_err(DefenseError::Tensor)?;
    let key = reader.take(key_len).map_err(DefenseError::Tensor)?.to_vec();
    let model = model_from_bytes(
        reader
            .take(reader.remaining())
            .map_err(DefenseError::Tensor)?,
    )?;
    Ok((key, model))
}

/// Decodes the payload of a verified model file — either a bare `BNDM`
/// model record (the `serve --model-path` export shape) or a `BNCE`
/// cache entry, whose key header is skipped. This is what lets a file
/// written by the scheduler's `--cache-dir` be handed straight to
/// `serve --model-path`.
///
/// # Errors
///
/// Returns the typed persist errors of either record format.
pub fn model_from_file_bytes(bytes: &[u8]) -> Result<DefendedModel> {
    if bytes.len() >= 4 && bytes[..4] == ENTRY_MAGIC {
        let (_, model) = entry_from_bytes(bytes)?;
        return Ok(model);
    }
    model_from_bytes(bytes)
}

/// Lowercases a defense label into a filesystem-safe slug.
fn slugify(label: &str) -> String {
    let mut slug = String::with_capacity(label.len());
    for ch in label.chars() {
        if ch.is_ascii_alphanumeric() {
            slug.push(ch.to_ascii_lowercase());
        } else if !slug.ends_with('-') {
            slug.push('-');
        }
    }
    slug.trim_matches('-').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_tensor::{Tensor, TensorError};

    const SEED: u64 = 7;

    fn temp_cache(tag: &str) -> DiskVariantCache {
        let dir =
            std::env::temp_dir().join(format!("blurnet-disk-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DiskVariantCache::open(dir).unwrap()
    }

    fn tiny_model(defense: DefenseKind, train: &TrainConfig) -> DefendedModel {
        let (net, arch) = build_architecture(&defense, 16, 18, train.seed).unwrap();
        DefendedModel::new(
            net,
            defense,
            arch,
            crate::TrainingReport {
                epoch_losses: vec![1.0],
                test_accuracy: 0.5,
            },
        )
    }

    #[test]
    fn store_then_load_is_bitwise_identical() {
        let cache = temp_cache("roundtrip");
        let train = TrainConfig::tiny();
        let defense = DefenseKind::FeatureFilter { kernel: 3 };
        let mut model = tiny_model(defense.clone(), &train);
        cache.store(&model, &train, 16, 18, SEED).unwrap();
        assert_eq!(cache.len(), 1);
        let mut loaded = cache.load(&defense, &train, 16, 18, SEED).unwrap().unwrap();
        let images: Vec<Tensor> = (0..3)
            .map(|i| Tensor::full(&[3, 16, 16], 0.1 + 0.3 * i as f32))
            .collect();
        assert_eq!(
            model.classify_set(&images).unwrap(),
            loaded.classify_set(&images).unwrap()
        );
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn absent_entries_are_a_miss_not_an_error() {
        let cache = temp_cache("miss");
        assert!(cache
            .load(&DefenseKind::Baseline, &TrainConfig::tiny(), 16, 18, SEED)
            .unwrap()
            .is_none());
        assert!(cache.is_empty());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn key_separates_defense_seeds_and_trainer() {
        let cache = temp_cache("keys");
        let base = TrainConfig::tiny();
        let other_seed = TrainConfig { seed: 8, ..base };
        let other_lr = TrainConfig {
            learning_rate: 1e-4,
            ..base
        };
        let p0 = cache
            .model_path(&DefenseKind::Baseline, &base, 16, 18, SEED)
            .unwrap();
        let p1 = cache
            .model_path(&DefenseKind::InputFilter { kernel: 3 }, &base, 16, 18, SEED)
            .unwrap();
        let p2 = cache
            .model_path(&DefenseKind::Baseline, &other_seed, 16, 18, SEED)
            .unwrap();
        let p3 = cache
            .model_path(&DefenseKind::Baseline, &other_lr, 16, 18, SEED)
            .unwrap();
        let p4 = cache
            .model_path(&DefenseKind::Baseline, &base, 32, 18, SEED)
            .unwrap();
        // The dataset seed alone must separate entries: same defense, same
        // trainer, same dims, different generated training set.
        let p5 = cache
            .model_path(&DefenseKind::Baseline, &base, 16, 18, SEED + 1)
            .unwrap();
        let paths = [&p0, &p1, &p2, &p3, &p4, &p5];
        for (i, a) in paths.iter().enumerate() {
            for b in &paths[i + 1..] {
                assert_ne!(a, b);
            }
        }
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn a_renamed_entry_is_rejected_not_served() {
        let cache = temp_cache("renamed");
        let train = TrainConfig::tiny();
        let defense = DefenseKind::Baseline;
        let stored = cache
            .store(&tiny_model(defense.clone(), &train), &train, 16, 18, SEED)
            .unwrap();
        // Move the seed-7 entry to where the seed-8 entry would live: the
        // checksum still passes, but the embedded key must not.
        let other = cache
            .model_path(&defense, &train, 16, 18, SEED + 1)
            .unwrap();
        std::fs::rename(&stored, &other).unwrap();
        assert!(matches!(
            cache.load(&defense, &train, 16, 18, SEED + 1),
            Err(DefenseError::BadConfig(_))
        ));
        // The original identity is now simply absent.
        assert!(cache
            .load(&defense, &train, 16, 18, SEED)
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn cache_entries_decode_via_the_model_path_loader() {
        let cache = temp_cache("entry-decode");
        let train = TrainConfig::tiny();
        let defense = DefenseKind::InputFilter { kernel: 3 };
        let path = cache
            .store(&tiny_model(defense.clone(), &train), &train, 16, 18, SEED)
            .unwrap();
        let payload = read_file_verified(&path).unwrap();
        // The `serve --model-path` loader accepts both shapes.
        let from_entry = model_from_file_bytes(&payload).unwrap();
        assert_eq!(from_entry.defense(), &defense);
        let bare = model_to_bytes(&from_entry).unwrap();
        let from_bare = model_from_file_bytes(&bare).unwrap();
        assert_eq!(from_bare.defense(), &defense);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn corruption_is_an_error_not_a_silent_miss() {
        let cache = temp_cache("corrupt");
        let train = TrainConfig::tiny();
        let defense = DefenseKind::Baseline;
        let path = cache
            .store(&tiny_model(defense.clone(), &train), &train, 16, 18, SEED)
            .unwrap();
        // Flip one byte in the middle of the weights.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            cache.load(&defense, &train, 16, 18, SEED),
            Err(DefenseError::Tensor(TensorError::ChecksumMismatch { .. }))
        ));
        // Truncation is typed too.
        std::fs::write(&path, &bytes[..mid]).unwrap();
        assert!(cache.load(&defense, &train, 16, 18, SEED).is_err());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }
}
