//! Randomized-smoothing prediction: majority vote over Gaussian-noised
//! copies of the input (Cohen et al., used as a baseline defense in
//! Table II).

use blurnet_nn::Sequential;
use blurnet_tensor::Tensor;
use rand::Rng;

use crate::{DefenseError, Result};

/// Predicts the class of one `[C, H, W]` image by majority vote over
/// `samples` Gaussian-noised copies with standard deviation `sigma`.
///
/// # Errors
///
/// Returns [`DefenseError::BadConfig`] for non-positive `sigma` or zero
/// `samples`, and propagates network errors.
pub fn smoothed_predict<R: Rng + ?Sized>(
    net: &mut Sequential,
    image: &Tensor,
    sigma: f32,
    samples: usize,
    rng: &mut R,
) -> Result<usize> {
    if sigma <= 0.0 || samples == 0 {
        return Err(DefenseError::BadConfig(format!(
            "smoothing needs positive sigma and samples, got sigma={sigma}, samples={samples}"
        )));
    }
    // Draw the whole noise batch in one tensor (same RNG stream as the old
    // per-sample loop) and add the image in place: one allocation and one
    // pass instead of `samples` temporary tensors plus a stack copy.
    let dims = image.dims();
    let mut batch_dims = Vec::with_capacity(dims.len() + 1);
    batch_dims.push(samples);
    batch_dims.extend_from_slice(dims);
    let mut batch = Tensor::rand_normal(&batch_dims, 0.0, sigma, rng);
    let len = image.len();
    for sample in batch.data_mut().chunks_mut(len) {
        for (noisy, &clean) in sample.iter_mut().zip(image.data().iter()) {
            *noisy = (*noisy + clean).clamp(0.0, 1.0);
        }
    }
    let preds = net.predict(&batch)?;
    let mut votes = std::collections::HashMap::new();
    for p in preds {
        *votes.entry(p).or_insert(0usize) += 1;
    }
    Ok(votes
        .into_iter()
        .max_by_key(|&(class, count)| (count, std::cmp::Reverse(class)))
        .map(|(class, _)| class)
        .unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_nn::LisaCnn;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn smoothing_returns_a_valid_class_and_is_stable_for_tiny_noise() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = LisaCnn::new(18)
            .input_size(16)
            .conv1_filters(4)
            .build(&mut rng)
            .unwrap();
        let image = Tensor::full(&[3, 16, 16], 0.4);
        let plain = net
            .predict(&Tensor::stack(std::slice::from_ref(&image)).unwrap())
            .unwrap()[0];
        let smoothed = smoothed_predict(&mut net, &image, 1e-4, 11, &mut rng).unwrap();
        assert!(smoothed < 18);
        // With near-zero noise the vote must match the plain prediction.
        assert_eq!(smoothed, plain);
    }

    #[test]
    fn parameter_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = LisaCnn::new(18)
            .input_size(16)
            .conv1_filters(4)
            .build(&mut rng)
            .unwrap();
        let image = Tensor::zeros(&[3, 16, 16]);
        assert!(smoothed_predict(&mut net, &image, 0.0, 4, &mut rng).is_err());
        assert!(smoothed_predict(&mut net, &image, 0.1, 0, &mut rng).is_err());
    }
}
