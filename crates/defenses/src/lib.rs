//! The BlurNet defenses and their training regimes.
//!
//! The paper proposes low-pass filtering of the **first-layer feature
//! maps**, realized three ways:
//!
//! 1. a fixed depthwise blur layer after the first convolution, compared
//!    against blurring the input (Section III, Table I) — [`filtering`];
//! 2. a trainable depthwise layer regularized with an L∞ penalty on its
//!    kernels (Eq. 2) — [`regularizers`];
//! 3. training-time regularization of the feature maps themselves with
//!    total variation (Eq. 4) or generalized Tikhonov operators
//!    (Eq. 6–7) — [`regularizers`].
//!
//! Baseline defenses from the literature used for comparison — Gaussian
//! augmentation, randomized smoothing and PGD adversarial training — are in
//! [`augment`], [`smoothing`] and the trainer.
//!
//! [`DefenseKind`] enumerates every defended model evaluated in Tables
//! I–V; [`train_defended_model`] builds and trains it; [`DefendedModel`]
//! wraps the result behind a single classify/evaluate interface.

#![warn(missing_docs)]

pub mod augment;
pub mod cache;
pub mod config;
pub mod disk;
mod error;
pub mod filtering;
pub mod model;
pub mod persist;
pub mod regularizers;
pub mod smoothing;
pub mod trainer;

pub use cache::VariantCache;
pub use config::DefenseKind;
pub use disk::{model_from_file_bytes, DiskVariantCache};
pub use error::DefenseError;
pub use filtering::{filter_image, filter_images};
pub use model::{DefendedModel, TrainingReport, SMOOTHING_SEED};
pub use persist::{model_from_bytes, model_to_bytes};
pub use regularizers::FeatureRegularizer;
pub use smoothing::smoothed_predict;
pub use trainer::{build_architecture, train_defended_model, TrainConfig};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, DefenseError>;
