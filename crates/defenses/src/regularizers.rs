//! Training-time regularizers that push the first convolution towards
//! low-pass behaviour.
//!
//! Three families from Section IV of the paper:
//!
//! * **L∞ on depthwise kernels** (Eq. 2) — encourages the inserted
//!   depthwise layer's taps to take similar (small) values, i.e. to act
//!   like a blur;
//! * **total variation of the feature maps** (Eq. 4) — penalizes spatial
//!   spikes in the first-layer activations directly;
//! * **generalized Tikhonov** (Eq. 6–7) — quadratic penalties `‖L·F‖²`
//!   with a high-frequency-extracting or pseudoinverse-difference operator.

use blurnet_nn::{LayerKind, LisaCnnConfig, Sequential};
use blurnet_signal::{total_variation_batch, tv_gradient_batch, OperatorPenalty};
use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{DefenseError, DefenseKind, Result};

/// A regularizer evaluated (and differentiated) every training step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FeatureRegularizer {
    /// No extra loss term.
    None,
    /// `α Σ_j ‖W_depthwise[:,:,j]‖∞` on the inserted depthwise layer.
    LinfDepthwise {
        /// Regularization strength.
        alpha: f32,
        /// Index of the depthwise layer in the network.
        layer_index: usize,
    },
    /// `α_TV / (N·K) Σ TV(F)` on the feature maps at `layer_index`.
    TotalVariation {
        /// Regularization strength.
        alpha: f32,
        /// Index of the activation the penalty applies to.
        layer_index: usize,
    },
    /// `α / (N·K) Σ ‖L·F‖²` on the feature maps at `layer_index`.
    Operator {
        /// Regularization strength.
        alpha: f32,
        /// Index of the activation the penalty applies to.
        layer_index: usize,
        /// The operator penalty (`L_hf` or `L_diff⁺`).
        penalty: OperatorPenalty,
    },
}

impl FeatureRegularizer {
    /// Builds the regularizer matching a [`DefenseKind`] for a network with
    /// the given architecture. Defenses without a training-time feature
    /// regularizer map to [`FeatureRegularizer::None`].
    ///
    /// # Errors
    ///
    /// Returns an error if the defense parameters are invalid for the
    /// architecture (e.g. a Tikhonov window wider than the feature maps).
    pub fn from_defense(defense: &DefenseKind, arch: &LisaCnnConfig) -> Result<Self> {
        let feature_index = arch.feature_layer_index();
        let extent = arch.feature_map_extent();
        match defense {
            DefenseKind::DepthwiseLinf { alpha, .. } => {
                let layer_index = arch.filter_layer_index().ok_or_else(|| {
                    DefenseError::BadConfig(
                        "DepthwiseLinf defense requires a depthwise filter layer".into(),
                    )
                })?;
                Ok(FeatureRegularizer::LinfDepthwise {
                    alpha: *alpha,
                    layer_index,
                })
            }
            DefenseKind::TotalVariation { alpha } => Ok(FeatureRegularizer::TotalVariation {
                alpha: *alpha,
                layer_index: feature_index,
            }),
            DefenseKind::TikhonovHf { alpha, window } => Ok(FeatureRegularizer::Operator {
                alpha: *alpha,
                layer_index: feature_index,
                penalty: OperatorPenalty::high_frequency(extent, *window)?,
            }),
            DefenseKind::TikhonovPseudo { alpha } => Ok(FeatureRegularizer::Operator {
                alpha: *alpha,
                layer_index: feature_index,
                penalty: OperatorPenalty::pseudo_difference(extent, 1e-3)?,
            }),
            _ => Ok(FeatureRegularizer::None),
        }
    }

    /// Whether the training loop must collect intermediate activations for
    /// this regularizer.
    pub fn needs_activations(&self) -> bool {
        matches!(
            self,
            FeatureRegularizer::TotalVariation { .. } | FeatureRegularizer::Operator { .. }
        )
    }

    /// Evaluates the regularizer for the current step.
    ///
    /// Returns the penalty value (already scaled by α) and the list of
    /// activation-gradient injections to pass to
    /// [`Sequential::backward_with_injection`]. The L∞ variant instead
    /// accumulates its sub-gradient directly into the depthwise layer's
    /// weight gradients.
    ///
    /// # Errors
    ///
    /// Returns an error if layer indices or activation shapes do not match
    /// the network.
    pub fn apply(
        &self,
        net: &mut Sequential,
        activations: &[Tensor],
    ) -> Result<(f32, Vec<(usize, Tensor)>)> {
        match self {
            FeatureRegularizer::None => Ok((0.0, Vec::new())),
            FeatureRegularizer::LinfDepthwise { alpha, layer_index } => {
                let layer = net.layer_mut(*layer_index).ok_or_else(|| {
                    DefenseError::BadConfig(format!("no layer at index {layer_index}"))
                })?;
                let LayerKind::Depthwise(depthwise) = layer else {
                    return Err(DefenseError::BadConfig(format!(
                        "layer {layer_index} is not a depthwise layer"
                    )));
                };
                let value = alpha * depthwise.linf_penalty();
                let grad = depthwise.linf_penalty_grad();
                depthwise.accumulate_weight_grad(&grad, *alpha)?;
                Ok((value, Vec::new()))
            }
            FeatureRegularizer::TotalVariation { alpha, layer_index } => {
                let feature = activation(activations, *layer_index)?;
                let value = alpha * total_variation_batch(feature)?;
                let grad = tv_gradient_batch(feature)?.scale(*alpha);
                Ok((value, vec![(*layer_index, grad)]))
            }
            FeatureRegularizer::Operator {
                alpha,
                layer_index,
                penalty,
            } => {
                let feature = activation(activations, *layer_index)?;
                let value = alpha * penalty.value_batch(feature)?;
                let grad = penalty.grad_batch(feature)?.scale(*alpha);
                Ok((value, vec![(*layer_index, grad)]))
            }
        }
    }
}

fn activation(activations: &[Tensor], index: usize) -> Result<&Tensor> {
    activations.get(index).ok_or_else(|| {
        DefenseError::BadConfig(format!(
            "activation index {index} out of range ({} collected)",
            activations.len()
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blurnet_nn::{Layer, LisaCnn};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_builder(defense: &DefenseKind) -> LisaCnn {
        let base = LisaCnn::new(18).input_size(16).conv1_filters(4);
        match defense {
            DefenseKind::DepthwiseLinf { kernel, .. } => base.with_trainable_depthwise(*kernel),
            _ => base,
        }
    }

    #[test]
    fn mapping_from_defense_kinds() {
        let arch_plain = tiny_builder(&DefenseKind::Baseline).config().clone();
        assert!(matches!(
            FeatureRegularizer::from_defense(&DefenseKind::Baseline, &arch_plain).unwrap(),
            FeatureRegularizer::None
        ));
        assert!(matches!(
            FeatureRegularizer::from_defense(
                &DefenseKind::TotalVariation { alpha: 1e-4 },
                &arch_plain
            )
            .unwrap(),
            FeatureRegularizer::TotalVariation { .. }
        ));
        assert!(matches!(
            FeatureRegularizer::from_defense(
                &DefenseKind::TikhonovHf {
                    alpha: 1e-4,
                    window: 3
                },
                &arch_plain
            )
            .unwrap(),
            FeatureRegularizer::Operator { .. }
        ));
        // DepthwiseLinf needs the filter layer to exist.
        assert!(FeatureRegularizer::from_defense(
            &DefenseKind::DepthwiseLinf {
                kernel: 5,
                alpha: 0.1
            },
            &arch_plain
        )
        .is_err());
        let defense = DefenseKind::DepthwiseLinf {
            kernel: 5,
            alpha: 0.1,
        };
        let arch_dw = tiny_builder(&defense).config().clone();
        assert!(matches!(
            FeatureRegularizer::from_defense(&defense, &arch_dw).unwrap(),
            FeatureRegularizer::LinfDepthwise { .. }
        ));
    }

    #[test]
    fn tv_regularizer_produces_injection_with_feature_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let builder = tiny_builder(&DefenseKind::Baseline);
        let mut net = builder.build(&mut rng).unwrap();
        let reg = FeatureRegularizer::from_defense(
            &DefenseKind::TotalVariation { alpha: 1e-2 },
            builder.config(),
        )
        .unwrap();
        assert!(reg.needs_activations());
        let x = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let (_, acts) = net.forward_collect(&x, true).unwrap();
        let (value, injections) = reg.apply(&mut net, &acts).unwrap();
        assert!(value > 0.0);
        assert_eq!(injections.len(), 1);
        assert_eq!(injections[0].1.dims(), acts[0].dims());
    }

    #[test]
    fn linf_regularizer_accumulates_into_depthwise_grads() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let defense = DefenseKind::DepthwiseLinf {
            kernel: 3,
            alpha: 0.5,
        };
        let builder = tiny_builder(&defense);
        let mut net = builder.build(&mut rng).unwrap();
        let reg = FeatureRegularizer::from_defense(&defense, builder.config()).unwrap();
        assert!(!reg.needs_activations());
        net.zero_grads();
        let (value, injections) = reg.apply(&mut net, &[]).unwrap();
        assert!(value > 0.0);
        assert!(injections.is_empty());
        // The depthwise layer (layer index 1) must now hold non-zero grads.
        let layer_index = builder.config().filter_layer_index().unwrap();
        let LayerKind::Depthwise(dw) = net.layer_mut(layer_index).unwrap() else {
            panic!("expected depthwise layer");
        };
        assert!(dw.param_grad_pairs()[0].1.l1_norm() > 0.0);
    }

    #[test]
    fn operator_regularizer_injection_matches_feature_extent() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let builder = tiny_builder(&DefenseKind::Baseline);
        let mut net = builder.build(&mut rng).unwrap();
        let reg = FeatureRegularizer::from_defense(
            &DefenseKind::TikhonovPseudo { alpha: 1e-3 },
            builder.config(),
        )
        .unwrap();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
        let (_, acts) = net.forward_collect(&x, true).unwrap();
        let (value, injections) = reg.apply(&mut net, &acts).unwrap();
        assert!(value >= 0.0);
        assert_eq!(injections[0].1.dims(), &[1, 4, 8, 8]);
    }

    #[test]
    fn bad_indices_are_reported() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = LisaCnn::new(4)
            .input_size(16)
            .conv1_filters(4)
            .build(&mut rng)
            .unwrap();
        let reg = FeatureRegularizer::TotalVariation {
            alpha: 1.0,
            layer_index: 42,
        };
        assert!(reg.apply(&mut net, &[]).is_err());
        let reg = FeatureRegularizer::LinfDepthwise {
            alpha: 1.0,
            layer_index: 0,
        };
        // Layer 0 is a Conv2d, not a depthwise layer.
        assert!(reg.apply(&mut net, &[]).is_err());
    }
}
