//! Input-space low-pass filtering (the defense BlurNet argues *against* in
//! Table I, kept as the comparison baseline).
//!
//! Box kernels are separable, so both entry points ride the backend
//! blur's two-pass O(k)-per-pixel fast path with rayon-parallel planes,
//! dispatched through [`blurnet_tensor::Backend`].

use blurnet_signal::box_kernel;
use blurnet_tensor::{default_backend, Tensor};

use crate::{DefenseError, Result};

fn check_kernel(kernel: usize) -> Result<()> {
    if kernel < 2 || kernel.is_multiple_of(2) {
        return Err(DefenseError::BadConfig(format!(
            "blur kernel must be odd and >= 3, got {kernel}"
        )));
    }
    Ok(())
}

/// Blurs a single `[C, H, W]` image with a normalized `kernel × kernel` box
/// filter.
///
/// # Errors
///
/// Returns an error for even kernels or malformed images.
pub fn filter_image(image: &Tensor, kernel: usize) -> Result<Tensor> {
    check_kernel(kernel)?;
    Ok(default_backend().blur_image(image, &box_kernel(kernel))?)
}

/// Blurs every image of an `[N, C, H, W]` batch.
///
/// # Errors
///
/// Returns an error for even kernels or malformed batches.
pub fn filter_images(batch: &Tensor, kernel: usize) -> Result<Tensor> {
    check_kernel(kernel)?;
    Ok(default_backend().blur_batch(batch, &box_kernel(kernel))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtering_smooths_a_spiky_image() {
        let mut image = Tensor::full(&[3, 16, 16], 0.5);
        image.set(&[0, 8, 8], 1.0).unwrap();
        let filtered = filter_image(&image, 5).unwrap();
        assert!(filtered.get(&[0, 8, 8]).unwrap() < 0.6);
        assert_eq!(filtered.dims(), image.dims());
    }

    #[test]
    fn batch_filtering_matches_per_image_filtering() {
        let a = Tensor::full(&[3, 8, 8], 0.3);
        let b = Tensor::full(&[3, 8, 8], 0.7);
        let batch = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        let filtered = filter_images(&batch, 3).unwrap();
        let fa = filter_image(&a, 3).unwrap();
        assert_eq!(filtered.batch_item(0).unwrap(), fa);
    }

    #[test]
    fn kernel_validation() {
        let image = Tensor::zeros(&[3, 8, 8]);
        assert!(filter_image(&image, 4).is_err());
        assert!(filter_image(&image, 1).is_err());
        assert!(filter_images(&Tensor::zeros(&[1, 3, 8, 8]), 2).is_err());
    }
}
