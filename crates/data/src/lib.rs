//! Synthetic LISA-like traffic-sign dataset, RP2 sticker masks and
//! transform ensembles.
//!
//! The original BlurNet evaluation uses the LISA US traffic-sign dataset
//! (top 18 classes) plus the 40 perturbed stop-sign photos published with
//! the RP2 attack. Neither can be redistributed here and no image-decoding
//! crates are allowed, so this crate generates the closest synthetic
//! equivalent: procedurally rendered 32×32 RGB signs with class-specific
//! shapes, palettes and glyph patterns plus background, position, scale and
//! brightness jitter. What the defense relies on — smooth sign regions
//! against which a mask-constrained sticker perturbation is a localized,
//! high-frequency anomaly — is preserved (see DESIGN.md, substitution 1).
//!
//! # Example
//!
//! ```
//! use blurnet_data::{DatasetConfig, SignDataset};
//!
//! let dataset = SignDataset::generate(&DatasetConfig::tiny(), 7)?;
//! assert_eq!(dataset.num_classes(), 18);
//! assert!(dataset.train_len() > 0);
//! # Ok::<(), blurnet_data::DataError>(())
//! ```

#![warn(missing_docs)]

pub mod classes;
pub mod dataset;
mod error;
pub mod mask;
pub mod render;
pub mod transform;

pub use classes::{SignClass, SignShape, NUM_CLASSES, STOP_CLASS_ID};
pub use dataset::{Batch, DatasetConfig, SignDataset};
pub use error::DataError;
pub use mask::{mask_coverage, sticker_mask, StickerLayout};
pub use render::{render_sign, RenderJitter};
pub use transform::{apply_transform, sample_transforms, Transform};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;
