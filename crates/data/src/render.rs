//! Procedural traffic-sign renderer.
//!
//! Each sample is a 32×32 (configurable) RGB image in `[0, 1]`: a noisy
//! background, a filled class-specific silhouette with a border, a glyph
//! pattern, and per-sample jitter in position, size, brightness and pixel
//! noise. The renderer is fully deterministic given an RNG, which keeps the
//! dataset reproducible across runs.

use blurnet_tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::classes::{Glyph, SignClass, SignShape};
use crate::Result;

/// Per-sample jitter ranges used when rendering a sign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenderJitter {
    /// Maximum absolute centre offset as a fraction of the image extent.
    pub max_offset: f32,
    /// Minimum sign radius as a fraction of the half-extent.
    pub min_radius: f32,
    /// Maximum sign radius as a fraction of the half-extent.
    pub max_radius: f32,
    /// Brightness multiplier range `[1 - b, 1 + b]`.
    pub brightness: f32,
    /// Standard deviation of the additive pixel noise.
    pub noise_std: f32,
}

impl Default for RenderJitter {
    fn default() -> Self {
        RenderJitter {
            max_offset: 0.08,
            min_radius: 0.68,
            max_radius: 0.88,
            brightness: 0.25,
            noise_std: 0.02,
        }
    }
}

impl RenderJitter {
    /// No jitter at all — identical canonical renders for every call.
    pub fn none() -> Self {
        RenderJitter {
            max_offset: 0.0,
            min_radius: 0.8,
            max_radius: 0.8,
            brightness: 0.0,
            noise_std: 0.0,
        }
    }
}

/// Whether a pixel at offset (`dx`, `dy`) from the sign centre (in units of
/// the sign radius) lies inside the silhouette.
fn inside_shape(shape: SignShape, dx: f32, dy: f32) -> bool {
    match shape {
        SignShape::Circle => dx * dx + dy * dy <= 1.0,
        SignShape::Rectangle => dx.abs() <= 0.78 && dy.abs() <= 1.0,
        SignShape::Diamond => dx.abs() + dy.abs() <= 1.0,
        SignShape::Octagon => {
            // Regular octagon: |x| <= 1, |y| <= 1, |x| + |y| <= sqrt(2).
            dx.abs() <= 0.92 && dy.abs() <= 0.92 && dx.abs() + dy.abs() <= 1.30
        }
        SignShape::TriangleDown => {
            // Downward triangle with apex at the bottom.
            (-0.85..=0.85).contains(&dy) && dx.abs() <= 0.9 * (0.85 - dy) / 1.7 * 2.0
        }
    }
}

/// Whether a pixel belongs to the class glyph (in sign-relative units).
fn inside_glyph(glyph: Glyph, dx: f32, dy: f32) -> bool {
    match glyph {
        Glyph::None => false,
        Glyph::HorizontalBar => dy.abs() <= 0.16 && dx.abs() <= 0.62,
        Glyph::VerticalBar => dx.abs() <= 0.16 && dy.abs() <= 0.62,
        Glyph::DoubleBar => (dy + 0.33).abs() <= 0.12 || (dy - 0.33).abs() <= 0.12,
        Glyph::Cross => {
            (dx.abs() <= 0.14 && dy.abs() <= 0.6) || (dy.abs() <= 0.14 && dx.abs() <= 0.6)
        }
        Glyph::DiagonalDown => (dy - dx).abs() <= 0.18 && dx.abs() <= 0.65 && dy.abs() <= 0.65,
        Glyph::DiagonalUp => (dy + dx).abs() <= 0.18 && dx.abs() <= 0.65 && dy.abs() <= 0.65,
        Glyph::Dot => dx * dx + dy * dy <= 0.12,
        Glyph::ChevronRight => {
            (dy.abs() - dx).abs() <= 0.16 && (-0.4..=0.6).contains(&dx) && dy.abs() <= 0.6
        }
        Glyph::ChevronLeft => {
            (dy.abs() + dx).abs() <= 0.16 && (-0.6..=0.4).contains(&dx) && dy.abs() <= 0.6
        }
    }
}

/// Renders one sign of the given class as a `[3, size, size]` tensor with
/// values in `[0, 1]`.
///
/// # Errors
///
/// Propagates tensor construction errors (they cannot occur for `size > 0`).
pub fn render_sign<R: Rng + ?Sized>(
    class: SignClass,
    size: usize,
    jitter: RenderJitter,
    rng: &mut R,
) -> Result<Tensor> {
    let half = size as f32 / 2.0;
    // Background: a muted grey-blue road scene tone with slight variation.
    let bg_base = [
        0.35 + rng.gen_range(-0.1..0.1),
        0.38 + rng.gen_range(-0.1..0.1),
        0.42 + rng.gen_range(-0.1..0.1),
    ];
    let cx = half + rng.gen_range(-jitter.max_offset..=jitter.max_offset.max(1e-6)) * size as f32;
    let cy = half + rng.gen_range(-jitter.max_offset..=jitter.max_offset.max(1e-6)) * size as f32;
    let radius = rng.gen_range(jitter.min_radius..=jitter.max_radius) * half;
    let brightness = 1.0 + rng.gen_range(-jitter.brightness..=jitter.brightness.max(1e-6));
    let border_color = match class.shape {
        SignShape::TriangleDown | SignShape::Octagon => [0.95, 0.95, 0.95],
        _ => [0.08, 0.08, 0.08],
    };

    let mut data = vec![0.0f32; 3 * size * size];
    for y in 0..size {
        for x in 0..size {
            let dx = (x as f32 + 0.5 - cx) / radius;
            let dy = (y as f32 + 0.5 - cy) / radius;
            let mut color = bg_base;
            if inside_shape(class.shape, dx, dy) {
                // Border ring: the outer 18% of the silhouette.
                let inner = inside_shape(class.shape, dx / 0.82, dy / 0.82);
                if !inner {
                    color = border_color;
                } else if inside_glyph(class.glyph, dx, dy) {
                    color = class.glyph_color;
                } else {
                    color = class.fill;
                }
            }
            for c in 0..3 {
                let noise = if jitter.noise_std > 0.0 {
                    // Cheap uniform noise approximating the capture noise.
                    rng.gen_range(-jitter.noise_std..=jitter.noise_std) * 1.5
                } else {
                    0.0
                };
                let v = (color[c] * brightness + noise).clamp(0.0, 1.0);
                data[c * size * size + y * size + x] = v;
            }
        }
    }
    Ok(Tensor::from_vec(data, &[3, size, size])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{CLASSES, STOP_CLASS_ID};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn renders_are_in_range_and_right_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for class in CLASSES {
            let img = render_sign(class, 32, RenderJitter::default(), &mut rng).unwrap();
            assert_eq!(img.dims(), &[3, 32, 32]);
            assert!(img.min().unwrap() >= 0.0);
            assert!(img.max().unwrap() <= 1.0);
        }
    }

    #[test]
    fn rendering_is_deterministic_per_seed() {
        let class = SignClass::from_id(STOP_CLASS_ID).unwrap();
        let a = render_sign(
            class,
            32,
            RenderJitter::default(),
            &mut ChaCha8Rng::seed_from_u64(5),
        )
        .unwrap();
        let b = render_sign(
            class,
            32,
            RenderJitter::default(),
            &mut ChaCha8Rng::seed_from_u64(5),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stop_sign_is_predominantly_red() {
        let class = SignClass::from_id(STOP_CLASS_ID).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let img = render_sign(class, 32, RenderJitter::none(), &mut rng).unwrap();
        // Compare mean red vs mean blue in the central region.
        let mut red = 0.0;
        let mut blue = 0.0;
        for y in 12..20 {
            for x in 12..20 {
                red += img.get(&[0, y, x]).unwrap();
                blue += img.get(&[2, y, x]).unwrap();
            }
        }
        assert!(
            red > 1.5 * blue,
            "stop face should be red (r={red}, b={blue})"
        );
    }

    #[test]
    fn different_classes_render_differently() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let jitter = RenderJitter::none();
        let stop = render_sign(SignClass::from_id(14).unwrap(), 32, jitter, &mut rng).unwrap();
        let yield_sign =
            render_sign(SignClass::from_id(17).unwrap(), 32, jitter, &mut rng).unwrap();
        let diff = stop.sub(&yield_sign).unwrap().l1_norm();
        assert!(diff > 50.0, "distinct classes must differ, diff={diff}");
    }

    #[test]
    fn jittered_renders_of_the_same_class_vary() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let class = SignClass::from_id(9).unwrap();
        let a = render_sign(class, 32, RenderJitter::default(), &mut rng).unwrap();
        let b = render_sign(class, 32, RenderJitter::default(), &mut rng).unwrap();
        assert!(a.sub(&b).unwrap().l1_norm() > 1.0);
    }
}
