//! The 18 LISA sign classes used by the paper and their synthetic visual
//! identity (shape, palette and glyph pattern).

use serde::{Deserialize, Serialize};

use crate::{DataError, Result};

/// Number of sign classes (the paper keeps the 18 most frequent LISA
/// classes).
pub const NUM_CLASSES: usize = 18;

/// Class identifier of the stop sign — the attack target substrate of every
/// experiment in the paper.
pub const STOP_CLASS_ID: usize = 14;

/// Geometric silhouette of a sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignShape {
    /// Eight-sided stop sign.
    Octagon,
    /// Diamond (square rotated 45°) warning sign.
    Diamond,
    /// Upright rectangle (regulatory / speed limit).
    Rectangle,
    /// Downward-pointing triangle (yield).
    TriangleDown,
    /// Circle.
    Circle,
}

/// Simple glyph pattern drawn inside the sign to make classes visually
/// distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Glyph {
    /// A single horizontal bar.
    HorizontalBar,
    /// A single vertical bar.
    VerticalBar,
    /// Two horizontal bars.
    DoubleBar,
    /// A plus / cross.
    Cross,
    /// A diagonal stripe from top-left to bottom-right.
    DiagonalDown,
    /// A diagonal stripe from bottom-left to top-right.
    DiagonalUp,
    /// A centred filled square dot.
    Dot,
    /// A chevron pointing right.
    ChevronRight,
    /// A chevron pointing left.
    ChevronLeft,
    /// No glyph (blank face).
    None,
}

/// Static description of one sign class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignClass {
    /// Class identifier in `0..NUM_CLASSES`.
    pub id: usize,
    /// LISA class name.
    pub name: &'static str,
    /// Sign silhouette.
    pub shape: SignShape,
    /// Face (fill) colour, RGB in `[0, 1]`.
    pub fill: [f32; 3],
    /// Glyph colour, RGB in `[0, 1]`.
    pub glyph_color: [f32; 3],
    /// Glyph pattern.
    pub glyph: Glyph,
}

const YELLOW: [f32; 3] = [0.95, 0.80, 0.15];
const RED: [f32; 3] = [0.80, 0.10, 0.10];
const WHITE: [f32; 3] = [0.92, 0.92, 0.92];
const ORANGE: [f32; 3] = [0.95, 0.55, 0.10];
const BLACK: [f32; 3] = [0.05, 0.05, 0.05];

/// The full class table, indexed by class id.
pub const CLASSES: [SignClass; NUM_CLASSES] = [
    SignClass {
        id: 0,
        name: "addedLane",
        shape: SignShape::Diamond,
        fill: YELLOW,
        glyph_color: BLACK,
        glyph: Glyph::VerticalBar,
    },
    SignClass {
        id: 1,
        name: "curveLeft",
        shape: SignShape::Diamond,
        fill: YELLOW,
        glyph_color: BLACK,
        glyph: Glyph::ChevronLeft,
    },
    SignClass {
        id: 2,
        name: "curveRight",
        shape: SignShape::Diamond,
        fill: YELLOW,
        glyph_color: BLACK,
        glyph: Glyph::ChevronRight,
    },
    SignClass {
        id: 3,
        name: "dip",
        shape: SignShape::Diamond,
        fill: YELLOW,
        glyph_color: BLACK,
        glyph: Glyph::HorizontalBar,
    },
    SignClass {
        id: 4,
        name: "doNotPass",
        shape: SignShape::Rectangle,
        fill: WHITE,
        glyph_color: BLACK,
        glyph: Glyph::DiagonalDown,
    },
    SignClass {
        id: 5,
        name: "intersection",
        shape: SignShape::Diamond,
        fill: YELLOW,
        glyph_color: BLACK,
        glyph: Glyph::Cross,
    },
    SignClass {
        id: 6,
        name: "keepRight",
        shape: SignShape::Rectangle,
        fill: WHITE,
        glyph_color: BLACK,
        glyph: Glyph::ChevronRight,
    },
    SignClass {
        id: 7,
        name: "laneEnds",
        shape: SignShape::Diamond,
        fill: YELLOW,
        glyph_color: BLACK,
        glyph: Glyph::DiagonalUp,
    },
    SignClass {
        id: 8,
        name: "merge",
        shape: SignShape::Diamond,
        fill: ORANGE,
        glyph_color: BLACK,
        glyph: Glyph::DiagonalDown,
    },
    SignClass {
        id: 9,
        name: "pedestrianCrossing",
        shape: SignShape::Diamond,
        fill: YELLOW,
        glyph_color: BLACK,
        glyph: Glyph::Dot,
    },
    SignClass {
        id: 10,
        name: "school",
        shape: SignShape::Diamond,
        fill: ORANGE,
        glyph_color: BLACK,
        glyph: Glyph::DoubleBar,
    },
    SignClass {
        id: 11,
        name: "signalAhead",
        shape: SignShape::Diamond,
        fill: YELLOW,
        glyph_color: RED,
        glyph: Glyph::Dot,
    },
    SignClass {
        id: 12,
        name: "speedLimit25",
        shape: SignShape::Rectangle,
        fill: WHITE,
        glyph_color: BLACK,
        glyph: Glyph::HorizontalBar,
    },
    SignClass {
        id: 13,
        name: "speedLimit35",
        shape: SignShape::Rectangle,
        fill: WHITE,
        glyph_color: BLACK,
        glyph: Glyph::DoubleBar,
    },
    SignClass {
        id: 14,
        name: "stop",
        shape: SignShape::Octagon,
        fill: RED,
        glyph_color: WHITE,
        glyph: Glyph::HorizontalBar,
    },
    SignClass {
        id: 15,
        name: "stopAhead",
        shape: SignShape::Diamond,
        fill: YELLOW,
        glyph_color: RED,
        glyph: Glyph::Cross,
    },
    SignClass {
        id: 16,
        name: "turnRight",
        shape: SignShape::Rectangle,
        fill: WHITE,
        glyph_color: BLACK,
        glyph: Glyph::VerticalBar,
    },
    SignClass {
        id: 17,
        name: "yield",
        shape: SignShape::TriangleDown,
        fill: WHITE,
        glyph_color: RED,
        glyph: Glyph::None,
    },
];

impl SignClass {
    /// Looks up a class by identifier.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownClass`] for ids `>= NUM_CLASSES`.
    pub fn from_id(id: usize) -> Result<SignClass> {
        CLASSES.get(id).copied().ok_or(DataError::UnknownClass(id))
    }

    /// Looks up a class by its LISA name.
    pub fn from_name(name: &str) -> Option<SignClass> {
        CLASSES.iter().copied().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table_is_consistent() {
        assert_eq!(CLASSES.len(), NUM_CLASSES);
        for (i, class) in CLASSES.iter().enumerate() {
            assert_eq!(class.id, i);
        }
        let names: HashSet<_> = CLASSES.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), NUM_CLASSES, "class names must be unique");
    }

    #[test]
    fn visual_identities_are_unique() {
        let identities: HashSet<_> = CLASSES
            .iter()
            .map(|c| {
                (
                    c.shape,
                    c.glyph,
                    (c.fill[0] * 100.0) as i32,
                    (c.glyph_color[0] * 100.0) as i32,
                )
            })
            .collect();
        assert_eq!(
            identities.len(),
            NUM_CLASSES,
            "each class must look distinct"
        );
    }

    #[test]
    fn stop_class_is_the_octagon() {
        let stop = SignClass::from_id(STOP_CLASS_ID).unwrap();
        assert_eq!(stop.name, "stop");
        assert_eq!(stop.shape, SignShape::Octagon);
        assert_eq!(SignClass::from_name("stop").unwrap().id, STOP_CLASS_ID);
    }

    #[test]
    fn unknown_lookups_fail() {
        assert!(SignClass::from_id(NUM_CLASSES).is_err());
        assert!(SignClass::from_name("not-a-sign").is_none());
    }
}
