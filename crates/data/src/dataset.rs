//! The synthetic sign dataset: train/test splits, batching and the
//! stop-sign evaluation set used by every attack experiment.

use blurnet_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::classes::{SignClass, NUM_CLASSES, STOP_CLASS_ID};
use crate::render::{render_sign, RenderJitter};
use crate::{DataError, Result};

/// Size and jitter parameters of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Square image extent in pixels.
    pub image_size: usize,
    /// Training samples rendered per class.
    pub train_per_class: usize,
    /// Test samples rendered per class.
    pub test_per_class: usize,
    /// Number of clean stop-sign images in the attack evaluation set
    /// (the paper uses the 40 images released with RP2).
    pub stop_eval_count: usize,
    /// Render jitter applied to every sample.
    pub jitter: RenderJitter,
}

impl DatasetConfig {
    /// Minimal configuration for unit tests (a handful of images).
    pub fn tiny() -> Self {
        DatasetConfig {
            image_size: 32,
            train_per_class: 4,
            test_per_class: 2,
            stop_eval_count: 4,
            jitter: RenderJitter::default(),
        }
    }

    /// Small configuration for smoke-level experiments.
    pub fn smoke() -> Self {
        DatasetConfig {
            image_size: 32,
            train_per_class: 12,
            test_per_class: 4,
            stop_eval_count: 8,
            jitter: RenderJitter::default(),
        }
    }

    /// Default configuration for the reproduced experiments.
    pub fn standard() -> Self {
        DatasetConfig {
            image_size: 32,
            train_per_class: 40,
            test_per_class: 10,
            stop_eval_count: 40,
            jitter: RenderJitter::default(),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.image_size < 8 {
            return Err(DataError::BadConfig(format!(
                "image size {} too small",
                self.image_size
            )));
        }
        if self.train_per_class == 0 || self.test_per_class == 0 || self.stop_eval_count == 0 {
            return Err(DataError::BadConfig(
                "per-class and stop-eval counts must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig::standard()
    }
}

/// A batch of images and labels ready for the network.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Images stacked into `[B, 3, H, W]`.
    pub images: Tensor,
    /// One label per batch row.
    pub labels: Vec<usize>,
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct SignDataset {
    config: DatasetConfig,
    train_images: Vec<Tensor>,
    train_labels: Vec<usize>,
    test_images: Vec<Tensor>,
    test_labels: Vec<usize>,
    stop_eval: Vec<Tensor>,
}

impl SignDataset {
    /// Generates a dataset deterministically from a seed.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] for invalid configurations.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut train_images = Vec::with_capacity(NUM_CLASSES * config.train_per_class);
        let mut train_labels = Vec::with_capacity(train_images.capacity());
        let mut test_images = Vec::with_capacity(NUM_CLASSES * config.test_per_class);
        let mut test_labels = Vec::with_capacity(test_images.capacity());
        for id in 0..NUM_CLASSES {
            let class = SignClass::from_id(id)?;
            for _ in 0..config.train_per_class {
                train_images.push(render_sign(
                    class,
                    config.image_size,
                    config.jitter,
                    &mut rng,
                )?);
                train_labels.push(id);
            }
            for _ in 0..config.test_per_class {
                test_images.push(render_sign(
                    class,
                    config.image_size,
                    config.jitter,
                    &mut rng,
                )?);
                test_labels.push(id);
            }
        }
        let stop = SignClass::from_id(STOP_CLASS_ID)?;
        let stop_eval = (0..config.stop_eval_count)
            .map(|_| render_sign(stop, config.image_size, config.jitter, &mut rng))
            .collect::<Result<Vec<_>>>()?;
        Ok(SignDataset {
            config: *config,
            train_images,
            train_labels,
            test_images,
            test_labels,
            stop_eval,
        })
    }

    /// The configuration the dataset was generated with.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Number of classes (always [`NUM_CLASSES`]).
    pub fn num_classes(&self) -> usize {
        NUM_CLASSES
    }

    /// Square image extent.
    pub fn image_size(&self) -> usize {
        self.config.image_size
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_images.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_images.len()
    }

    /// The clean stop-sign evaluation images (the RP2 "40 stop signs"
    /// stand-in).
    pub fn stop_eval_images(&self) -> &[Tensor] {
        &self.stop_eval
    }

    /// Shuffled training mini-batches for one epoch.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if `batch_size` is zero.
    pub fn train_batches<R: Rng + ?Sized>(
        &self,
        batch_size: usize,
        rng: &mut R,
    ) -> Result<Vec<Batch>> {
        if batch_size == 0 {
            return Err(DataError::BadConfig("batch size must be non-zero".into()));
        }
        let mut indices: Vec<usize> = (0..self.train_images.len()).collect();
        indices.shuffle(rng);
        let mut batches = Vec::new();
        for chunk in indices.chunks(batch_size) {
            let images: Vec<Tensor> = chunk
                .iter()
                .map(|&i| self.train_images[i].clone())
                .collect();
            let labels: Vec<usize> = chunk.iter().map(|&i| self.train_labels[i]).collect();
            batches.push(Batch {
                images: Tensor::stack(&images)?,
                labels,
            });
        }
        Ok(batches)
    }

    /// The whole test split as a single batch.
    ///
    /// # Errors
    ///
    /// Propagates tensor stacking errors (cannot occur for valid configs).
    pub fn test_batch(&self) -> Result<Batch> {
        Ok(Batch {
            images: Tensor::stack(&self.test_images)?,
            labels: self.test_labels.clone(),
        })
    }

    /// A batch view of the stop-sign evaluation set with stop labels.
    ///
    /// # Errors
    ///
    /// Propagates tensor stacking errors (cannot occur for valid configs).
    pub fn stop_eval_batch(&self) -> Result<Batch> {
        Ok(Batch {
            images: Tensor::stack(&self.stop_eval)?,
            labels: vec![STOP_CLASS_ID; self.stop_eval.len()],
        })
    }

    /// Individual training sample accessor (image, label).
    pub fn train_sample(&self, index: usize) -> Option<(&Tensor, usize)> {
        self.train_images
            .get(index)
            .map(|img| (img, self.train_labels[index]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_counts_and_shapes() {
        let ds = SignDataset::generate(&DatasetConfig::tiny(), 3).unwrap();
        assert_eq!(ds.train_len(), NUM_CLASSES * 4);
        assert_eq!(ds.test_len(), NUM_CLASSES * 2);
        assert_eq!(ds.stop_eval_images().len(), 4);
        assert_eq!(ds.num_classes(), NUM_CLASSES);
        let (img, label) = ds.train_sample(0).unwrap();
        assert_eq!(img.dims(), &[3, 32, 32]);
        assert!(label < NUM_CLASSES);
        assert!(ds.train_sample(10_000).is_none());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SignDataset::generate(&DatasetConfig::tiny(), 11).unwrap();
        let b = SignDataset::generate(&DatasetConfig::tiny(), 11).unwrap();
        let c = SignDataset::generate(&DatasetConfig::tiny(), 12).unwrap();
        assert_eq!(a.train_sample(5).unwrap().0, b.train_sample(5).unwrap().0);
        assert_ne!(a.train_sample(5).unwrap().0, c.train_sample(5).unwrap().0);
    }

    #[test]
    fn batches_cover_the_whole_training_set() {
        let ds = SignDataset::generate(&DatasetConfig::tiny(), 0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let batches = ds.train_batches(16, &mut rng).unwrap();
        let total: usize = batches.iter().map(|b| b.labels.len()).sum();
        assert_eq!(total, ds.train_len());
        for batch in &batches {
            assert_eq!(batch.images.dims()[0], batch.labels.len());
            assert_eq!(&batch.images.dims()[1..], &[3, 32, 32]);
        }
        assert!(ds.train_batches(0, &mut rng).is_err());
    }

    #[test]
    fn test_batch_is_balanced() {
        let ds = SignDataset::generate(&DatasetConfig::tiny(), 0).unwrap();
        let test = ds.test_batch().unwrap();
        let mut counts = [0usize; NUM_CLASSES];
        for &l in &test.labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 2));
    }

    #[test]
    fn stop_eval_set_is_all_stop_signs() {
        let ds = SignDataset::generate(&DatasetConfig::tiny(), 0).unwrap();
        let batch = ds.stop_eval_batch().unwrap();
        assert!(batch.labels.iter().all(|&l| l == STOP_CLASS_ID));
        assert_eq!(batch.images.dims()[0], 4);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut bad = DatasetConfig::tiny();
        bad.train_per_class = 0;
        assert!(SignDataset::generate(&bad, 0).is_err());
        let mut bad = DatasetConfig::tiny();
        bad.image_size = 4;
        assert!(SignDataset::generate(&bad, 0).is_err());
    }
}
