//! RP2 sticker masks.
//!
//! The RP2 threat model constrains the perturbation to lie on the sign
//! itself, applied through a binary mask `M_x`. The published attack uses
//! two black-and-white sticker bars across the face of the stop sign; we
//! provide that layout plus a few variants for ablations.

use blurnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{DataError, Result};

/// Sticker placement patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StickerLayout {
    /// Two horizontal bars across the upper and lower face of the sign —
    /// the "graffiti" layout of the RP2 paper.
    TwoBars,
    /// A single horizontal bar across the centre.
    SingleBar,
    /// A small square patch off-centre.
    SmallPatch,
}

/// Builds the binary sticker mask `M_x` as an `[H, W]` tensor of zeros and
/// ones.
///
/// The mask is expressed relative to the sign area (the central region of
/// the rendered image), so the perturbation never touches the background —
/// matching the threat-model constraint that an attacker can only modify
/// the sign.
///
/// # Errors
///
/// Returns [`DataError::BadConfig`] if `h` or `w` is smaller than 8 pixels.
pub fn sticker_mask(h: usize, w: usize, layout: StickerLayout) -> Result<Tensor> {
    if h < 8 || w < 8 {
        return Err(DataError::BadConfig(format!(
            "sticker mask needs at least an 8x8 image, got {h}x{w}"
        )));
    }
    let mut mask = Tensor::zeros(&[h, w]);
    let set_block = |mask: &mut Tensor, y0: usize, y1: usize, x0: usize, x1: usize| {
        for y in y0..y1 {
            for x in x0..x1 {
                mask.set(&[y, x], 1.0).expect("in-bounds mask index");
            }
        }
    };
    match layout {
        StickerLayout::TwoBars => {
            // Bars span the middle ~55% of the width at ~1/3 and ~2/3 height.
            let x0 = (w as f32 * 0.28) as usize;
            let x1 = (w as f32 * 0.72) as usize;
            let bar = (h as f32 * 0.10).max(1.0) as usize;
            let y_top = (h as f32 * 0.30) as usize;
            let y_bot = (h as f32 * 0.60) as usize;
            set_block(&mut mask, y_top, y_top + bar, x0, x1);
            set_block(&mut mask, y_bot, y_bot + bar, x0, x1);
        }
        StickerLayout::SingleBar => {
            let x0 = (w as f32 * 0.28) as usize;
            let x1 = (w as f32 * 0.72) as usize;
            let bar = (h as f32 * 0.12).max(1.0) as usize;
            let y0 = h / 2 - bar / 2;
            set_block(&mut mask, y0, y0 + bar, x0, x1);
        }
        StickerLayout::SmallPatch => {
            let side = (h as f32 * 0.2).max(2.0) as usize;
            let y0 = (h as f32 * 0.35) as usize;
            let x0 = (w as f32 * 0.55) as usize;
            set_block(&mut mask, y0, y0 + side, x0, (x0 + side).min(w));
        }
    }
    Ok(mask)
}

/// Fraction of pixels covered by a mask.
pub fn mask_coverage(mask: &Tensor) -> f32 {
    if mask.is_empty() {
        return 0.0;
    }
    mask.data().iter().filter(|&&v| v > 0.5).count() as f32 / mask.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_are_binary_and_localized() {
        for layout in [
            StickerLayout::TwoBars,
            StickerLayout::SingleBar,
            StickerLayout::SmallPatch,
        ] {
            let mask = sticker_mask(32, 32, layout).unwrap();
            assert!(mask.data().iter().all(|&v| v == 0.0 || v == 1.0));
            let coverage = mask_coverage(&mask);
            assert!(coverage > 0.0, "{layout:?} must cover something");
            assert!(
                coverage < 0.25,
                "{layout:?} must stay a localized sticker, covers {coverage}"
            );
        }
    }

    #[test]
    fn two_bars_has_more_coverage_than_small_patch() {
        let bars = sticker_mask(32, 32, StickerLayout::TwoBars).unwrap();
        let patch = sticker_mask(32, 32, StickerLayout::SmallPatch).unwrap();
        assert!(mask_coverage(&bars) > mask_coverage(&patch));
    }

    #[test]
    fn mask_avoids_image_border() {
        // The sticker must sit on the sign, not the background border.
        let mask = sticker_mask(32, 32, StickerLayout::TwoBars).unwrap();
        for i in 0..32 {
            assert_eq!(mask.get(&[0, i]).unwrap(), 0.0);
            assert_eq!(mask.get(&[31, i]).unwrap(), 0.0);
            assert_eq!(mask.get(&[i, 0]).unwrap(), 0.0);
            assert_eq!(mask.get(&[i, 31]).unwrap(), 0.0);
        }
    }

    #[test]
    fn too_small_images_are_rejected() {
        assert!(sticker_mask(4, 32, StickerLayout::TwoBars).is_err());
        assert!(sticker_mask(32, 4, StickerLayout::SingleBar).is_err());
    }
}
