//! The RP2 alignment/transform ensemble `T_i`.
//!
//! RP2 optimizes one perturbation that survives varying viewing conditions
//! by sampling per-step transforms of the sign image. We model the
//! digital equivalent: integer translation, brightness scaling and additive
//! noise. (Perspective warps of the physical capture pipeline are outside
//! the digital threat model reproduced here; see DESIGN.md substitution 3.)

use blurnet_tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{DataError, Result};

/// One sampled viewing-condition transform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transform {
    /// Horizontal shift in pixels (positive = right).
    pub dx: i32,
    /// Vertical shift in pixels (positive = down).
    pub dy: i32,
    /// Brightness multiplier.
    pub brightness: f32,
}

impl Transform {
    /// The identity transform.
    pub fn identity() -> Self {
        Transform {
            dx: 0,
            dy: 0,
            brightness: 1.0,
        }
    }
}

/// Samples `count` transforms with shifts in `[-max_shift, max_shift]` and
/// brightness in `[1 - b, 1 + b]`. The identity transform is always the
/// first element so the canonical view is covered.
pub fn sample_transforms<R: Rng + ?Sized>(
    count: usize,
    max_shift: i32,
    brightness_jitter: f32,
    rng: &mut R,
) -> Vec<Transform> {
    let mut out = Vec::with_capacity(count.max(1));
    out.push(Transform::identity());
    for _ in 1..count.max(1) {
        out.push(Transform {
            dx: rng.gen_range(-max_shift..=max_shift),
            dy: rng.gen_range(-max_shift..=max_shift),
            brightness: 1.0 + rng.gen_range(-brightness_jitter..=brightness_jitter.max(1e-6)),
        });
    }
    out
}

/// Applies a transform to a `[C, H, W]` image: shift (zero-filled) then
/// brightness scaling, clamped to `[0, 1]`.
///
/// # Errors
///
/// Returns [`DataError::BadConfig`] if the image is not rank 3.
pub fn apply_transform(image: &Tensor, transform: Transform) -> Result<Tensor> {
    if image.shape().rank() != 3 {
        return Err(DataError::BadConfig(format!(
            "expected a [C, H, W] image, got {}",
            image.shape()
        )));
    }
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    let mut out = Tensor::zeros(&[c, h, w]);
    let src = image.data();
    let dst = out.data_mut();
    for ch in 0..c {
        for y in 0..h {
            let sy = y as i32 - transform.dy;
            if sy < 0 || sy >= h as i32 {
                continue;
            }
            for x in 0..w {
                let sx = x as i32 - transform.dx;
                if sx < 0 || sx >= w as i32 {
                    continue;
                }
                let v = src[ch * h * w + sy as usize * w + sx as usize] * transform.brightness;
                dst[ch * h * w + y * w + x] = v.clamp(0.0, 1.0);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_transform_is_a_no_op() {
        let img = Tensor::from_vec((0..27).map(|v| v as f32 / 27.0).collect(), &[3, 3, 3]).unwrap();
        let out = apply_transform(&img, Transform::identity()).unwrap();
        assert_eq!(out, img);
    }

    #[test]
    fn translation_moves_content() {
        let mut img = Tensor::zeros(&[1, 5, 5]);
        img.set(&[0, 2, 2], 1.0).unwrap();
        let out = apply_transform(
            &img,
            Transform {
                dx: 1,
                dy: -1,
                brightness: 1.0,
            },
        )
        .unwrap();
        assert_eq!(out.get(&[0, 1, 3]).unwrap(), 1.0);
        assert_eq!(out.get(&[0, 2, 2]).unwrap(), 0.0);
    }

    #[test]
    fn brightness_scales_and_clamps() {
        let img = Tensor::full(&[1, 4, 4], 0.8);
        let out = apply_transform(
            &img,
            Transform {
                dx: 0,
                dy: 0,
                brightness: 1.5,
            },
        )
        .unwrap();
        assert!(out.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        let dim = apply_transform(
            &img,
            Transform {
                dx: 0,
                dy: 0,
                brightness: 0.5,
            },
        )
        .unwrap();
        assert!(dim.data().iter().all(|&v| (v - 0.4).abs() < 1e-6));
    }

    #[test]
    fn sampled_ensemble_starts_with_identity_and_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let transforms = sample_transforms(16, 3, 0.2, &mut rng);
        assert_eq!(transforms.len(), 16);
        assert_eq!(transforms[0], Transform::identity());
        for t in &transforms {
            assert!(t.dx.abs() <= 3 && t.dy.abs() <= 3);
            assert!((0.8..=1.2).contains(&t.brightness));
        }
    }

    #[test]
    fn rank_validation() {
        assert!(apply_transform(&Tensor::zeros(&[4, 4]), Transform::identity()).is_err());
    }
}
