use std::fmt;

use blurnet_tensor::TensorError;

/// Errors produced by dataset generation and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A configuration value was invalid.
    BadConfig(String),
    /// A class identifier was out of range.
    UnknownClass(usize),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::BadConfig(msg) => write!(f, "bad dataset configuration: {msg}"),
            DataError::UnknownClass(id) => write!(f, "unknown sign class id {id}"),
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}
