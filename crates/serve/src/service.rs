//! The micro-batching classification service (see the crate docs for the
//! request lifecycle and determinism guarantees).

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use blurnet::queue::{BoundedQueue, PopTimeout};
use blurnet_defenses::DefendedModel;
use blurnet_nn::BatchEngine;
use blurnet_tensor::Tensor;

use crate::{Result, ServeError};

/// Tuning knobs for one [`ClassifyService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Size-triggered flush: a batch is dispatched as soon as it holds
    /// this many requests (clamped to at least 1).
    pub max_batch: usize,
    /// Deadline-triggered flush: a batch is dispatched at most this long
    /// after its first request arrived, however full it is. A zero window
    /// still coalesces whatever is already waiting in the admission queue.
    pub flush_window: Duration,
    /// Batch workers draining the flushed batches. Each owns a prepacked
    /// [`BatchEngine`] over the shared read-only weights; the engines'
    /// intra-batch sharding additionally uses the ambient persistent rayon
    /// pool (`RAYON_NUM_THREADS`).
    pub workers: usize,
    /// Admission queue capacity: how many requests may wait to be batched
    /// before [`ServeClient::submit`] back-pressures (blocks) its caller.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    /// The "flush at batch 32 or 2 ms" profile from the roadmap, one batch
    /// worker, and a 1024-request admission window.
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            flush_window: Duration::from_millis(2),
            workers: 1,
            queue_depth: 1024,
        }
    }
}

/// The defense's per-request verdict, alongside the classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseVerdict {
    /// The defended and raw predictions agree (or the defense has no
    /// input-space preprocessing to compare against).
    Clean,
    /// The defense's input preprocessing **changed the prediction** — the
    /// input is sensitive to exactly the high-frequency structure the
    /// filter removes, the signature of a sticker-style perturbation.
    Flagged,
}

/// One classification response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classification {
    /// Predicted class index (argmax over the defended logits).
    pub label: usize,
    /// Softmax probability of the predicted class.
    pub confidence: f32,
    /// Whether the defense flagged the input (see [`DefenseVerdict`]).
    pub verdict: DefenseVerdict,
}

/// What the service knows about its model, for clients and the wire
/// handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Number of output classes.
    pub classes: usize,
    /// Expected image shape, `[channels, height, width]`.
    pub input_dims: [usize; 3],
    /// Human-readable label of the defense variant being served.
    pub defense: String,
}

impl ModelInfo {
    /// Number of `f32` elements in one request image.
    pub fn elements(&self) -> usize {
        self.input_dims.iter().product()
    }
}

/// A pending response: block on [`Ticket::wait`] to receive it.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<Classification>>,
}

impl Ticket {
    /// Blocks until the service answers this request.
    ///
    /// # Errors
    ///
    /// Propagates the worker's error, or [`ServeError::Shutdown`] if the
    /// service died before answering.
    pub fn wait(self) -> Result<Classification> {
        self.rx
            .recv()
            .map_err(|_| ServeError::Shutdown("service dropped the request".into()))?
    }
}

/// One queued request: the image and where to send its answer.
struct Pending {
    image: Tensor,
    reply: SyncSender<Result<Classification>>,
}

/// A cheap, cloneable handle for submitting requests to a running
/// [`ClassifyService`] from any thread.
#[derive(Debug, Clone)]
pub struct ServeClient {
    admission: Arc<BoundedQueue<Pending>>,
    info: ModelInfo,
}

impl ServeClient {
    /// The served model's metadata.
    pub fn info(&self) -> &ModelInfo {
        &self.info
    }

    /// Submits one `[C, H, W]` image and returns a [`Ticket`] for the
    /// response, blocking only if the admission queue is full
    /// (back-pressure).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] for a wrong image shape and
    /// [`ServeError::Shutdown`] once the service is shutting down.
    pub fn submit(&self, image: Tensor) -> Result<Ticket> {
        if image.dims() != self.info.input_dims.as_slice() {
            return Err(ServeError::BadInput(format!(
                "expected a {:?} image, got {:?}",
                self.info.input_dims,
                image.dims()
            )));
        }
        let (reply, rx) = sync_channel(1);
        self.admission
            .push(Pending { image, reply })
            .map_err(|_| ServeError::Shutdown("admission queue closed".into()))?;
        Ok(Ticket { rx })
    }

    /// Submits one image and blocks for its classification.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeClient::submit`] and [`Ticket::wait`] errors.
    pub fn classify(&self, image: Tensor) -> Result<Classification> {
        self.submit(image)?.wait()
    }
}

/// The long-running micro-batching service. Build with
/// [`ClassifyService::new`], hand [`ServeClient`]s to request producers,
/// and call [`ClassifyService::shutdown`] (or drop) to drain and stop.
#[derive(Debug)]
pub struct ClassifyService {
    admission: Arc<BoundedQueue<Pending>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    info: ModelInfo,
}

impl ClassifyService {
    /// Starts the service over a shared trained model: one batcher thread
    /// plus [`ServeConfig::workers`] batch workers, each with its own
    /// prepacked engine over the shared read-only weights.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] if the model's inference path is
    /// not a pure per-image function (randomized smoothing), which would
    /// break the micro-batched ≡ single-request bit-identity guarantee,
    /// or if the network is empty.
    pub fn new(model: Arc<DefendedModel>, config: ServeConfig) -> Result<Self> {
        if !model.deterministic_inference() {
            return Err(ServeError::BadConfig(format!(
                "defense {} draws from a stateful RNG at inference time; its responses would \
                 depend on request arrival order, so it cannot be served through the \
                 micro-batching path",
                model.defense().label()
            )));
        }
        // Fail fast on an unbuildable engine instead of inside a worker.
        BatchEngine::new(model.network()).map_err(|e| ServeError::BadConfig(e.to_string()))?;

        let max_batch = config.max_batch.max(1);
        let window = config.flush_window;
        let worker_count = config.workers.max(1);
        let info = ModelInfo {
            classes: model.arch().num_classes,
            input_dims: [
                model.arch().in_channels,
                model.arch().input_size,
                model.arch().input_size,
            ],
            defense: model.defense().label(),
        };

        let admission: Arc<BoundedQueue<Pending>> =
            Arc::new(BoundedQueue::new(config.queue_depth.max(1)));
        // A couple of flushed batches per worker may wait; beyond that the
        // batcher itself back-pressures.
        let batches: Arc<BoundedQueue<Vec<Pending>>> =
            Arc::new(BoundedQueue::new(worker_count * 2));

        let batcher = {
            let admission = Arc::clone(&admission);
            let batches = Arc::clone(&batches);
            std::thread::Builder::new()
                .name("blurnet-serve-batcher".into())
                .spawn(move || batcher_loop(&admission, &batches, max_batch, window))
                .map_err(|e| ServeError::BadConfig(format!("cannot spawn batcher: {e}")))?
        };

        let mut workers = Vec::with_capacity(worker_count);
        for id in 0..worker_count {
            let model = Arc::clone(&model);
            let batches = Arc::clone(&batches);
            let handle = std::thread::Builder::new()
                .name(format!("blurnet-serve-worker-{id}"))
                .spawn(move || worker_loop(&model, &batches))
                .map_err(|e| ServeError::BadConfig(format!("cannot spawn worker {id}: {e}")))?;
            workers.push(handle);
        }

        Ok(ClassifyService {
            admission,
            batcher: Some(batcher),
            workers,
            info,
        })
    }

    /// The served model's metadata.
    pub fn info(&self) -> &ModelInfo {
        &self.info
    }

    /// A cheap, cloneable request handle bound to this service.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            admission: Arc::clone(&self.admission),
            info: self.info.clone(),
        }
    }

    /// Drains and stops the service: the admission queue closes (new
    /// submissions fail fast), every request admitted before the close is
    /// answered, and all threads are joined.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Worker`] if a service thread panicked.
    pub fn shutdown(mut self) -> Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<()> {
        self.admission.close();
        let mut panicked = false;
        if let Some(batcher) = self.batcher.take() {
            panicked |= batcher.join().is_err();
        }
        for worker in self.workers.drain(..) {
            panicked |= worker.join().is_err();
        }
        if panicked {
            return Err(ServeError::Worker(
                "a service thread panicked during the run".into(),
            ));
        }
        Ok(())
    }
}

impl Drop for ClassifyService {
    /// Dropping the service drains it like [`ClassifyService::shutdown`]
    /// (panics in service threads are swallowed — use `shutdown` to
    /// observe them).
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// The single batcher thread: open a batch on the first waiting request,
/// coalesce until `max_batch` or the flush window elapses, dispatch, and
/// repeat. On admission close, the in-flight batch is flushed and the
/// batch queue is closed behind it.
fn batcher_loop(
    admission: &BoundedQueue<Pending>,
    batches: &BoundedQueue<Vec<Pending>>,
    max_batch: usize,
    window: Duration,
) {
    loop {
        // Block for the first request of the next batch.
        let Some(first) = admission.pop() else {
            break; // closed and drained
        };
        let deadline = std::time::Instant::now() + window;
        let mut batch = Vec::with_capacity(max_batch);
        batch.push(first);
        let mut admission_closed = false;
        while batch.len() < max_batch {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            // `pop_timeout` hands out already-queued items even with an
            // exhausted deadline, so a zero window still coalesces
            // everything that is waiting.
            match admission.pop_timeout(remaining) {
                PopTimeout::Item(pending) => batch.push(pending),
                PopTimeout::TimedOut => break,
                PopTimeout::Closed => {
                    admission_closed = true;
                    break;
                }
            }
        }
        if batches.push(batch).is_err() {
            // The batch queue only closes after this thread exits, so this
            // is unreachable in practice; bail defensively (dropping the
            // batch answers its tickets with Shutdown errors).
            break;
        }
        if admission_closed {
            break;
        }
    }
    batches.close();
}

/// One batch worker: owns a prepacked engine over the shared weights and
/// answers every request of every batch it pops.
fn worker_loop(model: &DefendedModel, batches: &BoundedQueue<Vec<Pending>>) {
    let engine = match BatchEngine::new(model.network()) {
        Ok(engine) => engine,
        Err(e) => {
            // Checked in `ClassifyService::new`; if it fails here anyway,
            // fail every batch cleanly rather than panicking.
            let msg = e.to_string();
            while let Some(batch) = batches.pop() {
                for pending in batch {
                    let _ = pending.reply.send(Err(ServeError::Worker(msg.clone())));
                }
            }
            return;
        }
    };
    while let Some(batch) = batches.pop() {
        answer_batch(model, &engine, batch);
    }
}

/// Classifies one flushed batch and answers every reply channel.
fn answer_batch(model: &DefendedModel, engine: &BatchEngine<'_>, batch: Vec<Pending>) {
    match classify_batch(model, engine, &batch) {
        Ok(results) => {
            for (pending, result) in batch.into_iter().zip(results) {
                // A dropped receiver (client gave up) is not an error.
                let _ = pending.reply.send(Ok(result));
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for pending in batch {
                let _ = pending.reply.send(Err(ServeError::Worker(msg.clone())));
            }
        }
    }
}

/// The defended classification of one coalesced batch: preprocessing +
/// one engine pass (+ one raw pass for the verdict when the defense
/// rewrites its input). Every step is per-image independent, which is
/// what makes micro-batching invisible in the responses.
fn classify_batch(
    model: &DefendedModel,
    engine: &BatchEngine<'_>,
    batch: &[Pending],
) -> Result<Vec<Classification>> {
    let images: Vec<Tensor> = batch.iter().map(|p| p.image.clone()).collect();
    let raw = Tensor::stack(&images)?;
    let defended_input = model.preprocess_batch(&raw)?;
    let defended = engine.classify_with_confidence(&defended_input)?;
    let verdicts: Vec<DefenseVerdict> = if model.has_input_preprocessing() {
        let raw_labels = engine.predict(&raw)?;
        defended
            .iter()
            .zip(raw_labels)
            .map(|(&(label, _), raw_label)| {
                if label == raw_label {
                    DefenseVerdict::Clean
                } else {
                    DefenseVerdict::Flagged
                }
            })
            .collect()
    } else {
        vec![DefenseVerdict::Clean; defended.len()]
    };
    Ok(defended
        .into_iter()
        .zip(verdicts)
        .map(|((label, confidence), verdict)| Classification {
            label,
            confidence,
            verdict,
        })
        .collect())
}

/// The single-request reference path: classifies one image exactly as the
/// service would, but alone — no batching, no queues, a fresh engine.
///
/// This is the oracle the determinism tests (and the load generator's
/// pre-flight gate) compare micro-batched responses against, bit for bit.
///
/// # Errors
///
/// Returns [`ServeError::BadConfig`] for a non-deterministic defense and
/// propagates model/engine failures.
pub fn classify_single(model: &DefendedModel, image: &Tensor) -> Result<Classification> {
    if !model.deterministic_inference() {
        return Err(ServeError::BadConfig(format!(
            "defense {} cannot be served deterministically",
            model.defense().label()
        )));
    }
    let engine =
        BatchEngine::new(model.network()).map_err(|e| ServeError::Worker(e.to_string()))?;
    let batch = [Pending {
        image: image.clone(),
        reply: sync_channel(1).0,
    }];
    Ok(classify_batch(model, &engine, &batch)?.remove(0))
}
